//! Dataset container, splits, and stratified k-fold indices.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A dense supervised dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature matrix, one row per sample.
    pub x: Vec<Vec<f64>>,
    /// Integer class labels in `0..n_classes`.
    pub y: Vec<usize>,
    /// Number of classes (max label + 1, or as declared).
    pub n_classes: usize,
    /// Human-readable feature names (used by permutation importance).
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Build a dataset, inferring `n_classes` from the labels.
    ///
    /// # Panics
    /// Panics if `x` and `y` lengths differ or rows are ragged.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<usize>) -> Self {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        if let Some(first) = x.first() {
            let w = first.len();
            assert!(x.iter().all(|r| r.len() == w), "ragged feature matrix");
        }
        let n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
        let n_features = x.first().map_or(0, |r| r.len());
        Dataset {
            x,
            y,
            n_classes,
            feature_names: (0..n_features).map(|i| format!("f{i}")).collect(),
        }
    }

    /// Attach feature names.
    ///
    /// # Panics
    /// Panics if the number of names differs from the number of features.
    pub fn with_feature_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(
            names.len(),
            self.n_features(),
            "feature name count mismatch"
        );
        self.feature_names = names;
        self
    }

    /// Force a class count larger than observed (e.g. a fold missing one
    /// class entirely).
    pub fn with_n_classes(mut self, n: usize) -> Self {
        assert!(n >= self.n_classes, "cannot shrink class count");
        self.n_classes = n;
        self
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.x.first().map_or(0, |r| r.len())
    }

    /// Samples per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &label in &self.y {
            counts[label] += 1;
        }
        counts
    }

    /// Select a subset by sample indices.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: idx.iter().map(|&i| self.x[i].clone()).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
            n_classes: self.n_classes,
            feature_names: self.feature_names.clone(),
        }
    }

    /// Seeded shuffled train/test split; `test_frac` of samples go to test.
    pub fn train_test_split(&self, test_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_frac));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_test = ((self.len() as f64) * test_frac).round() as usize;
        let (test_idx, train_idx) = idx.split_at(n_test);
        (self.subset(train_idx), self.subset(test_idx))
    }
}

/// Stratified k-fold index assignment: returns, for each fold, the list of
/// test-sample indices. Each class's samples are shuffled independently and
/// dealt round-robin so every fold sees (nearly) the class distribution of
/// the whole set — matching sklearn's `StratifiedKFold(shuffle=True)`.
pub fn stratified_kfold(y: &[usize], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least 2 folds");
    let n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for class in 0..n_classes {
        let mut members: Vec<usize> = (0..y.len()).filter(|&i| y[i] == class).collect();
        members.shuffle(&mut rng);
        for (j, i) in members.into_iter().enumerate() {
            folds[j % k].push(i);
        }
    }
    for f in &mut folds {
        f.sort_unstable();
    }
    folds
}

/// Complement of a fold: all indices not in `fold`, for `n` total samples.
pub fn fold_complement(fold: &[usize], n: usize) -> Vec<usize> {
    let mut in_fold = vec![false; n];
    for &i in fold {
        in_fold[i] = true;
    }
    (0..n).filter(|&i| !in_fold[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_per_class: usize) -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            for i in 0..n_per_class {
                x.push(vec![c as f64, i as f64]);
                y.push(c);
            }
        }
        Dataset::new(x, y)
    }

    #[test]
    fn construction_and_counts() {
        let d = toy(5);
        assert_eq!(d.len(), 15);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes, 3);
        assert_eq!(d.class_counts(), vec![5, 5, 5]);
        assert_eq!(d.feature_names, vec!["f0", "f1"]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Dataset::new(vec![vec![1.0]], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_panics() {
        Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }

    #[test]
    fn subset_picks_rows() {
        let d = toy(2);
        let s = d.subset(&[0, 5]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y, vec![0, 2]);
        assert_eq!(s.n_classes, 3);
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let d = toy(10);
        let (tr1, te1) = d.train_test_split(0.3, 42);
        let (tr2, te2) = d.train_test_split(0.3, 42);
        assert_eq!(tr1.y, tr2.y);
        assert_eq!(te1.y, te2.y);
        assert_eq!(tr1.len() + te1.len(), d.len());
        assert_eq!(te1.len(), 9);
        let (_, te3) = d.train_test_split(0.3, 43);
        assert_ne!(te1.x, te3.x, "different seeds should shuffle differently");
    }

    #[test]
    fn stratified_folds_partition_and_balance() {
        let d = toy(10);
        let folds = stratified_kfold(&d.y, 5, 7);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
        // Each fold should have exactly 2 samples of each class.
        for f in &folds {
            let sub = d.subset(f);
            assert_eq!(sub.class_counts(), vec![2, 2, 2]);
        }
    }

    #[test]
    fn fold_complement_is_exact() {
        let fold = vec![1, 3, 5];
        assert_eq!(fold_complement(&fold, 7), vec![0, 2, 4, 6]);
    }

    #[test]
    fn kfold_deterministic() {
        let y: Vec<usize> = (0..50).map(|i| i % 2).collect();
        assert_eq!(stratified_kfold(&y, 5, 1), stratified_kfold(&y, 5, 1));
        assert_ne!(stratified_kfold(&y, 5, 1), stratified_kfold(&y, 5, 2));
    }
}
