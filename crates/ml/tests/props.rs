//! Property tests over the ML substrate: every classifier must emit
//! labels inside the declared class range for arbitrary (finite) data,
//! metrics must stay in [0, 1], and the pipeline pieces must be
//! deterministic under a fixed seed.

use fiat_ml::adaboost::AdaBoost;
use fiat_ml::forest::RandomForest;
use fiat_ml::knn::KNearestNeighbors;
use fiat_ml::metrics::ConfusionMatrix;
use fiat_ml::mlp::Mlp;
use fiat_ml::naive_bayes::{BernoulliNB, GaussianNB};
use fiat_ml::nearest_centroid::NearestCentroid;
use fiat_ml::svm::LinearSvc;
use fiat_ml::tree::DecisionTree;
use fiat_ml::{Classifier, Dataset, Distance};
use proptest::prelude::*;

/// A random but non-degenerate dataset: 2-4 classes, every class has at
/// least one sample.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..4, 8usize..40, 2usize..6).prop_flat_map(|(classes, n, d)| {
        prop::collection::vec((prop::collection::vec(-100.0f64..100.0, d), 0..classes), n).prop_map(
            move |mut rows| {
                // Guarantee every class appears.
                for c in 0..classes {
                    if !rows.iter().any(|(_, y)| *y == c) {
                        let proto = rows[0].0.clone();
                        rows.push((proto, c));
                    }
                }
                let (x, y): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
                Dataset::new(x, y).with_n_classes(classes)
            },
        )
    })
}

fn check_in_range<C: Classifier>(mut model: C, data: &Dataset) -> Result<(), TestCaseError> {
    model.fit(data);
    for row in &data.x {
        let p = model.predict_one(row);
        prop_assert!(p < data.n_classes, "label {} of {}", p, data.n_classes);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_classifiers_stay_in_label_range(data in arb_dataset()) {
        check_in_range(NearestCentroid::new(Distance::Chebyshev), &data)?;
        check_in_range(BernoulliNB::new(), &data)?;
        check_in_range(GaussianNB::new(), &data)?;
        check_in_range(KNearestNeighbors::new(3, Distance::Euclidean), &data)?;
        check_in_range(DecisionTree::new(4), &data)?;
        check_in_range(RandomForest::new(5, 3, 0), &data)?;
        check_in_range(AdaBoost::new(5, 1), &data)?;
        check_in_range(LinearSvc::new(1e-3, 3, 0), &data)?;
        check_in_range(Mlp::new(vec![8], 5, 0), &data)?;
    }

    /// Metrics are bounded and consistent for arbitrary prediction pairs.
    #[test]
    fn metrics_bounded(
        pairs in prop::collection::vec((0usize..4, 0usize..4), 1..200),
    ) {
        let (t, p): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        let cm = ConfusionMatrix::from_predictions(&t, &p, 4);
        for v in [
            cm.accuracy(),
            cm.balanced_accuracy(),
            cm.macro_f1(),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "{}", v);
        }
        for c in 0..4 {
            prop_assert!((0.0..=1.0).contains(&cm.precision(c)));
            prop_assert!((0.0..=1.0).contains(&cm.recall(c)));
            prop_assert!((0.0..=1.0).contains(&cm.f1(c)));
        }
        prop_assert_eq!(cm.total(), t.len());
    }

    /// Perfect predictions always give perfect scores.
    #[test]
    fn perfect_predictions_score_one(
        labels in prop::collection::vec(0usize..3, 3..100),
    ) {
        let cm = ConfusionMatrix::from_predictions(&labels, &labels, 3);
        prop_assert_eq!(cm.accuracy(), 1.0);
        prop_assert_eq!(cm.balanced_accuracy(), 1.0);
        prop_assert_eq!(cm.macro_f1(), 1.0);
    }

    /// 1-NN always achieves perfect training accuracy on distinct points.
    #[test]
    fn one_nn_memorizes(data in arb_dataset()) {
        // Deduplicate identical feature rows with conflicting labels.
        let mut seen = std::collections::HashMap::new();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (row, &label) in data.x.iter().zip(&data.y) {
            let key: Vec<u64> = row.iter().map(|v| v.to_bits()).collect();
            if seen.insert(key, label).is_none() {
                x.push(row.clone());
                y.push(label);
            }
        }
        let dedup = Dataset::new(x, y).with_n_classes(data.n_classes);
        let mut knn = KNearestNeighbors::new(1, Distance::Euclidean);
        knn.fit(&dedup);
        let pred = knn.predict(&dedup.x);
        prop_assert_eq!(pred, dedup.y);
    }

    /// Seeded models are bit-deterministic.
    #[test]
    fn seeded_models_deterministic(data in arb_dataset(), seed in any::<u64>()) {
        let mut a = RandomForest::new(5, 3, seed);
        let mut b = RandomForest::new(5, 3, seed);
        a.fit(&data);
        b.fit(&data);
        prop_assert_eq!(a.predict(&data.x), b.predict(&data.x));
        let mut a = Mlp::new(vec![6], 3, seed);
        let mut b = Mlp::new(vec![6], 3, seed);
        a.fit(&data);
        b.fit(&data);
        prop_assert_eq!(a.predict(&data.x), b.predict(&data.x));
    }
}
