//! The red-team harness: one strategy, one live proxy, one scored run.
//!
//! A run rebuilds the whole stack from scratch — a fresh [`FiatProxy`]
//! with default (production) settings, the target device's real traffic
//! model from the Table 1 testbed, and an NFQUEUE-style
//! [`InterceptQueue`] every packet passes through. The timeline is:
//!
//! 1. **Bootstrap** (20 min): the device's periodic control flows run;
//!    the proxy learns its allow rules. Strategies may inject here
//!    (rule poisoning).
//! 2. **Legitimate use**: the paired app performs a 0-RTT authorization
//!    (the attacker sniffs and keeps the ciphertext) and issues one real
//!    command inside the humanness window.
//! 3. **Attack window**: the strategy's plan plays out, interleaved with
//!    the continuing background flows, all through the intercept queue.
//!
//! Scoring: the attacker's command *completes* iff at least
//! `min_packets_to_complete` attack packets are delivered in one
//! contiguous run (inter-packet gaps below the event gap) starting at or
//! after the attack window opens — fragments separated by silence do not
//! assemble, and bootstrap-phase groundwork does not count as a command.
//! A [`AttackVerdict::Detected`] verdict means the attack left tamper
//! evidence that [`verify_chain`] caught on the exported audit log.
//!
//! Determinism: every randomness source is seeded from the run seed, no
//! wall-clock time is read, and background, auth, and attack packets
//! merge via a stable sort — the same `(strategy, device, seed)` triple
//! always yields the identical [`AttackOutcome`].

use crate::scorecard::{AttackOutcome, AttackVerdict};
use crate::strategies::{AttackAction, AttackStrategy, Recon};
use fiat_core::audit::{verify_chain, AuditEntry, AuditVerdict};
use fiat_core::{AllowReason, EventClassifier, FiatApp, FiatProxy, ProxyConfig, ProxyDecision};
use fiat_fingerprint::{FingerprintEngine, MatcherConfig, SignatureSet};
use fiat_net::{PacketRecord, SimDuration, SimTime, Trace};
use fiat_quic::ZeroRttPacket;
use fiat_sensors::{HumannessValidator, ImuTrace, MotionKind};
use fiat_simnet::{InterceptQueue, Verdict};
use fiat_telemetry::AttackMetrics;
use fiat_trace::{fingerprint_corpus, testbed_devices, DeviceModel, Location};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pairing secret shared by the harness's proxy and app (any value; the
/// attacker never learns it).
const SECRET: [u8; 32] = [0x5A; 32];

/// Attack window length after the legitimate command.
const ATTACK_WINDOW: SimDuration = SimDuration::from_secs(480);

/// Delay from bootstrap end to the legitimate authorization.
const LEGIT_DELAY: SimDuration = SimDuration::from_secs(60);

/// Delay from the legitimate command to the attack window opening (the
/// humanness window is long closed by then).
const ATTACK_DELAY: SimDuration = SimDuration::from_secs(120);

/// Configuration of one harness run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Target device index in [`testbed_devices`] order.
    pub device: u16,
    /// Run seed; drives background jitter, auth randomness, and the
    /// strategy's plan.
    pub seed: u64,
}

/// Execute one strategy against one device; returns the scored outcome.
/// When `metrics` is given, the run is also recorded into
/// `fiat_attack_runs_total{strategy=,outcome=}` and the time-to-block
/// histogram.
pub fn run_attack(
    strategy: &dyn AttackStrategy,
    config: &RunConfig,
    metrics: Option<&AttackMetrics>,
) -> AttackOutcome {
    let devices = testbed_devices();
    let dev = &devices[config.device as usize];
    let proxy_config = strategy.config(ProxyConfig::default());
    let location = Location::Us;

    // --- Background: the device's periodic control flows for the whole
    // run. Events are deliberately absent: every event-path action in
    // the run is attributable to either the one legitimate command or
    // the attacker.
    let bootstrap_end = SimTime::ZERO + proxy_config.bootstrap;
    let legit_at = bootstrap_end + LEGIT_DELAY;
    let attack_start = legit_at + ATTACK_DELAY;
    let attack_end = attack_start + ATTACK_WINDOW;
    let duration = attack_end - SimTime::ZERO;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut trace = Trace::new();
    dev.emit_control(&mut trace, config.device, location, duration, &mut rng);
    trace.finish();

    // --- The proxy under attack, in production configuration. The
    // classifier is the ideal size rule for the device's command
    // signature: this isolates the decision path's defenses from
    // classifier accuracy, which the table6 experiment measures.
    let command_size = command_size_of(dev);
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let mut proxy = FiatProxy::new(proxy_config.clone(), &SECRET, validator);
    proxy.register_device(
        config.device,
        EventClassifier::simple_rule(command_size),
        dev.min_packets_to_complete,
    );
    // Strategies that switch on the fingerprint gate get a trained
    // engine, with the training corpus's DNS vocabulary merged so
    // claimed classes resolve.
    let mut dns = trace.dns.clone();
    if proxy_config.fingerprint_unknown {
        let corpus = fingerprint_corpus(config.seed);
        for (_, t) in &corpus {
            dns.merge(&t.dns);
        }
        let matcher = MatcherConfig::default();
        let sigs = SignatureSet::learn(&corpus, matcher.evidence_window);
        proxy.set_fingerprinter(Box::new(FingerprintEngine::new(sigs, matcher)));
    }
    proxy.set_dns(dns);
    proxy.start(SimTime::ZERO);

    // --- The paired app: handshake during bootstrap, one 0-RTT
    // authorization + command after it. The attacker sniffs the auth
    // ciphertext off the air.
    let mut app = FiatApp::new(&SECRET, config.seed);
    let ch = app.handshake_request();
    let sh = proxy.accept_handshake(&ch);
    app.complete_handshake(&sh).expect("handshake");
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, config.seed);
    let sniffed: ZeroRttPacket = app
        .authorize_zero_rtt(
            "iot.app",
            &imu,
            MotionKind::HumanTouch,
            legit_at.as_micros(),
        )
        .expect("0-RTT authorization");
    // A second authorization the on-path attacker intercepts and drops:
    // its nonce never reaches the proxy, so the capture stays fresh in
    // the replay store. Only the epoch lifecycle can invalidate it
    // (the stale-epoch-replay strategy's target).
    let withheld: ZeroRttPacket = app
        .authorize_zero_rtt(
            "iot.app",
            &imu,
            MotionKind::HumanTouch,
            legit_at.as_micros() + 1_000,
        )
        .expect("0-RTT authorization");

    // The recon the strategy plans from.
    let relay_ip = location.cloud_ip(dev.endpoint_base + 40, 0);
    let rule_flow = dev
        .control_flows
        .iter()
        .enumerate()
        .find(|(_, f)| f.period >= SimDuration::from_secs(1))
        .or_else(|| dev.control_flows.iter().enumerate().next())
        .expect("testbed devices have control flows");
    let recon = Recon {
        device: config.device,
        device_name: dev.name.clone(),
        lan_ip: DeviceModel::lan_ip(config.device),
        relay_ip,
        command_size,
        min_packets: dev.min_packets_to_complete,
        classify_at: dev
            .min_packets_to_complete
            .min(proxy_config.classify_at_cap)
            .max(1),
        rule_size: rule_flow.1.size,
        rule_ip: location.cloud_ip(dev.endpoint_base + rule_flow.0 as u16, 0),
        rule_direction: rule_flow.1.direction,
        rule_transport: rule_flow.1.transport,
        rule_tls: rule_flow.1.tls,
        bootstrap_start: SimTime::ZERO,
        bootstrap_end,
        attack_start,
        attack_end,
        event_gap: proxy_config.event_gap,
        lockout_threshold: proxy_config.lockout_threshold,
        lockout_window: proxy_config.lockout_window,
    };

    let mut plan_rng = StdRng::seed_from_u64(config.seed ^ 0x4154_5441_434b);
    let plan = strategy.plan(&recon, &mut plan_rng);

    // --- Split the plan into wire packets and scheduled control events.
    let mut attack_packets: Vec<PacketRecord> = Vec::new();
    let mut replays: Vec<SimTime> = Vec::new();
    let mut stale_replays: Vec<SimTime> = Vec::new();
    let mut rotations: Vec<SimTime> = Vec::new();
    let mut clears: Vec<SimTime> = Vec::new();
    let mut tamper = false;
    for action in plan {
        match action {
            AttackAction::Inject(p) => attack_packets.push(p),
            AttackAction::ReplayAuth { at } => replays.push(at),
            AttackAction::ReplayStaleAuth { at } => stale_replays.push(at),
            AttackAction::RotateEpochs { at } => rotations.push(at),
            AttackAction::ClearLockout { at } => clears.push(at),
            AttackAction::TamperAudit => tamper = true,
        }
    }

    // --- Merge the timeline: background, the legitimate command, and
    // attack packets, each tagged. Stable sort keeps insertion order on
    // timestamp ties, so the merge is deterministic.
    let mut timeline: Vec<(PacketRecord, bool)> = Vec::new();
    for p in &trace.packets {
        timeline.push((p.clone(), false));
    }
    let mut t = legit_at + SimDuration::from_millis(500);
    for _ in 0..dev.min_packets_to_complete {
        let mut p = recon.command_packet(t);
        p.local_port = 49_800; // the real app's flow, not the attacker's
        timeline.push((p, false));
        t += SimDuration::from_millis(100);
    }
    for p in &attack_packets {
        timeline.push((p.clone(), true));
    }
    timeline.sort_by_key(|(p, _)| p.ts);
    replays.sort();
    stale_replays.sort();
    rotations.sort();
    clears.sort();

    // --- Drive the proxy through the intercept queue.
    let mut queue = InterceptQueue::new();
    let mut injected = 0u64;
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut rule_hits = 0u64;
    let mut replays_rejected = 0u64;
    let mut replay_opened_window = false;
    let mut time_to_block_ms: Option<u64> = None;
    let mut run_len = 0usize;
    let mut last_delivered: Option<SimTime> = None;
    let mut completed = false;
    let mut replay_i = 0usize;
    let mut stale_i = 0usize;
    let mut rot_i = 0usize;
    let mut clear_i = 0usize;

    // The legitimate authorization, observed in order with the timeline.
    let mut legit_auth_done = false;

    for (pkt, is_attack) in timeline {
        let now = pkt.ts;
        if !legit_auth_done && legit_at <= now {
            let ok = proxy
                .on_auth_zero_rtt(&sniffed, legit_at)
                .expect("legitimate authorization accepted");
            debug_assert!(ok, "perfect validator verifies the human");
            legit_auth_done = true;
        }
        while rot_i < rotations.len() && rotations[rot_i] <= now {
            // The scheduled key lifecycle: rotate the issuing epoch and
            // retire everything older, exactly as fiat-control's manager
            // does between its bounded-window ticks.
            proxy.rotate_ticket_epoch();
            let newest = proxy.ticket_epoch();
            proxy.retire_ticket_epochs_below(newest);
            rot_i += 1;
        }
        while replay_i < replays.len() && replays[replay_i] <= now {
            match proxy.on_auth_zero_rtt(&sniffed, replays[replay_i]) {
                Err(_) => replays_rejected += 1,
                Ok(verified) => replay_opened_window |= verified,
            }
            replay_i += 1;
        }
        while stale_i < stale_replays.len() && stale_replays[stale_i] <= now {
            match proxy.on_auth_zero_rtt(&withheld, stale_replays[stale_i]) {
                Err(_) => replays_rejected += 1,
                Ok(verified) => replay_opened_window |= verified,
            }
            stale_i += 1;
        }
        while clear_i < clears.len() && clears[clear_i] <= now {
            proxy.clear_lockout(config.device);
            clear_i += 1;
        }

        queue.enqueue(pkt, now);
        let mut decision: Option<ProxyDecision> = None;
        let (decided, verdict) = queue
            .decide_next(now, |p| {
                let d = proxy.on_packet(p);
                decision = Some(d);
                if d.is_allow() {
                    Verdict::Allow
                } else {
                    Verdict::Drop
                }
            })
            .expect("one packet was just enqueued");
        if !is_attack {
            continue;
        }
        injected += 1;
        match verdict {
            Verdict::Allow => {
                delivered += 1;
                if decision == Some(ProxyDecision::Allow(AllowReason::RuleHit)) {
                    rule_hits += 1;
                }
                if decided.ts >= attack_start {
                    let contiguous = last_delivered
                        .is_some_and(|prev| decided.ts - prev < proxy_config.event_gap);
                    run_len = if contiguous { run_len + 1 } else { 1 };
                    last_delivered = Some(decided.ts);
                    completed |= run_len >= dev.min_packets_to_complete;
                }
            }
            Verdict::Drop => {
                dropped += 1;
                if time_to_block_ms.is_none() && decided.ts >= attack_start {
                    time_to_block_ms = Some((decided.ts - attack_start).as_millis());
                }
            }
        }
    }
    // Trailing control events (the attacker's last fragment, probes with
    // no follow-up traffic) are closed like a live proxy's idle sweep
    // would.
    while rot_i < rotations.len() {
        proxy.rotate_ticket_epoch();
        let newest = proxy.ticket_epoch();
        proxy.retire_ticket_epochs_below(newest);
        rot_i += 1;
    }
    while stale_i < stale_replays.len() {
        match proxy.on_auth_zero_rtt(&withheld, stale_replays[stale_i]) {
            Err(_) => replays_rejected += 1,
            Ok(verified) => replay_opened_window |= verified,
        }
        stale_i += 1;
    }
    while clear_i < clears.len() {
        proxy.clear_lockout(config.device);
        clear_i += 1;
    }
    proxy.flush(attack_end);

    // --- Audit tampering: export (entries, hashes), rewrite the first
    // incriminating drop into an allow, and re-verify like the companion
    // app would.
    let mut detected = false;
    if tamper {
        let mut entries: Vec<AuditEntry> = proxy.audit().entries().to_vec();
        let hashes: Vec<[u8; 32]> = proxy.audit().hashes().to_vec();
        let target = entries.iter().position(|e| {
            e.device == config.device && e.verdict == AuditVerdict::DroppedUnverified
        });
        if let Some(i) = target {
            entries[i].verdict = AuditVerdict::AllowedManualVerified;
        } else if !entries.is_empty() {
            // Nothing incriminating to rewrite: hide the newest record.
            entries.pop();
        }
        detected = !verify_chain(&entries, &hashes);
    }

    // The fingerprint gate's sealed quarantine/spoof verdicts are
    // detection evidence: on an N = 1 device the single command may slip
    // through the provisional evidence window, but the spoofer is
    // flagged in the audit trail and every later packet drops.
    let fingerprint_flagged = proxy.audit().entries().iter().any(|e| {
        matches!(
            e.verdict,
            AuditVerdict::SpoofSuspected | AuditVerdict::UnknownQuarantined
        )
    });

    let stats = proxy.stats();
    let verdict = if tamper {
        if detected {
            AttackVerdict::Detected
        } else {
            AttackVerdict::Allowed
        }
    } else if completed || replay_opened_window {
        if fingerprint_flagged {
            AttackVerdict::Detected
        } else {
            AttackVerdict::Allowed
        }
    } else {
        AttackVerdict::Blocked
    };

    let outcome = AttackOutcome {
        strategy: strategy.name().to_string(),
        defense: strategy.defense().to_string(),
        device: config.device,
        device_name: dev.name.clone(),
        verdict,
        injected,
        delivered,
        dropped,
        rule_hits,
        replays_rejected,
        lockout_episodes: proxy.telemetry().lockout_count(),
        retro_episodes: stats.retro_unverified,
        time_to_block_ms,
        completed,
    };
    if let Some(m) = metrics {
        m.record(
            strategy.name(),
            outcome.verdict.as_str(),
            outcome.time_to_block_ms,
        );
    }
    outcome
}

/// The distinctive command size the proxy's size rule (and the attacker)
/// keys on: the declared simple-rule size, else the first size of the
/// device's manual event palette.
fn command_size_of(dev: &DeviceModel) -> u16 {
    dev.simple_rule_size
        .or_else(|| dev.manual.as_ref().map(|m| m.sizes[0]))
        .expect("testbed devices model manual commands")
}
