//! Attacker strategies: each targets one defense layer of the decision
//! path.
//!
//! A strategy is a pure planner: given the [`Recon`] an on-LAN attacker
//! can legitimately gather (the target's LAN/relay addresses, its command
//! packet size, the pacing of its keep-alive flows — all visible to a
//! passive sniffer) plus a seeded RNG, it emits a deterministic list of
//! [`AttackAction`]s. The harness interleaves those with benign
//! background traffic and drives the proxy; strategies never touch the
//! proxy directly, so they cannot cheat.

use fiat_core::ProxyConfig;
use fiat_net::{
    Direction, PacketRecord, SimDuration, SimTime, TcpFlags, TlsVersion, TrafficClass, Transport,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::net::Ipv4Addr;

/// Source port the attacker's injected packets use. PortLess bucketing
/// ignores ports, so this leaks nothing to the rule matcher; it only
/// keeps injected packets recognizable in debug dumps.
pub const ATTACKER_PORT: u16 = 55_555;

/// What a passive on-LAN attacker knows about the target before striking.
#[derive(Debug, Clone)]
pub struct Recon {
    /// Target device index.
    pub device: u16,
    /// Target device name (Table 1).
    pub device_name: String,
    /// The device's LAN address (ARP-visible).
    pub lan_ip: Ipv4Addr,
    /// The cloud relay endpoint commands ride (sniffed from past events).
    pub relay_ip: Ipv4Addr,
    /// The device's distinctive command packet size.
    pub command_size: u16,
    /// Packets the device needs to execute a command (§3.3's N).
    pub min_packets: usize,
    /// The proxy's first-N classify point for this device.
    pub classify_at: usize,
    /// Size of an observed periodic keep-alive flow.
    pub rule_size: u16,
    /// Remote endpoint of that keep-alive flow.
    pub rule_ip: Ipv4Addr,
    /// Direction of that keep-alive flow.
    pub rule_direction: Direction,
    /// Transport of that keep-alive flow.
    pub rule_transport: Transport,
    /// TLS version of that keep-alive flow.
    pub rule_tls: TlsVersion,
    /// When the proxy started bootstrapping.
    pub bootstrap_start: SimTime,
    /// When rule learning closes.
    pub bootstrap_end: SimTime,
    /// When the attack window opens (after the legitimate command).
    pub attack_start: SimTime,
    /// End of the simulated run.
    pub attack_end: SimTime,
    /// The proxy's event grouping gap.
    pub event_gap: SimDuration,
    /// Unverified-manual events tolerated before lockout.
    pub lockout_threshold: u32,
    /// The lockout counting window.
    pub lockout_window: SimDuration,
}

impl Recon {
    /// A command-shaped packet toward the device at `ts` (what the real
    /// app's traffic looks like on the wire).
    pub fn command_packet(&self, ts: SimTime) -> PacketRecord {
        PacketRecord {
            ts,
            device: self.device,
            direction: Direction::ToDevice,
            local_ip: self.lan_ip,
            remote_ip: self.relay_ip,
            local_port: ATTACKER_PORT,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::psh_ack(),
            tls: TlsVersion::Tls12,
            size: self.command_size,
            label: TrafficClass::Manual,
        }
    }

    /// A packet shaped exactly like the observed keep-alive flow at `ts`
    /// (same PortLess bucket: remote, proto, size, direction).
    pub fn rule_shaped_packet(&self, ts: SimTime) -> PacketRecord {
        PacketRecord {
            ts,
            device: self.device,
            direction: self.rule_direction,
            local_ip: self.lan_ip,
            remote_ip: self.rule_ip,
            local_port: ATTACKER_PORT,
            remote_port: 443,
            transport: self.rule_transport,
            tcp_flags: if self.rule_transport == Transport::Tcp {
                TcpFlags::psh_ack()
            } else {
                TcpFlags::default()
            },
            tls: self.rule_tls,
            size: self.rule_size,
            label: TrafficClass::Control,
        }
    }
}

/// One step of an attack plan.
#[derive(Debug, Clone)]
pub enum AttackAction {
    /// Put a crafted packet on the wire (it passes the intercept queue
    /// like everything else).
    Inject(PacketRecord),
    /// Re-send the sniffed 0-RTT authorization packet at `at` (§5.3's
    /// replay attack — the harness holds the captured ciphertext).
    ReplayAuth {
        /// When to replay.
        at: SimTime,
    },
    /// The victim clears the device lockout at `at` (models the §5.4
    /// user verification; lets strategies probe the post-clear window).
    ClearLockout {
        /// When the victim clears.
        at: SimTime,
    },
    /// After the run, tamper with the exported audit log (rewrite one
    /// incriminating entry) and see whether verification catches it.
    TamperAudit,
    /// The control plane's key lifecycle rotates the ticket epoch at `at`
    /// and retires every older epoch. Not an attacker capability — the
    /// strategy models *waiting through* scheduled rotations so a sniffed
    /// ticket goes stale.
    RotateEpochs {
        /// When the scheduled rotation fires.
        at: SimTime,
    },
    /// Replay a second sniffed 0-RTT authorization whose original the
    /// on-path attacker dropped before it reached the proxy — its
    /// (ticket, nonce) pair is fresh in the replay store, so only the
    /// epoch lifecycle stands between the capture and an open humanness
    /// window.
    ReplayStaleAuth {
        /// When to replay the withheld capture.
        at: SimTime,
    },
}

/// An attacker strategy: a named, seeded plan against one defense layer.
pub trait AttackStrategy {
    /// Stable identifier (metric label, scorecard row).
    fn name(&self) -> &'static str;
    /// The defense layer this strategy probes (scorecard annotation).
    fn defense(&self) -> &'static str;
    /// The proxy configuration the run should use. Defaults to the
    /// production configuration untouched; strategies probing an opt-in
    /// feature (e.g. the pending-verdict quarantine) override this to
    /// switch it on — the harness builds the proxy from this, so the
    /// scorecard covers the feature's attack surface too.
    fn config(&self, base: ProxyConfig) -> ProxyConfig {
        base
    }
    /// Produce the full action plan for one run.
    fn plan(&self, recon: &Recon, rng: &mut StdRng) -> Vec<AttackAction>;
}

/// Micro-jittered inter-packet spacing for command bursts (human-ish
/// microsecond timing, like the real app's traffic).
fn burst_iat(rng: &mut StdRng) -> SimDuration {
    SimDuration::from_micros(rng.gen_range(80_000..120_000))
}

/// §5.3 replay: re-send a sniffed 0-RTT authorization, then fire the
/// command as if the human window were open. Defeated by the
/// (ticket, nonce) anti-replay store: the auth is rejected, no humanness
/// window opens, and the command drops as unverified manual.
pub struct ReplayAttack;

impl AttackStrategy for ReplayAttack {
    fn name(&self) -> &'static str {
        "replay"
    }
    fn defense(&self) -> &'static str {
        "0-RTT anti-replay store (fiat-quic)"
    }
    fn plan(&self, recon: &Recon, rng: &mut StdRng) -> Vec<AttackAction> {
        let mut actions = vec![AttackAction::ReplayAuth {
            at: recon.attack_start,
        }];
        let mut t = recon.attack_start + SimDuration::from_millis(50);
        for _ in 0..recon.min_packets.max(1) {
            actions.push(AttackAction::Inject(recon.command_packet(t)));
            t += burst_iat(rng);
        }
        actions
    }
}

/// §5.3 replay, key-lifecycle variant: the attacker intercepts and
/// *drops* a 0-RTT authorization on-path (so its nonce is never burned
/// at the proxy), then sits on the capture while the control plane's
/// scheduled key lifecycle rotates the ticket epoch and retires the old
/// one; only then replays it and fires the command. The nonce-keyed
/// anti-replay store alone cannot stop this — the pair is fresh.
/// Defeated by epoch retirement: the ticket's epoch is no longer live,
/// the proxy answers `RetiredEpoch` before consulting the replay store,
/// no humanness window opens, and the command drops as unverified
/// manual.
pub struct StaleEpochReplay;

impl AttackStrategy for StaleEpochReplay {
    fn name(&self) -> &'static str {
        "stale-epoch-replay"
    }
    fn defense(&self) -> &'static str {
        "ticket-epoch retirement (fiat-control key lifecycle)"
    }
    fn plan(&self, recon: &Recon, rng: &mut StdRng) -> Vec<AttackAction> {
        let mut actions = vec![
            AttackAction::RotateEpochs {
                at: recon.attack_start,
            },
            AttackAction::ReplayStaleAuth {
                at: recon.attack_start + SimDuration::from_secs(1),
            },
        ];
        let mut t = recon.attack_start + SimDuration::from_millis(1050);
        for _ in 0..recon.min_packets.max(1) {
            actions.push(AttackAction::Inject(recon.command_packet(t)));
            t += burst_iat(rng);
        }
        actions
    }
}

/// Bucket mimicry: shape packets to the PortLess bucket of a learned
/// keep-alive rule (remote, proto, size, direction) and send them at line
/// rate. Learned rules are unthrottled, so this *delivers* — a documented
/// residual risk: an on-LAN spoofing attacker can ride any minted bucket.
pub struct BucketMimicry;

impl AttackStrategy for BucketMimicry {
    fn name(&self) -> &'static str {
        "mimicry"
    }
    fn defense(&self) -> &'static str {
        "PortLess allow rules (residual risk: unthrottled)"
    }
    fn plan(&self, recon: &Recon, rng: &mut StdRng) -> Vec<AttackAction> {
        let mut actions = Vec::new();
        let mut t = recon.attack_start + SimDuration::from_millis(20);
        for _ in 0..recon.min_packets.max(2) {
            actions.push(AttackAction::Inject(recon.rule_shaped_packet(t)));
            t += burst_iat(rng);
        }
        actions
    }
}

/// Rule poisoning, slow variant: during bootstrap, inject a spoofed
/// periodic command-shaped flow (period ≥ the rule floor) so the proxy
/// mints an allow rule for the device's own command bucket; then fire the
/// command through it. Succeeds — the documented bootstrap trust
/// assumption (§5.2): rules minted from a poisoned bootstrap are honored.
pub struct RulePoisonSlow;

/// Poisoning cadence for the slow variant (well above the rule floor).
const POISON_SLOW_PERIOD: SimDuration = SimDuration::from_secs(20);

impl AttackStrategy for RulePoisonSlow {
    fn name(&self) -> &'static str {
        "poison-slow"
    }
    fn defense(&self) -> &'static str {
        "bootstrap rule minting (residual risk: poisoned bootstrap)"
    }
    fn plan(&self, recon: &Recon, rng: &mut StdRng) -> Vec<AttackAction> {
        let mut actions = Vec::new();
        let mut t = recon.bootstrap_start + SimDuration::from_secs(15);
        while t + SimDuration::from_secs(5) < recon.bootstrap_end {
            actions.push(AttackAction::Inject(recon.command_packet(t)));
            t += POISON_SLOW_PERIOD;
        }
        let mut t = recon.attack_start + SimDuration::from_millis(20);
        for _ in 0..recon.min_packets.max(1) {
            actions.push(AttackAction::Inject(recon.command_packet(t)));
            t += burst_iat(rng);
        }
        actions
    }
}

/// Rule poisoning, fast variant: same play, but the poison flow repeats
/// sub-second. Defeated by the `MIN_RULE_INTERVAL` floor — buckets whose
/// repeating interval is under one second never become rules, so the
/// exploitation burst hits the manual path and drops.
pub struct RulePoisonFast;

impl AttackStrategy for RulePoisonFast {
    fn name(&self) -> &'static str {
        "poison-fast"
    }
    fn defense(&self) -> &'static str {
        "MIN_RULE_INTERVAL floor on minted rules"
    }
    fn plan(&self, recon: &Recon, rng: &mut StdRng) -> Vec<AttackAction> {
        let mut actions = Vec::new();
        let mut t = recon.bootstrap_start + SimDuration::from_secs(15);
        let poison_end = t + SimDuration::from_secs(90);
        while t < poison_end {
            actions.push(AttackAction::Inject(recon.command_packet(t)));
            t += SimDuration::from_millis(500);
        }
        let mut t = recon.attack_start + SimDuration::from_millis(20);
        for _ in 0..recon.min_packets.max(1) {
            actions.push(AttackAction::Inject(recon.command_packet(t)));
            t += burst_iat(rng);
        }
        actions
    }
}

/// Lockout probing: single command attempts paced at the brute-force
/// tolerance (never locking), then a burst past it, then an immediate
/// retry after the victim clears the lockout. Every attempt drops as
/// unverified manual; the bursts land the device in lockout twice.
pub struct LockoutProbe;

impl AttackStrategy for LockoutProbe {
    fn name(&self) -> &'static str {
        "lockout-probe"
    }
    fn defense(&self) -> &'static str {
        "unverified-manual drop + brute-force lockout"
    }
    fn plan(&self, recon: &Recon, _rng: &mut StdRng) -> Vec<AttackAction> {
        let mut actions = Vec::new();
        // Phase A: exactly `lockout_threshold` probes inside one window —
        // at the tolerance, never over it.
        for k in 0..recon.lockout_threshold as u64 {
            let at = recon.attack_start + SimDuration::from_secs(25 * k);
            actions.push(AttackAction::Inject(recon.command_packet(at)));
        }
        // Phase B: a burst past the tolerance (threshold + 2 probes,
        // each its own event).
        for k in 0..(recon.lockout_threshold as u64 + 2) {
            let at = recon.attack_start + SimDuration::from_secs(90 + 6 * k);
            actions.push(AttackAction::Inject(recon.command_packet(at)));
        }
        // Phase C: the victim clears the lockout; the attacker retries
        // immediately — the post-clear window must re-lock.
        actions.push(AttackAction::ClearLockout {
            at: recon.attack_start + SimDuration::from_secs(150),
        });
        for k in 0..(recon.lockout_threshold as u64 + 2) {
            let at = recon.attack_start + SimDuration::from_secs(160 + 6 * k);
            actions.push(AttackAction::Inject(recon.command_packet(at)));
        }
        actions
    }
}

/// Gap evasion: split the command into fragments shorter than the
/// classify point, separated by silences longer than the event gap, so no
/// fragment is ever classified inline. Defeated by retrospective
/// classification: each closing fragment is audited and counted toward
/// the lockout, and fragments can never assemble a contiguous
/// command-completing run.
pub struct GapEvasion;

impl AttackStrategy for GapEvasion {
    fn name(&self) -> &'static str {
        "gap-evasion"
    }
    fn defense(&self) -> &'static str {
        "retrospective event classification + lockout"
    }
    fn plan(&self, recon: &Recon, rng: &mut StdRng) -> Vec<AttackAction> {
        let frag_len = recon.classify_at.saturating_sub(1).max(1);
        let n_frags = recon.min_packets.div_ceil(frag_len).clamp(6, 12);
        let frag_spacing = recon.event_gap + SimDuration::from_secs(1);
        let mut actions = Vec::new();
        for f in 0..n_frags as u64 {
            let mut t = recon.attack_start + frag_spacing * f;
            for _ in 0..frag_len {
                actions.push(AttackAction::Inject(recon.command_packet(t)));
                t += SimDuration::from_micros(rng.gen_range(40_000..60_000));
            }
        }
        actions
    }
}

/// Audit tampering: issue a couple of doomed command attempts (leaving
/// incriminating drop records), then rewrite one of them to an allow in
/// the exported log. Caught by the hash chain: `verify_chain` fails on
/// the tampered export.
pub struct AuditTamper;

impl AttackStrategy for AuditTamper {
    fn name(&self) -> &'static str {
        "audit-tamper"
    }
    fn defense(&self) -> &'static str {
        "hash-chained audit log (verify_chain)"
    }
    fn plan(&self, recon: &Recon, _rng: &mut StdRng) -> Vec<AttackAction> {
        vec![
            AttackAction::Inject(recon.command_packet(recon.attack_start)),
            AttackAction::Inject(
                recon.command_packet(recon.attack_start + SimDuration::from_secs(10)),
            ),
            AttackAction::TamperAudit,
        ]
    }
}

/// Quarantine probing: the run enables the pending-verdict quarantine
/// (10 s proof deadline) and checks the degradation path opens no new
/// hole. Full command bursts reach their classification point unproven,
/// so they are *held* — never delivered — and expire into lockout
/// credit; sub-classify-point fragments must still hit the retrospective
/// path exactly as hard as without quarantine. Blocked, or the
/// quarantine made gap evasion easier.
pub struct QuarantineProbe;

/// Proof deadline the quarantine probe runs under.
const PROBE_PROOF_DEADLINE: SimDuration = SimDuration::from_secs(10);

impl AttackStrategy for QuarantineProbe {
    fn name(&self) -> &'static str {
        "quarantine-probe"
    }
    fn defense(&self) -> &'static str {
        "pending-verdict quarantine (hold, expiry, lockout credit)"
    }
    fn config(&self, base: ProxyConfig) -> ProxyConfig {
        ProxyConfig {
            proof_deadline: Some(PROBE_PROOF_DEADLINE),
            ..base
        }
    }
    fn plan(&self, recon: &Recon, rng: &mut StdRng) -> Vec<AttackAction> {
        let mut actions = Vec::new();
        // Phase A: gap-evasion fragments, same shape as [`GapEvasion`] —
        // quarantine must not blunt the retrospective path.
        let frag_len = recon.classify_at.saturating_sub(1).max(1);
        let frag_spacing = recon.event_gap + SimDuration::from_secs(1);
        for f in 0..4u64 {
            let mut t = recon.attack_start + frag_spacing * f;
            for _ in 0..frag_len {
                actions.push(AttackAction::Inject(recon.command_packet(t)));
                t += SimDuration::from_micros(rng.gen_range(40_000..60_000));
            }
        }
        // Phase B: full command bursts that reach classification and are
        // held, paced past the proof deadline so each new burst first
        // expires the previous record (feeding the lockout window) and
        // then re-quarantines.
        let burst_len = recon.min_packets.max(recon.classify_at).max(1);
        let mut t0 = recon.attack_start + frag_spacing * 5;
        for _ in 0..3 {
            let mut t = t0;
            for _ in 0..burst_len {
                actions.push(AttackAction::Inject(recon.command_packet(t)));
                t += burst_iat(rng);
            }
            t0 = t0 + PROBE_PROOF_DEADLINE + SimDuration::from_secs(5);
        }
        actions
    }
}

/// Device id the spoofing attacker's unknown MAC maps to (any id the
/// testbed does not register).
pub const SPOOFED_DEVICE: u16 = 999;

/// Device spoofing: a rogue device joins the LAN under an *unregistered*
/// MAC, points its traffic at the target's cloud relay (the address-level
/// half of an impersonation — everything a MAC/DNS spoofer controls), and
/// pumps command traffic at the home. Its wire behavior is its own TLS
/// stack's, not the claimed device class's, which it cannot fake.
///
/// With `gate: false` this is the negative control for the legacy
/// unknown-MAC fail-open: every packet rides `AllowReason::UnknownDevice`
/// and the command completes (`allowed`). With `gate: true` the run
/// enables `ProxyConfig::fingerprint_unknown`: the behavioral gate
/// accumulates its bounded evidence window and quarantines the device —
/// `blocked` outright, or `detected` on an N=1 target whose single
/// command slipped through the provisional window before the verdict
/// sealed (the audit carries the quarantine/spoof entry either way).
pub struct DeviceSpoofing {
    /// Whether the run switches the fingerprint gate on.
    pub gate: bool,
}

impl AttackStrategy for DeviceSpoofing {
    fn name(&self) -> &'static str {
        "device-spoofing"
    }
    fn defense(&self) -> &'static str {
        "behavioral fingerprint gate (unknown-MAC quarantine)"
    }
    fn config(&self, base: ProxyConfig) -> ProxyConfig {
        ProxyConfig {
            fingerprint_unknown: self.gate,
            ..base
        }
    }
    fn plan(&self, recon: &Recon, rng: &mut StdRng) -> Vec<AttackAction> {
        // Two sustained pushes: the first outlives any plausible
        // evidence window (so the verdict seals mid-stream), the second
        // starts a minute later and must land on the *cached* sealed
        // verdict. Sizes are the attacker stack's own (~1 KiB frames),
        // not the device class's distinctive command size.
        let mut actions = Vec::new();
        let mut push = |start: SimTime, count: usize, rng: &mut StdRng| {
            let mut t = start;
            for i in 0..count {
                let mut p = recon.command_packet(t);
                p.device = SPOOFED_DEVICE;
                p.local_ip = Ipv4Addr::new(192, 168, 1, 199);
                p.size = if i % 2 == 0 { 999 } else { 1001 };
                actions.push(AttackAction::Inject(p));
                t += SimDuration::from_micros(rng.gen_range(120_000..180_000));
            }
        };
        push(recon.attack_start, 60, rng);
        push(recon.attack_start + SimDuration::from_secs(60), 20, rng);
        actions
    }
}

/// The standard red-team panel, in scorecard order.
pub fn standard_strategies() -> Vec<Box<dyn AttackStrategy>> {
    vec![
        Box::new(ReplayAttack),
        Box::new(StaleEpochReplay),
        Box::new(BucketMimicry),
        Box::new(RulePoisonSlow),
        Box::new(RulePoisonFast),
        Box::new(LockoutProbe),
        Box::new(GapEvasion),
        Box::new(AuditTamper),
        Box::new(QuarantineProbe),
        Box::new(DeviceSpoofing { gate: true }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn recon() -> Recon {
        Recon {
            device: 3,
            device_name: "SP10".to_string(),
            lan_ip: Ipv4Addr::new(192, 168, 1, 13),
            relay_ip: Ipv4Addr::new(34, 0, 0, 190),
            command_size: 267,
            min_packets: 1,
            classify_at: 1,
            rule_size: 60,
            rule_ip: Ipv4Addr::new(34, 0, 0, 150),
            rule_direction: Direction::FromDevice,
            rule_transport: Transport::Tcp,
            rule_tls: TlsVersion::Tls10,
            bootstrap_start: SimTime::ZERO,
            bootstrap_end: SimTime::from_secs(1200),
            attack_start: SimTime::from_secs(1380),
            attack_end: SimTime::from_secs(1800),
            event_gap: SimDuration::from_secs(5),
            lockout_threshold: 3,
            lockout_window: SimDuration::from_secs(60),
        }
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        for s in standard_strategies() {
            let a = s.plan(&recon(), &mut StdRng::seed_from_u64(7));
            let b = s.plan(&recon(), &mut StdRng::seed_from_u64(7));
            assert_eq!(a.len(), b.len(), "{}", s.name());
            for (x, y) in a.iter().zip(&b) {
                match (x, y) {
                    (AttackAction::Inject(p), AttackAction::Inject(q)) => assert_eq!(p, q),
                    (AttackAction::ReplayAuth { at: p }, AttackAction::ReplayAuth { at: q }) => {
                        assert_eq!(p, q)
                    }
                    (
                        AttackAction::ClearLockout { at: p },
                        AttackAction::ClearLockout { at: q },
                    ) => assert_eq!(p, q),
                    (AttackAction::TamperAudit, AttackAction::TamperAudit) => {}
                    (
                        AttackAction::RotateEpochs { at: p },
                        AttackAction::RotateEpochs { at: q },
                    ) => {
                        assert_eq!(p, q)
                    }
                    (
                        AttackAction::ReplayStaleAuth { at: p },
                        AttackAction::ReplayStaleAuth { at: q },
                    ) => assert_eq!(p, q),
                    _ => panic!("plan shape diverged for {}", s.name()),
                }
            }
        }
    }

    #[test]
    fn poison_slow_stays_inside_bootstrap_and_over_the_floor() {
        let r = recon();
        let plan = RulePoisonSlow.plan(&r, &mut StdRng::seed_from_u64(1));
        let poison: Vec<SimTime> = plan
            .iter()
            .filter_map(|a| match a {
                AttackAction::Inject(p) if p.ts < r.bootstrap_end => Some(p.ts),
                _ => None,
            })
            .collect();
        assert!(poison.len() >= 3, "needs repeats to mint a rule");
        for w in poison.windows(2) {
            assert!(w[1] - w[0] >= SimDuration::from_secs(1));
        }
    }

    #[test]
    fn gap_evasion_fragments_stay_below_classify_point() {
        let mut r = recon();
        r.min_packets = 41;
        r.classify_at = 5;
        let plan = GapEvasion.plan(&r, &mut StdRng::seed_from_u64(3));
        // Group injected packets into fragments by the event gap.
        let mut frag_sizes = Vec::new();
        let mut last: Option<SimTime> = None;
        let mut current = 0usize;
        for a in &plan {
            if let AttackAction::Inject(p) = a {
                if let Some(prev) = last {
                    if p.ts - prev >= r.event_gap {
                        frag_sizes.push(current);
                        current = 0;
                    }
                }
                current += 1;
                last = Some(p.ts);
            }
        }
        frag_sizes.push(current);
        assert!(frag_sizes.len() >= 6);
        for s in frag_sizes {
            assert!(
                s < r.classify_at,
                "fragment of {s} packets would classify inline"
            );
        }
    }
}
