//! # fiat-attack — adversarial red-team harness for the FIAT decision path
//!
//! FIAT's security argument is layered: 0-RTT anti-replay, bucketed
//! allow rules with a minimum-interval floor, inline and retrospective
//! event classification, humanness-gated manual commands, brute-force
//! lockout, and a tamper-evident audit chain. This crate turns that
//! argument into an executable scorecard: a panel of seeded attacker
//! [`strategies`], each aimed at one layer, is run against a live
//! [`fiat_core::FiatProxy`] fed through an NFQUEUE-style intercept
//! queue, and every run is scored blocked / allowed / detected with
//! packet counts and time-to-block.
//!
//! The panel ([`standard_strategies`]):
//!
//! | strategy       | layer probed                          | expected |
//! |----------------|---------------------------------------|----------|
//! | `replay`       | 0-RTT anti-replay store               | blocked  |
//! | `stale-epoch-replay` | ticket-epoch retirement (key lifecycle) | blocked |
//! | `mimicry`      | PortLess allow rules (unthrottled)    | allowed* |
//! | `poison-slow`  | bootstrap rule minting                | allowed* |
//! | `poison-fast`  | `MIN_RULE_INTERVAL` floor             | blocked  |
//! | `lockout-probe`| unverified-manual drop + lockout      | blocked  |
//! | `gap-evasion`  | retrospective classification          | blocked  |
//! | `audit-tamper` | hash-chained audit log                | detected |
//! | `quarantine-probe` | pending-verdict quarantine        | blocked  |
//! | `device-spoofing` | behavioral fingerprint gate        | blocked† |
//!
//! † `detected` on an N = 1 device: the single command packet slips
//! through the gate's provisional evidence window, but the spoofer is
//! flagged in the audit trail and permanently quarantined. Run with
//! `DeviceSpoofing { gate: false }` the same strategy is the *negative
//! control* for the legacy unknown-MAC fail-open and scores `allowed`.
//!
//! \* `allowed` rows are *documented residual risks*, not bugs: an
//! on-LAN attacker who can spoof the device's address can ride any
//! minted rule bucket (rules are unthrottled once learned), and a
//! poisoned bootstrap mints attacker rules (the §5.2 bootstrap trust
//! assumption). The scorecard keeps those rows visible so a future
//! mitigation (rate-limited rules, attested bootstrap) shows up as a
//! verdict flip.
//!
//! Runs are deterministic: the same `(strategy, device, seed)` triple
//! yields a byte-identical [`AttackOutcome`], so the rendered scorecard
//! diffs cleanly in CI.

pub mod harness;
pub mod scorecard;
pub mod strategies;

pub use harness::{run_attack, RunConfig};
pub use scorecard::{AttackOutcome, AttackVerdict, Scorecard};
pub use strategies::{
    standard_strategies, AttackAction, AttackStrategy, AuditTamper, BucketMimicry, DeviceSpoofing,
    GapEvasion, LockoutProbe, QuarantineProbe, Recon, ReplayAttack, RulePoisonFast, RulePoisonSlow,
    StaleEpochReplay, SPOOFED_DEVICE,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// SP10 smart plug: N = 1, simple size rule — the decision path in
    /// its tightest configuration.
    const PLUG: u16 = 3;
    /// WyzeCam: N = 41, classify point 5 — the first-N window exists.
    const CAMERA: u16 = 2;

    fn run(strategy: &dyn AttackStrategy, device: u16) -> AttackOutcome {
        run_attack(strategy, &RunConfig { device, seed: 42 }, None)
    }

    #[test]
    fn replay_is_blocked_by_the_anti_replay_store() {
        let o = run(&ReplayAttack, PLUG);
        assert_eq!(o.verdict, AttackVerdict::Blocked);
        assert!(o.replays_rejected >= 1, "the sniffed auth must be burned");
        assert!(!o.completed);
        assert!(o.dropped > 0);
        assert!(o.time_to_block_ms.is_some());
    }

    #[test]
    fn replay_is_blocked_on_a_first_n_device_too() {
        let o = run(&ReplayAttack, CAMERA);
        assert_eq!(o.verdict, AttackVerdict::Blocked);
        assert!(o.replays_rejected >= 1);
        // The first-N allowance leaks a few packets but never the
        // command.
        assert!(o.delivered < o.injected);
        assert!(!o.completed);
    }

    #[test]
    fn stale_epoch_replay_is_blocked_by_epoch_retirement() {
        // The withheld capture's nonce is fresh, so the replay store
        // alone would wave it through; the rotation retiring its epoch
        // is what burns it. Holds on both the N = 1 plug and the
        // first-N camera.
        for device in [PLUG, CAMERA] {
            let o = run(&StaleEpochReplay, device);
            assert_eq!(o.verdict, AttackVerdict::Blocked, "device {device}");
            assert!(
                o.replays_rejected >= 1,
                "the stale capture must be refused (device {device})"
            );
            assert!(!o.completed, "device {device}");
            assert!(o.dropped > 0, "device {device}");
            assert!(o.time_to_block_ms.is_some(), "device {device}");
        }
    }

    #[test]
    fn withheld_capture_succeeds_without_rotation() {
        // Negative control for the stale-epoch run: the same withheld
        // capture replayed with *no* epoch rotation verifies (its nonce
        // was never burned), opening the humanness window. This is what
        // pins the blocked verdict above on epoch retirement rather
        // than the nonce store.
        use fiat_net::SimDuration;
        use rand::rngs::StdRng;
        struct NoRotationControl;
        impl AttackStrategy for NoRotationControl {
            fn name(&self) -> &'static str {
                "stale-epoch-control"
            }
            fn defense(&self) -> &'static str {
                "negative control (no rotation)"
            }
            fn plan(&self, recon: &Recon, _rng: &mut StdRng) -> Vec<AttackAction> {
                vec![AttackAction::ReplayStaleAuth {
                    at: recon.attack_start + SimDuration::from_secs(1),
                }]
            }
        }
        let o = run(&NoRotationControl, PLUG);
        assert_eq!(o.verdict, AttackVerdict::Allowed);
        assert_eq!(o.replays_rejected, 0, "fresh nonce must not be refused");
    }

    #[test]
    fn mimicry_rides_a_learned_rule() {
        // Documented residual risk: rule buckets are unthrottled, so
        // packets shaped to a learned keep-alive flow deliver.
        let o = run(&BucketMimicry, PLUG);
        assert_eq!(o.verdict, AttackVerdict::Allowed);
        assert!(o.rule_hits > 0, "delivery must be via the rule path");
        assert_eq!(o.dropped, 0);
    }

    #[test]
    fn slow_poisoning_mints_an_attacker_rule() {
        // Documented residual risk: a poisoned bootstrap mints rules.
        // The exploitation burst after bootstrap rides them.
        let o = run(&RulePoisonSlow, PLUG);
        assert_eq!(o.verdict, AttackVerdict::Allowed);
        assert!(o.rule_hits >= 1);
        assert!(o.completed);
    }

    #[test]
    fn fast_poisoning_is_stopped_by_the_rule_interval_floor() {
        // Same play at sub-second cadence: MIN_RULE_INTERVAL refuses the
        // bucket, so the burst lands on the manual path and drops.
        let o = run(&RulePoisonFast, PLUG);
        assert_eq!(o.verdict, AttackVerdict::Blocked);
        assert_eq!(o.rule_hits, 0, "no rule may be minted below the floor");
        assert!(o.time_to_block_ms.is_some());
        assert!(!o.completed);
    }

    #[test]
    fn lockout_probing_locks_twice_and_never_completes() {
        let o = run(&LockoutProbe, PLUG);
        assert_eq!(o.verdict, AttackVerdict::Blocked);
        // Burst past the tolerance locks; the post-clear retry locks
        // again — exactly two episodes, not one per dropped packet.
        assert_eq!(o.lockout_episodes, 2);
        assert!(!o.completed);
    }

    #[test]
    fn gap_evasion_is_caught_retrospectively() {
        let o = run(&GapEvasion, CAMERA);
        assert_eq!(o.verdict, AttackVerdict::Blocked);
        assert!(
            o.retro_episodes > 0,
            "fragments must be classified at closure"
        );
        assert!(o.lockout_episodes >= 1, "fragment episodes must lock");
        assert!(!o.completed);
    }

    #[test]
    fn quarantine_does_not_ease_gap_evasion() {
        // The probe runs with the quarantine enabled (its config
        // override): full bursts must be held — never delivered — and
        // expire into lockout credit, while sub-classify fragments are
        // still caught retrospectively. Any completion here means the
        // degradation path opened a hole.
        for device in [PLUG, CAMERA] {
            let o = run(&QuarantineProbe, device);
            assert_eq!(o.verdict, AttackVerdict::Blocked, "device {device}");
            assert!(!o.completed, "device {device}");
            assert!(o.dropped > 0, "held bursts must not deliver");
            assert!(
                o.lockout_episodes >= 1,
                "expired quarantines must feed the lockout (device {device})"
            );
        }
        // Same fragments, quarantine off: the baseline gap-evasion run
        // must not be *harder* than the probe's fragment phase — i.e.
        // the retro path is unchanged either way.
        let base = run(&GapEvasion, CAMERA);
        assert_eq!(base.verdict, AttackVerdict::Blocked);
    }

    #[test]
    fn audit_tampering_is_detected_by_the_chain() {
        let o = run(&AuditTamper, PLUG);
        assert_eq!(o.verdict, AttackVerdict::Detected);
    }

    #[test]
    fn device_spoofing_rides_the_fail_open_with_the_gate_off() {
        // Negative control: the legacy unknown-MAC fail-open delivers
        // every spoofed packet and the command completes unchallenged.
        let o = run(&DeviceSpoofing { gate: false }, CAMERA);
        assert_eq!(o.verdict, AttackVerdict::Allowed);
        assert!(o.completed);
        assert_eq!(o.dropped, 0, "fail-open must not drop anything");
    }

    #[test]
    fn device_spoofing_is_quarantined_when_the_gate_is_on() {
        // The behavioral gate seals a verdict inside the evidence window
        // (24 packets, below the camera's N = 41), so the command never
        // completes and the stream is cut mid-flight.
        let o = run(&DeviceSpoofing { gate: true }, CAMERA);
        assert_eq!(o.verdict, AttackVerdict::Blocked);
        assert!(!o.completed);
        assert!(o.dropped > 0, "sealed quarantine must drop the stream");
        assert!(o.time_to_block_ms.is_some());
        // The provisional window is bounded: at most window-1 spoofed
        // packets ever reached the home.
        assert!(o.delivered < 41, "provisional window leaked a command");
    }

    #[test]
    fn device_spoofing_against_an_n1_device_is_detected() {
        // SP10 completes on a single packet, which fits inside the
        // provisional evidence window — but the gate still seals a
        // quarantine, flags the spoofer in the audit trail, and drops
        // everything after the verdict.
        let o = run(&DeviceSpoofing { gate: true }, PLUG);
        assert_eq!(o.verdict, AttackVerdict::Detected);
        assert!(o.completed, "N = 1 slips the provisional window");
        assert!(o.dropped > 0, "post-seal traffic must still drop");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run_attack(
            &ReplayAttack,
            &RunConfig {
                device: PLUG,
                seed: 7,
            },
            None,
        );
        let b = run_attack(
            &ReplayAttack,
            &RunConfig {
                device: PLUG,
                seed: 7,
            },
            None,
        );
        assert_eq!(a, b);
        let c = run_attack(
            &ReplayAttack,
            &RunConfig {
                device: PLUG,
                seed: 8,
            },
            None,
        );
        // Different seed, same security posture.
        assert_eq!(c.verdict, AttackVerdict::Blocked);
    }

    #[test]
    fn metrics_record_strategy_and_outcome() {
        let registry = fiat_telemetry::MetricRegistry::new();
        let metrics = fiat_telemetry::AttackMetrics::new(&registry);
        run_attack(
            &ReplayAttack,
            &RunConfig {
                device: PLUG,
                seed: 42,
            },
            Some(&metrics),
        );
        assert_eq!(metrics.runs("replay", "blocked").get(), 1);
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_attack_runs_total"));
    }
}
