//! Attack outcomes and the aggregated security scorecard.
//!
//! Every harness run produces one [`AttackOutcome`]; a [`Scorecard`]
//! collects them across the strategy × device matrix and renders a
//! fixed-width report. Outcome fields are fully deterministic functions
//! of the run seed — no wall-clock time or map iteration order leaks in —
//! so the rendered scorecard is byte-identical across runs with the same
//! seed.

use std::fmt::Write as _;

/// How a run is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackVerdict {
    /// The attacker's command never completed.
    Blocked,
    /// The attacker delivered enough packets to complete the command (or
    /// an audit tamper went unnoticed).
    Allowed,
    /// The attack "succeeded" on the wire but left tamper evidence the
    /// verifier caught ([`fiat_core::audit::verify_chain`]).
    Detected,
}

impl AttackVerdict {
    /// Lower-case label, as used in the `outcome` metric label.
    pub fn as_str(self) -> &'static str {
        match self {
            AttackVerdict::Blocked => "blocked",
            AttackVerdict::Allowed => "allowed",
            AttackVerdict::Detected => "detected",
        }
    }
}

/// The scored result of one strategy run against one device.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// Strategy name (stable identifier, e.g. `replay`).
    pub strategy: String,
    /// The defense layer the strategy probes.
    pub defense: String,
    /// Target device index in the testbed.
    pub device: u16,
    /// Target device name (Table 1).
    pub device_name: String,
    /// Scored verdict.
    pub verdict: AttackVerdict,
    /// Attack packets offered to the intercept queue.
    pub injected: u64,
    /// Attack packets forwarded into the home.
    pub delivered: u64,
    /// Attack packets dropped by the proxy.
    pub dropped: u64,
    /// Attack packets that rode a learned allow rule.
    pub rule_hits: u64,
    /// Replayed 0-RTT auth packets rejected by the anti-replay store.
    pub replays_rejected: u64,
    /// Lockout episodes the run triggered on the target device.
    pub lockout_episodes: u64,
    /// Events the proxy classified retrospectively as unverified-manual.
    pub retro_episodes: u64,
    /// Milliseconds from the first post-recon attack packet to the first
    /// blocking decision (`None` if nothing was blocked).
    pub time_to_block_ms: Option<u64>,
    /// Whether the attacker's command completed (≥ N packets delivered
    /// in one contiguous sub-event-gap run at or after the attack start).
    pub completed: bool,
}

/// Aggregator over the strategy × device matrix.
#[derive(Debug, Default, Clone)]
pub struct Scorecard {
    outcomes: Vec<AttackOutcome>,
}

impl Scorecard {
    /// Empty scorecard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one run.
    pub fn push(&mut self, outcome: AttackOutcome) {
        self.outcomes.push(outcome);
    }

    /// All recorded outcomes, in insertion order.
    pub fn outcomes(&self) -> &[AttackOutcome] {
        &self.outcomes
    }

    /// Number of runs with the given verdict.
    pub fn count(&self, verdict: AttackVerdict) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.verdict == verdict)
            .count()
    }

    /// Whether every run of `strategy` scored `verdict`.
    pub fn all_scored(&self, strategy: &str, verdict: AttackVerdict) -> bool {
        let mut seen = false;
        for o in &self.outcomes {
            if o.strategy == strategy {
                seen = true;
                if o.verdict != verdict {
                    return false;
                }
            }
        }
        seen
    }

    /// Render the fixed-width scorecard. Deterministic for a fixed
    /// outcome sequence; `seed` is echoed so saved reports are
    /// self-describing.
    pub fn render(&self, seed: u64) -> String {
        let mut out = String::new();
        writeln!(out, "# FIAT adversarial scorecard (seed {seed})").unwrap();
        writeln!(
            out,
            "{:<14} {:<9} {:<9} {:>6} {:>6} {:>6} {:>6} {:>7} {:>8} {:>9}",
            "strategy",
            "device",
            "verdict",
            "inj",
            "fwd",
            "drop",
            "rule",
            "replay-",
            "lockouts",
            "ttb-ms"
        )
        .unwrap();
        for o in &self.outcomes {
            writeln!(
                out,
                "{:<14} {:<9} {:<9} {:>6} {:>6} {:>6} {:>6} {:>7} {:>8} {:>9}",
                o.strategy,
                o.device_name,
                o.verdict.as_str().to_uppercase(),
                o.injected,
                o.delivered,
                o.dropped,
                o.rule_hits,
                o.replays_rejected,
                o.lockout_episodes,
                o.time_to_block_ms
                    .map_or("-".to_string(), |ms| ms.to_string()),
            )
            .unwrap();
        }
        writeln!(out).unwrap();
        writeln!(out, "## Per-strategy summary").unwrap();
        let mut strategies: Vec<(&str, &str)> = Vec::new();
        for o in &self.outcomes {
            if !strategies.iter().any(|(s, _)| *s == o.strategy) {
                strategies.push((&o.strategy, &o.defense));
            }
        }
        for (strategy, defense) in strategies {
            let runs: Vec<&AttackOutcome> = self
                .outcomes
                .iter()
                .filter(|o| o.strategy == strategy)
                .collect();
            let blocked = runs
                .iter()
                .filter(|o| o.verdict == AttackVerdict::Blocked)
                .count();
            let detected = runs
                .iter()
                .filter(|o| o.verdict == AttackVerdict::Detected)
                .count();
            let allowed = runs.len() - blocked - detected;
            writeln!(
                out,
                "{:<14} blocked {blocked}/{total}  detected {detected}/{total}  \
                 allowed {allowed}/{total}  [{defense}]",
                strategy,
                total = runs.len(),
            )
            .unwrap();
        }
        writeln!(out).unwrap();
        writeln!(
            out,
            "verdicts: {} blocked, {} detected, {} allowed over {} runs",
            self.count(AttackVerdict::Blocked),
            self.count(AttackVerdict::Detected),
            self.count(AttackVerdict::Allowed),
            self.outcomes.len()
        )
        .unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(strategy: &str, verdict: AttackVerdict) -> AttackOutcome {
        AttackOutcome {
            strategy: strategy.to_string(),
            defense: "test defense".to_string(),
            device: 3,
            device_name: "SP10".to_string(),
            verdict,
            injected: 10,
            delivered: 2,
            dropped: 8,
            rule_hits: 0,
            replays_rejected: 1,
            lockout_episodes: 1,
            retro_episodes: 0,
            time_to_block_ms: Some(40),
            completed: verdict == AttackVerdict::Allowed,
        }
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let mut card = Scorecard::new();
        card.push(outcome("replay", AttackVerdict::Blocked));
        card.push(outcome("mimicry", AttackVerdict::Allowed));
        card.push(outcome("audit-tamper", AttackVerdict::Detected));
        let a = card.render(42);
        let b = card.render(42);
        assert_eq!(a, b);
        assert!(a.contains("seed 42"));
        assert!(a.contains("replay"));
        assert!(a.contains("BLOCKED"));
        assert!(a.contains("DETECTED"));
        assert!(a.contains("1 blocked, 1 detected, 1 allowed over 3 runs"));
    }

    #[test]
    fn all_scored_requires_uniformity() {
        let mut card = Scorecard::new();
        card.push(outcome("replay", AttackVerdict::Blocked));
        card.push(outcome("replay", AttackVerdict::Blocked));
        card.push(outcome("mimicry", AttackVerdict::Allowed));
        assert!(card.all_scored("replay", AttackVerdict::Blocked));
        assert!(!card.all_scored("replay", AttackVerdict::Allowed));
        assert!(!card.all_scored("unknown", AttackVerdict::Blocked));
        assert_eq!(card.count(AttackVerdict::Blocked), 2);
    }
}
