//! The control-plane sweep: enroll → rotate epochs → outage window →
//! recover, on the paper's testbed, end to end.
//!
//! One cell enrolls a home through the real mutual-auth flow, then
//! drives the capture with the [`KeyLifecycle`] ticking alongside: the
//! issuing epoch rotates on schedule, old epochs retire (forcing the
//! phone's 0-RTT through the `RetiredEpoch` → 1-RTT fallback → fresh
//! handshake path), and — when enabled — a control-plane-outage window
//! from the chaos fault taxonomy freezes the lifecycle mid-run. Every
//! genuine post-bootstrap manual event gets a humanness proof delivered
//! just ahead of its first packet, so the headline **false drops**
//! number means what it does in the chaos soak: a genuine manual event
//! that lost packets despite its proof.
//!
//! The cell can also rebalance mid-run: snapshot the proxy at the
//! midpoint packet, restore it into a fresh telemetry plug (as a
//! destination shard would), re-handshake the phone (restore drops the
//! 1-RTT session key by design), and resume. A rebalanced cell must
//! report stats and an audit head byte-identical to the uninterrupted
//! cell — the determinism oracle `experiments control` enforces.

use crate::enroll::{enroll_home, DeviceSpec, HomeProvision};
use crate::lifecycle::{KeyLifecycle, LifecyclePolicy};
use crate::rebalance::{restore_home, snapshot_home};
use fiat_chaos::{FaultKind, FaultPlan, FAULT_KINDS};
use fiat_core::pipeline::ProxyTelemetry;
use fiat_core::{
    AuthAttempt, DeliveryResult, EventClassifier, ProxyConfig, ProxyDecision, ProxyStats,
    RetryPolicy,
};
use fiat_net::{SimDuration, SimTime, TrafficClass};
use fiat_sensors::{HumannessValidator, ImuTrace, MotionKind};
use fiat_telemetry::{ControlMetrics, ManualClock, MetricRegistry};
use fiat_trace::{TestbedConfig, TestbedTrace};
use std::collections::HashMap;
use std::sync::Arc;

/// Ceremony secret shared by the sweep's phone and proxy.
const SECRET: [u8; 32] = [0xCA; 32];

/// The user touches the phone this long before the first command packet.
const PROOF_LEAD: SimDuration = SimDuration::from_millis(200);

/// One control-sweep cell's configuration.
#[derive(Debug, Clone, Copy)]
pub struct ControlConfig {
    /// Master seed (trace, nonces, and client jitter derive from it).
    pub seed: u64,
    /// Scale the capture down for smoke tests.
    pub quick: bool,
    /// Key-lifecycle policy (rotation cadence, window width, and whether
    /// an outage freezes the window — the degraded-mode switch).
    pub policy: LifecyclePolicy,
    /// Inject a control-plane-outage window mid-run.
    pub outage: bool,
    /// Rebalance the home (snapshot → restore → resume) at the midpoint
    /// packet.
    pub rebalance: bool,
}

impl ControlConfig {
    /// The default cell: 4-minute rotations, 2 live epochs, degraded
    /// mode on, outage injected, no rebalance.
    pub fn new(seed: u64, quick: bool) -> Self {
        ControlConfig {
            seed,
            quick,
            policy: LifecyclePolicy {
                rotation_interval: SimDuration::from_mins(4),
                max_live_epochs: 2,
                freeze_on_outage: true,
            },
            outage: true,
            rebalance: false,
        }
    }
}

/// Aggregate result of one control-sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlReport {
    /// Packets driven through the proxy.
    pub packets: u64,
    /// Genuine post-bootstrap manual events (each gets a proof).
    pub manual_events: u64,
    /// Events whose proof verified at the proxy.
    pub proofs_delivered: u64,
    /// Events that lost packets despite a delivered proof (must be 0).
    pub false_drops: u64,
    /// Proof exchanges that fell back from 0-RTT to 1-RTT (retired
    /// epochs biting; must be > 0 once rotation outpaces the window).
    pub fallbacks: u64,
    /// Proof exchanges attempted inside the outage window.
    pub outage_proofs: u64,
    /// Fallbacks inside the outage window (0 with degraded mode on: the
    /// frozen window keeps last-known-good epochs serving 0-RTT).
    pub outage_fallbacks: u64,
    /// Epoch rotations performed.
    pub rotations: u64,
    /// Epochs retired.
    pub epochs_retired: u64,
    /// Outage windows entered (degraded-mode transitions in).
    pub outages: u64,
    /// Packet decisions taken while degraded.
    pub degraded_decisions: u64,
    /// Widest live-epoch window observed (bounded-memory check).
    pub max_live_epochs_seen: u32,
    /// Serialized snapshot size, when the cell rebalanced (else 0).
    pub snapshot_bytes: u64,
    /// Injected faults by kind (the control-outage row counts windows).
    pub faults: Vec<(&'static str, u64)>,
    /// Final proxy counters.
    pub stats: ProxyStats,
    /// Audit-chain head after the trailing flush (32 bytes), for the
    /// rebalanced-vs-uninterrupted identity check.
    pub audit_head: Option<[u8; 32]>,
    /// Audit entries written.
    pub audit_len: u64,
}

/// Per-event bookkeeping during the merge.
struct EvRec {
    device: u16,
    verified: bool,
    drops: u64,
    held: u64,
    released: u64,
}

/// Run one control-sweep cell. Fully deterministic per [`ControlConfig`].
pub fn run_control_sweep(cfg: &ControlConfig, metrics: Option<&ControlMetrics>) -> ControlReport {
    let days = if cfg.quick { 0.03 } else { 0.08 };
    let tb = TestbedTrace::generate(TestbedConfig {
        days,
        manual_per_day: 60.0,
        routines_per_day: 30.0,
        seed: cfg.seed,
        ..Default::default()
    });
    let config = ProxyConfig {
        bootstrap: SimDuration::from_mins(10),
        ..Default::default()
    };
    let boot_end = SimTime::ZERO + config.bootstrap;
    let span_end = tb.trace.packets.last().map_or(boot_end, |p| p.ts);

    // Enroll the home through the real flow: mutual auth, provisioning,
    // first ticket under epoch 0.
    let device_size = |d: &fiat_trace::DeviceModel| {
        d.simple_rule_size
            .or_else(|| d.manual.as_ref().map(|m| m.sizes[0]))
            .unwrap_or(0)
    };
    let telemetry = ProxyTelemetry::new(MetricRegistry::new(), Arc::new(ManualClock::new()));
    let home = enroll_home(
        HomeProvision {
            config: config.clone(),
            ceremony_secret: SECRET,
            seed: cfg.seed ^ 0x0e_11_70,
            dns: tb.trace.dns.clone(),
            devices: tb
                .devices
                .iter()
                .enumerate()
                .map(|(i, d)| DeviceSpec {
                    device: i as u16,
                    classifier: EventClassifier::simple_rule(device_size(d)),
                    min_packets_to_complete: d.min_packets_to_complete,
                })
                .collect(),
            start_at: SimTime::ZERO,
        },
        &SECRET,
        HumannessValidator::with_operating_point(1.0, 1.0, 0),
        telemetry,
        metrics,
    )
    .expect("sweep enrollment");
    let mut proxy = home.proxy;
    let mut app = home.app;

    // The fault plan carries only the control-outage window: the sweep
    // studies the key lifecycle, not channel noise.
    let mut plan = FaultPlan::none(cfg.seed ^ 0x00_17_a9_e5);
    if cfg.outage {
        let span = span_end.as_micros().saturating_sub(boot_end.as_micros());
        let from = boot_end + SimDuration::from_micros(span / 2);
        let to = boot_end + SimDuration::from_micros(span * 3 / 4);
        plan.control_outage = vec![(from, to)];
    }

    let mut lifecycle = KeyLifecycle::new(cfg.policy, SimTime::ZERO);
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, cfg.seed ^ 0x51);
    let policy = RetryPolicy::default();

    // Plan proofs: one per genuine post-bootstrap manual event, timed a
    // beat ahead of the event's first packet.
    struct ProofJob {
        at: SimTime,
        idx: usize,
    }
    let mut events: Vec<EvRec> = Vec::new();
    let mut ev_index: HashMap<u16, Vec<(u64, usize)>> = HashMap::new();
    let mut proofs: Vec<ProofJob> = Vec::new();
    for ev in tb
        .events
        .iter()
        .filter(|e| e.class == TrafficClass::Manual && e.start >= boot_end)
    {
        let idx = events.len();
        let at = SimTime::from_micros(ev.start.as_micros().saturating_sub(PROOF_LEAD.as_micros()));
        proofs.push(ProofJob { at, idx });
        events.push(EvRec {
            device: ev.device,
            verified: false,
            drops: 0,
            held: 0,
            released: 0,
        });
        ev_index
            .entry(ev.device)
            .or_default()
            .push((ev.start.as_micros(), idx));
    }
    for starts in ev_index.values_mut() {
        starts.sort_unstable();
    }
    proofs.sort_by_key(|p| (p.at, p.idx));

    let lookup = |ev_index: &HashMap<u16, Vec<(u64, usize)>>, device: u16, ts: SimTime| {
        let starts = ev_index.get(&device)?;
        let pos = starts.partition_point(|&(s, _)| s <= ts.as_micros());
        pos.checked_sub(1).map(|p| starts[p].1)
    };

    let mut fallbacks = 0u64;
    let mut outage_proofs = 0u64;
    let mut outage_fallbacks = 0u64;
    let mut proofs_delivered = 0u64;
    let mut max_live = KeyLifecycle::live_epochs(&proxy);
    let mut prev_outage = false;
    let mut snapshot_bytes = 0u64;
    let mut degraded_before_rebalance = 0u64;

    let rebalance_at = (tb.trace.packets.len() / 2).max(1);
    let mut pi = 0usize;
    let mut next_proof = 0usize;
    let mut packets = 0u64;

    macro_rules! tick {
        ($now:expr) => {{
            let outage = plan.control_outage_at($now);
            if outage && !prev_outage {
                plan.record(FaultKind::ControlOutage);
            }
            prev_outage = outage;
            lifecycle.tick($now, &mut proxy, !outage, metrics);
            max_live = max_live.max(KeyLifecycle::live_epochs(&proxy));
        }};
    }

    macro_rules! exchange {
        ($job:expr) => {{
            let job: &ProofJob = $job;
            tick!(job.at);
            let in_outage = plan.control_outage_at(job.at);
            if in_outage {
                outage_proofs += 1;
            }
            let outcome = app.authorize_with_retry(
                "iot.app",
                &imu,
                MotionKind::HumanTouch,
                job.at.as_micros(),
                &policy,
                |att, _| {
                    let r = match &att {
                        AuthAttempt::ZeroRtt(z) => proxy.on_auth_zero_rtt(z, job.at),
                        AuthAttempt::OneRtt(p) => proxy.on_auth_one_rtt(p, job.at),
                    };
                    match r {
                        Ok(v) => DeliveryResult::Verified(v),
                        Err(e) => DeliveryResult::Rejected(e),
                    }
                },
            );
            if outcome.fell_back {
                fallbacks += 1;
                if in_outage {
                    outage_fallbacks += 1;
                }
                // The ticket's epoch retired: a fresh handshake restores
                // 0-RTT under the current epoch.
                let hello = app.handshake_request();
                let sh = proxy.accept_handshake(&hello);
                app.complete_handshake(&sh).expect("re-handshake");
            }
            if outcome.verified {
                if !events[job.idx].verified {
                    events[job.idx].verified = true;
                    proofs_delivered += 1;
                }
                proxy.clear_lockout(events[job.idx].device);
            }
            for rel in proxy.take_quarantine_releases() {
                if rel.label == TrafficClass::Manual {
                    if let Some(e) = lookup(&ev_index, rel.device, rel.ts) {
                        events[e].released += 1;
                    }
                }
            }
        }};
    }

    while pi < tb.trace.packets.len() {
        let pkt = &tb.trace.packets[pi];
        while next_proof < proofs.len() && proofs[next_proof].at <= pkt.ts {
            exchange!(&proofs[next_proof]);
            next_proof += 1;
        }
        if cfg.rebalance && pi == rebalance_at {
            // Rebalance: snapshot, restore into a fresh telemetry plug
            // (the destination shard's registry), re-handshake the phone
            // (restore drops the 1-RTT session key), resume mid-trace.
            let bytes = snapshot_home(&proxy, metrics);
            snapshot_bytes = bytes.len() as u64;
            degraded_before_rebalance = proxy.telemetry().degraded_decision_count();
            let plug = ProxyTelemetry::new(MetricRegistry::new(), Arc::new(ManualClock::new()));
            proxy = restore_home(
                &bytes,
                config.clone(),
                &SECRET,
                HumannessValidator::with_operating_point(1.0, 1.0, 0),
                plug,
                |d| {
                    EventClassifier::simple_rule(tb.devices.get(d as usize).map_or(0, &device_size))
                },
                metrics,
            )
            .expect("sweep restore");
            let hello = app.handshake_request();
            let sh = proxy.accept_handshake(&hello);
            app.complete_handshake(&sh).expect("post-restore handshake");
        }
        tick!(pkt.ts);
        let d = proxy.on_packet(pkt);
        packets += 1;
        if pkt.label == TrafficClass::Manual && pkt.ts >= boot_end {
            if let Some(e) = lookup(&ev_index, pkt.device, pkt.ts) {
                match d {
                    ProxyDecision::Allow(_) => {}
                    ProxyDecision::Drop(_) => events[e].drops += 1,
                    ProxyDecision::Quarantine => events[e].held += 1,
                }
            }
        }
        pi += 1;
    }
    while next_proof < proofs.len() {
        exchange!(&proofs[next_proof]);
        next_proof += 1;
    }
    proxy.flush(span_end + config.event_gap * 3);

    let false_drops = events
        .iter()
        .filter(|e| e.verified && e.drops + e.held.saturating_sub(e.released) > 0)
        .count() as u64;

    let faults: Vec<(&'static str, u64)> = FAULT_KINDS
        .iter()
        .map(|&k| (k.as_str(), plan.count(k)))
        .collect();

    let audit = proxy.audit();
    ControlReport {
        packets,
        manual_events: events.len() as u64,
        proofs_delivered,
        false_drops,
        fallbacks,
        outage_proofs,
        outage_fallbacks,
        rotations: lifecycle.rotations,
        epochs_retired: lifecycle.retired,
        outages: lifecycle.outages,
        degraded_decisions: degraded_before_rebalance + proxy.telemetry().degraded_decision_count(),
        max_live_epochs_seen: max_live,
        snapshot_bytes,
        faults,
        stats: proxy.stats(),
        audit_head: audit.head(),
        audit_len: audit.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_rotates_retires_and_keeps_zero_false_drops() {
        let r = run_control_sweep(&ControlConfig::new(42, true), None);
        assert!(r.manual_events > 3, "need events: {r:?}");
        assert_eq!(r.false_drops, 0, "{r:?}");
        assert!(r.rotations > 0, "{r:?}");
        assert!(r.epochs_retired > 0, "{r:?}");
        assert!(r.fallbacks > 0, "retirement must bite 0-RTT: {r:?}");
        assert!(
            r.max_live_epochs_seen <= 2,
            "bounded window violated: {r:?}"
        );
        assert_eq!(r.proofs_delivered, r.manual_events, "{r:?}");
    }

    #[test]
    fn degraded_mode_keeps_zero_rtt_alive_through_the_outage() {
        let on = run_control_sweep(&ControlConfig::new(42, true), None);
        assert_eq!(on.outages, 1, "{on:?}");
        assert!(on.outage_proofs > 0, "outage must cover proofs: {on:?}");
        assert_eq!(
            on.outage_fallbacks, 0,
            "frozen window must keep serving 0-RTT: {on:?}"
        );
        assert!(on.degraded_decisions > 0, "{on:?}");
        let off = run_control_sweep(
            &ControlConfig {
                policy: LifecyclePolicy {
                    freeze_on_outage: false,
                    ..ControlConfig::new(42, true).policy
                },
                ..ControlConfig::new(42, true)
            },
            None,
        );
        assert_eq!(off.outages, 0, "baseline never enters degraded mode");
        assert!(
            off.outage_fallbacks > 0,
            "baseline must show the cost of retiring mid-outage: {off:?}"
        );
        assert_eq!(off.false_drops, 0, "fallback still saves every event");
    }

    #[test]
    fn rebalanced_cell_is_byte_identical_to_uninterrupted() {
        let plain = run_control_sweep(&ControlConfig::new(7, true), None);
        let moved = run_control_sweep(
            &ControlConfig {
                rebalance: true,
                ..ControlConfig::new(7, true)
            },
            None,
        );
        assert!(moved.snapshot_bytes > 0);
        assert_eq!(moved.stats, plain.stats);
        assert_eq!(moved.audit_head, plain.audit_head);
        assert_eq!(moved.audit_len, plain.audit_len);
        assert_eq!(moved.false_drops, 0);
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let a = run_control_sweep(&ControlConfig::new(3, true), None);
        let b = run_control_sweep(&ControlConfig::new(3, true), None);
        assert_eq!(a, b);
        let c = run_control_sweep(&ControlConfig::new(4, true), None);
        assert_ne!(a.stats, c.stats, "different seeds must differ");
    }

    #[test]
    fn metrics_see_the_whole_lifecycle() {
        let registry = MetricRegistry::new();
        let metrics = ControlMetrics::new(&registry);
        let r = run_control_sweep(
            &ControlConfig {
                rebalance: true,
                ..ControlConfig::new(42, true)
            },
            Some(&metrics),
        );
        assert_eq!(metrics.rotation_count(), r.rotations);
        assert_eq!(metrics.retired_count(), r.epochs_retired);
        assert_eq!(metrics.outage_count(), r.outages);
        assert_eq!(metrics.enrollment_accepted_count(), 1);
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_control_snapshots_total{op=\"save\"} 1"));
        assert!(text.contains("fiat_control_snapshots_total{op=\"restore\"} 1"));
    }
}
