//! Ticket-epoch key lifecycle: scheduled rotation, bounded-window
//! retirement, and the degraded mode that freezes both during a
//! control-plane outage.
//!
//! The quic layer keys its anti-replay state by epoch and can rotate,
//! retire, and report; this module supplies the *policy*. Every
//! [`LifecyclePolicy::rotation_interval`], the manager rotates the
//! issuing epoch; after each rotation it retires every epoch older than
//! the newest [`LifecyclePolicy::max_live_epochs`], which is what keeps
//! replay-store memory bounded (the DESIGN §14 memory-pressure risk, at
//! the replay layer). A 0-RTT proof under a retired epoch is answered
//! with `RetiredEpoch` and the client falls back to 1-RTT — rotation is
//! never a hard failure.
//!
//! During an outage ([`KeyLifecycle::tick`] called with
//! `control_reachable = false`) the ZKPAS-style sliding window applies:
//! the proxy enters degraded mode (audited + gauged), rotation *and*
//! retirement pause, and the live-epoch window freezes — it cannot grow
//! (no rotations) so memory stays bounded, and it cannot shrink (no
//! retirement) so every ticket that worked when the control plane was
//! last seen keeps working. On reconnect the proxy exits degraded mode
//! and the normal schedule resumes, retiring the window back down.
//! [`LifecyclePolicy::freeze_on_outage`] = `false` is the unsafe
//! baseline the experiment contrasts against: the proxy blindly follows
//! its local schedule through the outage, killing 0-RTT for clients
//! whose epochs retire mid-outage.

use fiat_core::FiatProxy;
use fiat_net::{SimDuration, SimTime};
use fiat_telemetry::ControlMetrics;

/// Rotation/retirement policy for one home.
#[derive(Debug, Clone, Copy)]
pub struct LifecyclePolicy {
    /// How often the issuing epoch rotates.
    pub rotation_interval: SimDuration,
    /// Epochs kept live after retirement (newest inclusive); ≥ 1.
    pub max_live_epochs: u32,
    /// Degraded mode: freeze rotation and retirement during an outage
    /// (`true` is the shipped behavior; `false` the unsafe baseline).
    pub freeze_on_outage: bool,
}

impl Default for LifecyclePolicy {
    fn default() -> Self {
        LifecyclePolicy {
            rotation_interval: SimDuration::from_mins(60),
            max_live_epochs: 2,
            freeze_on_outage: true,
        }
    }
}

/// Per-home lifecycle state driven by [`KeyLifecycle::tick`].
#[derive(Debug)]
pub struct KeyLifecycle {
    policy: LifecyclePolicy,
    next_rotation: SimTime,
    /// Rotations performed.
    pub rotations: u64,
    /// Epochs retired.
    pub retired: u64,
    /// Outage windows entered (degraded-mode transitions in).
    pub outages: u64,
}

impl KeyLifecycle {
    /// Manager whose first rotation is due one interval after `start`.
    pub fn new(policy: LifecyclePolicy, start: SimTime) -> Self {
        KeyLifecycle {
            policy,
            next_rotation: start + policy.rotation_interval,
            rotations: 0,
            retired: 0,
            outages: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> LifecyclePolicy {
        self.policy
    }

    /// Live epochs on the proxy right now (window width).
    pub fn live_epochs(proxy: &FiatProxy) -> u32 {
        proxy.ticket_epoch() - proxy.oldest_live_epoch() + 1
    }

    /// Advance the lifecycle to `now`. Call at any cadence; rotation
    /// fires at most once per tick (a long gap slips the schedule rather
    /// than storming rotations).
    pub fn tick(
        &mut self,
        now: SimTime,
        proxy: &mut FiatProxy,
        control_reachable: bool,
        metrics: Option<&ControlMetrics>,
    ) {
        if !control_reachable && self.policy.freeze_on_outage {
            if !proxy.is_degraded() {
                proxy.set_degraded(now, true);
                self.outages += 1;
                if let Some(m) = metrics {
                    m.record_outage();
                    m.record_degraded(true);
                }
            }
            return;
        }
        if proxy.is_degraded() {
            proxy.set_degraded(now, false);
            if let Some(m) = metrics {
                m.record_degraded(false);
            }
        }
        if now >= self.next_rotation {
            proxy.rotate_ticket_epoch();
            self.rotations += 1;
            if let Some(m) = metrics {
                m.record_rotation();
            }
            self.next_rotation = now + self.policy.rotation_interval;
        }
        let min_live = proxy
            .ticket_epoch()
            .saturating_sub(self.policy.max_live_epochs.saturating_sub(1));
        let n = proxy.retire_ticket_epochs_below(min_live);
        if n > 0 {
            self.retired += u64::from(n);
            if let Some(m) = metrics {
                m.record_retired(u64::from(n));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_core::{FiatProxy, ProxyConfig};
    use fiat_sensors::HumannessValidator;

    const SECRET: [u8; 32] = [0xC7; 32];

    fn proxy() -> FiatProxy {
        let mut p = FiatProxy::new(
            ProxyConfig::default(),
            &SECRET,
            HumannessValidator::with_operating_point(1.0, 1.0, 0),
        );
        p.start(SimTime::ZERO);
        p
    }

    fn policy(mins: u64) -> LifecyclePolicy {
        LifecyclePolicy {
            rotation_interval: SimDuration::from_mins(mins),
            max_live_epochs: 2,
            freeze_on_outage: true,
        }
    }

    #[test]
    fn rotates_on_schedule_and_bounds_the_window() {
        let mut p = proxy();
        let mut lc = KeyLifecycle::new(policy(10), SimTime::ZERO);
        for min in 0..=60u64 {
            lc.tick(SimTime::from_secs(min * 60), &mut p, true, None);
            assert!(
                KeyLifecycle::live_epochs(&p) <= 2,
                "window must stay bounded at minute {min}"
            );
        }
        assert_eq!(lc.rotations, 6, "one rotation per 10-minute interval");
        assert_eq!(p.ticket_epoch(), 6);
        assert_eq!(lc.retired, 5, "all but the newest 2 epochs retired");
        assert_eq!(p.oldest_live_epoch(), 5);
    }

    #[test]
    fn outage_freezes_the_window_and_recovery_resumes() {
        let mut p = proxy();
        let mut lc = KeyLifecycle::new(policy(10), SimTime::ZERO);
        // Two healthy rotations.
        lc.tick(SimTime::from_secs(10 * 60), &mut p, true, None);
        lc.tick(SimTime::from_secs(20 * 60), &mut p, true, None);
        let (epoch, oldest) = (p.ticket_epoch(), p.oldest_live_epoch());
        // A 40-minute outage: nothing rotates, nothing retires, the
        // proxy is flagged degraded.
        for min in [25u64, 30, 40, 50, 60] {
            lc.tick(SimTime::from_secs(min * 60), &mut p, false, None);
            assert!(p.is_degraded());
            assert_eq!(p.ticket_epoch(), epoch, "frozen at minute {min}");
            assert_eq!(p.oldest_live_epoch(), oldest, "frozen at minute {min}");
        }
        assert_eq!(lc.outages, 1, "one outage window, not one per tick");
        // Reconnect: degraded exits, the schedule resumes (one rotation
        // this tick — slipped, not stormed), the window retires back.
        lc.tick(SimTime::from_secs(61 * 60), &mut p, true, None);
        assert!(!p.is_degraded());
        assert_eq!(p.ticket_epoch(), epoch + 1);
        assert!(KeyLifecycle::live_epochs(&p) <= 2);
    }

    #[test]
    fn unsafe_baseline_keeps_retiring_through_the_outage() {
        let mut p = proxy();
        let mut lc = KeyLifecycle::new(
            LifecyclePolicy {
                freeze_on_outage: false,
                ..policy(10)
            },
            SimTime::ZERO,
        );
        lc.tick(SimTime::from_secs(10 * 60), &mut p, false, None);
        lc.tick(SimTime::from_secs(20 * 60), &mut p, false, None);
        assert!(!p.is_degraded(), "baseline never flags degradation");
        assert_eq!(p.ticket_epoch(), 2, "schedule ran through the outage");
        assert_eq!(p.oldest_live_epoch(), 1, "old epochs retired mid-outage");
    }

    #[test]
    fn metrics_track_the_lifecycle() {
        let registry = fiat_telemetry::MetricRegistry::new();
        let metrics = ControlMetrics::new(&registry);
        let mut p = proxy();
        let mut lc = KeyLifecycle::new(policy(10), SimTime::ZERO);
        lc.tick(SimTime::from_secs(10 * 60), &mut p, true, Some(&metrics));
        lc.tick(SimTime::from_secs(20 * 60), &mut p, true, Some(&metrics));
        lc.tick(SimTime::from_secs(25 * 60), &mut p, false, Some(&metrics));
        lc.tick(SimTime::from_secs(30 * 60), &mut p, true, Some(&metrics));
        assert_eq!(metrics.rotation_count(), lc.rotations);
        assert_eq!(metrics.retired_count(), lc.retired);
        assert_eq!(metrics.outage_count(), 1);
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_control_degraded_transitions_total{state=\"entered\"} 1"));
        assert!(text.contains("fiat_control_degraded_transitions_total{state=\"exited\"} 1"));
    }
}
