//! Enrollment: phone ↔ proxy mutual authentication and home
//! provisioning.
//!
//! The paper's evaluation starts from a home that already exists fully
//! configured. This module makes that setup explicit: a three-message
//! challenge/response over the pairing-ceremony keys (the lightpuf
//! group-enrollment shape — request, challenge with an authenticator,
//! proof back) establishes that both sides hold keys derived from the
//! same out-of-band ceremony secret, and only then does the control
//! plane provision the proxy: DNS knowledge, device registrations, and
//! the QUIC handshake that issues the phone its first session ticket
//! under epoch 0.
//!
//! ```text
//!   phone                              proxy
//!     │ ── EnrollRequest{pn} ──────────▶ │
//!     │ ◀─ EnrollChallenge{xn, tag_x} ── │  tag_x = HMAC(sign, "proxy"‖pn‖xn)
//!     │ ── EnrollProof{tag_p} ─────────▶ │  tag_p = HMAC(sign, "phone"‖xn‖pn)
//! ```
//!
//! The phone verifies `tag_x` before revealing anything (a rogue proxy
//! learns only a nonce), and the proxy verifies `tag_p` before
//! provisioning (a rogue phone enrolls nothing). Both tags bind both
//! nonces, so neither message replays across ceremonies.

use fiat_core::pairing::Paired;
use fiat_core::{pair, EventClassifier, FiatApp, FiatProxy, ProxyConfig, ProxyTelemetry};
use fiat_crypto::TeeKeystore;
use fiat_net::{DnsTable, SimTime};
use fiat_sensors::HumannessValidator;
use fiat_telemetry::ControlMetrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain separator for the proxy's challenge authenticator.
const PROXY_TAG_LABEL: &[u8] = b"fiat-enroll-proxy";
/// Domain separator for the phone's enrollment proof.
const PHONE_TAG_LABEL: &[u8] = b"fiat-enroll-phone";

/// Message 1: the phone asks to enroll.
#[derive(Debug, Clone, Copy)]
pub struct EnrollRequest {
    /// Phone-chosen nonce, echoed under both tags.
    pub phone_nonce: [u8; 32],
}

/// Message 2: the proxy challenges back, proving its own ceremony keys.
#[derive(Debug, Clone, Copy)]
pub struct EnrollChallenge {
    /// Proxy-chosen nonce.
    pub proxy_nonce: [u8; 32],
    /// `HMAC(sign_key, "fiat-enroll-proxy" ‖ phone_nonce ‖ proxy_nonce)`.
    pub proxy_tag: [u8; 32],
}

/// Message 3: the phone's proof, completing mutual authentication.
#[derive(Debug, Clone, Copy)]
pub struct EnrollProof {
    /// `HMAC(sign_key, "fiat-enroll-phone" ‖ proxy_nonce ‖ phone_nonce)`.
    pub phone_tag: [u8; 32],
}

fn tag_input(label: &[u8], first: &[u8; 32], second: &[u8; 32]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(label.len() + 64);
    msg.extend_from_slice(label);
    msg.extend_from_slice(first);
    msg.extend_from_slice(second);
    msg
}

/// The phone's side of enrollment: holds its pairing keys and the nonce
/// it committed to in [`EnrollRequest`].
pub struct PhoneEnroller {
    store: TeeKeystore,
    keys: Paired,
    phone_nonce: [u8; 32],
}

impl PhoneEnroller {
    /// Pair against `ceremony_secret` and pick this enrollment's nonce.
    pub fn new(ceremony_secret: &[u8; 32], seed: u64) -> Self {
        let store = TeeKeystore::new();
        let (keys, _psk) = pair(&store, ceremony_secret);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut phone_nonce = [0u8; 32];
        rng.fill(&mut phone_nonce);
        PhoneEnroller {
            store,
            keys,
            phone_nonce,
        }
    }

    /// Message 1.
    pub fn request(&self) -> EnrollRequest {
        EnrollRequest {
            phone_nonce: self.phone_nonce,
        }
    }

    /// Verify the proxy's challenge; on success produce message 3.
    /// `None` means the proxy failed to prove the ceremony keys — the
    /// phone aborts without revealing its own proof.
    pub fn answer_challenge(&self, ch: &EnrollChallenge) -> Option<EnrollProof> {
        let expect = tag_input(PROXY_TAG_LABEL, &self.phone_nonce, &ch.proxy_nonce);
        let ok = self
            .store
            .verify(self.keys.sign_key, &expect, &ch.proxy_tag)
            .unwrap_or(false);
        if !ok {
            return None;
        }
        let msg = tag_input(PHONE_TAG_LABEL, &ch.proxy_nonce, &self.phone_nonce);
        let phone_tag = self
            .store
            .sign(self.keys.sign_key, &msg)
            .expect("sealed sign key");
        Some(EnrollProof { phone_tag })
    }
}

/// The proxy's side of enrollment.
pub struct ProxyEnroller {
    store: TeeKeystore,
    keys: Paired,
    proxy_nonce: [u8; 32],
    // Nonce pair in flight, set by `challenge`.
    pending: Option<([u8; 32], [u8; 32])>,
}

impl ProxyEnroller {
    /// Pair against `ceremony_secret` and pick this enrollment's nonce.
    pub fn new(ceremony_secret: &[u8; 32], seed: u64) -> Self {
        let store = TeeKeystore::new();
        let (keys, _psk) = pair(&store, ceremony_secret);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut proxy_nonce = [0u8; 32];
        rng.fill(&mut proxy_nonce);
        ProxyEnroller {
            store,
            keys,
            proxy_nonce,
            pending: None,
        }
    }

    /// Answer message 1 with message 2.
    pub fn challenge(&mut self, req: &EnrollRequest) -> EnrollChallenge {
        let msg = tag_input(PROXY_TAG_LABEL, &req.phone_nonce, &self.proxy_nonce);
        let proxy_tag = self
            .store
            .sign(self.keys.sign_key, &msg)
            .expect("sealed sign key");
        self.pending = Some((req.phone_nonce, self.proxy_nonce));
        EnrollChallenge {
            proxy_nonce: self.proxy_nonce,
            proxy_tag,
        }
    }

    /// Verify message 3. `true` completes mutual authentication.
    pub fn verify_proof(&self, proof: &EnrollProof) -> bool {
        let Some((phone_nonce, proxy_nonce)) = self.pending else {
            return false;
        };
        let msg = tag_input(PHONE_TAG_LABEL, &proxy_nonce, &phone_nonce);
        self.store
            .verify(self.keys.sign_key, &msg, &proof.phone_tag)
            .unwrap_or(false)
    }
}

/// Why an enrollment was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnrollError {
    /// The phone rejected the proxy's challenge authenticator (the proxy
    /// does not hold this ceremony's keys).
    ProxyRejected,
    /// The proxy rejected the phone's proof.
    PhoneRejected,
}

impl std::fmt::Display for EnrollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnrollError::ProxyRejected => write!(f, "phone rejected the proxy's challenge"),
            EnrollError::PhoneRejected => write!(f, "proxy rejected the phone's proof"),
        }
    }
}

impl std::error::Error for EnrollError {}

/// One device to register at provisioning time.
pub struct DeviceSpec {
    /// Device id.
    pub device: u16,
    /// Its event classifier.
    pub classifier: EventClassifier,
    /// First-N classification window.
    pub min_packets_to_complete: usize,
}

/// Everything the control plane provisions into a new home.
pub struct HomeProvision {
    /// Proxy configuration.
    pub config: ProxyConfig,
    /// The out-of-band ceremony secret on the proxy side.
    pub ceremony_secret: [u8; 32],
    /// Seed for enrollment nonces and the phone's client RNG.
    pub seed: u64,
    /// DNS knowledge to install.
    pub dns: DnsTable,
    /// Devices to register.
    pub devices: Vec<DeviceSpec>,
    /// When the proxy starts (bootstrap anchor).
    pub start_at: SimTime,
}

/// A freshly enrolled home: a running proxy and its paired phone app,
/// holding a session ticket under the first epoch.
pub struct EnrolledHome {
    /// The home's proxy, started and provisioned.
    pub proxy: FiatProxy,
    /// The phone app, handshaken (0-RTT ready).
    pub app: FiatApp,
}

/// Run the full enrollment flow: mutual authentication with the phone
/// holding `phone_secret` (a mismatch with the provision's ceremony
/// secret is refused on the first tag that fails to verify), then
/// provisioning — DNS, device registrations, proxy start — and the
/// first QUIC handshake, leaving the phone 0-RTT-capable.
pub fn enroll_home(
    provision: HomeProvision,
    phone_secret: &[u8; 32],
    validator: HumannessValidator,
    telemetry: ProxyTelemetry,
    metrics: Option<&ControlMetrics>,
) -> Result<EnrolledHome, EnrollError> {
    let phone = PhoneEnroller::new(phone_secret, provision.seed ^ 0x70_68_6f_6e_65);
    let mut proxy_side =
        ProxyEnroller::new(&provision.ceremony_secret, provision.seed ^ 0x70_72_78);

    let req = phone.request();
    let ch = proxy_side.challenge(&req);
    let proof = match phone.answer_challenge(&ch) {
        Some(p) => p,
        None => {
            if let Some(m) = metrics {
                m.record_enrollment(false);
            }
            return Err(EnrollError::ProxyRejected);
        }
    };
    if !proxy_side.verify_proof(&proof) {
        if let Some(m) = metrics {
            m.record_enrollment(false);
        }
        return Err(EnrollError::PhoneRejected);
    }

    let mut proxy = FiatProxy::with_telemetry(
        provision.config,
        &provision.ceremony_secret,
        validator,
        telemetry,
    );
    proxy.set_dns(provision.dns);
    for d in provision.devices {
        proxy.register_device(d.device, d.classifier, d.min_packets_to_complete);
    }
    proxy.start(provision.start_at);

    let mut app = FiatApp::new(phone_secret, provision.seed ^ 0x61_70_70);
    let hello = app.handshake_request();
    let sh = proxy.accept_handshake(&hello);
    app.complete_handshake(&sh)
        .expect("matching ceremony secrets handshake");
    debug_assert!(app.can_zero_rtt());

    if let Some(m) = metrics {
        m.record_enrollment(true);
    }
    Ok(EnrolledHome { proxy, app })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_telemetry::{ManualClock, MetricRegistry};
    use std::sync::Arc;

    const SECRET: [u8; 32] = [0xE1; 32];

    fn provision(secret: [u8; 32]) -> HomeProvision {
        HomeProvision {
            config: ProxyConfig::default(),
            ceremony_secret: secret,
            seed: 7,
            dns: DnsTable::new(),
            devices: vec![DeviceSpec {
                device: 0,
                classifier: EventClassifier::simple_rule(300),
                min_packets_to_complete: 4,
            }],
            start_at: SimTime::ZERO,
        }
    }

    fn plug() -> (MetricRegistry, ProxyTelemetry) {
        let registry = MetricRegistry::new();
        let telemetry = ProxyTelemetry::new(registry.clone(), Arc::new(ManualClock::new()));
        (registry, telemetry)
    }

    #[test]
    fn matching_secrets_enroll_and_issue_a_ticket() {
        let (registry, telemetry) = plug();
        let metrics = ControlMetrics::new(&registry);
        let home = enroll_home(
            provision(SECRET),
            &SECRET,
            HumannessValidator::with_operating_point(1.0, 1.0, 0),
            telemetry,
            Some(&metrics),
        )
        .expect("enrollment");
        assert!(home.app.can_zero_rtt(), "first session ticket issued");
        assert_eq!(home.proxy.ticket_epoch(), 0, "first ticket is epoch 0");
        assert_eq!(metrics.enrollment_accepted_count(), 1);
        assert_eq!(metrics.enrollment_rejected_count(), 0);
    }

    #[test]
    fn wrong_phone_secret_is_refused_before_provisioning() {
        let (registry, telemetry) = plug();
        let metrics = ControlMetrics::new(&registry);
        let err = match enroll_home(
            provision(SECRET),
            &[0x99; 32],
            HumannessValidator::with_operating_point(1.0, 1.0, 0),
            telemetry,
            Some(&metrics),
        ) {
            Ok(_) => panic!("mismatched ceremony must be refused"),
            Err(e) => e,
        };
        // The phone aborts first: the proxy's challenge tag does not
        // verify under the phone's (different) keys.
        assert_eq!(err, EnrollError::ProxyRejected);
        assert_eq!(metrics.enrollment_rejected_count(), 1);
        assert_eq!(metrics.enrollment_accepted_count(), 0);
    }

    #[test]
    fn tampered_proof_is_refused_by_the_proxy() {
        let phone = PhoneEnroller::new(&SECRET, 1);
        let mut proxy = ProxyEnroller::new(&SECRET, 2);
        let ch = proxy.challenge(&phone.request());
        let mut proof = phone.answer_challenge(&ch).expect("genuine challenge");
        proof.phone_tag[0] ^= 0x80;
        assert!(!proxy.verify_proof(&proof));
    }

    #[test]
    fn proof_does_not_verify_without_a_pending_challenge() {
        let phone = PhoneEnroller::new(&SECRET, 1);
        let mut issuing = ProxyEnroller::new(&SECRET, 2);
        let ch = issuing.challenge(&phone.request());
        let proof = phone.answer_challenge(&ch).expect("genuine challenge");
        // A second proxy that never challenged has no nonce pair to
        // check against, so a replayed proof is dead on arrival.
        let fresh = ProxyEnroller::new(&SECRET, 3);
        assert!(!fresh.verify_proof(&proof));
    }

    #[test]
    fn tags_bind_both_nonces() {
        // Replaying a challenge against a different phone nonce fails:
        // the tag covers the phone's nonce too.
        let phone_a = PhoneEnroller::new(&SECRET, 1);
        let phone_b = PhoneEnroller::new(&SECRET, 9);
        let mut proxy = ProxyEnroller::new(&SECRET, 2);
        let ch = proxy.challenge(&phone_a.request());
        assert!(phone_a.answer_challenge(&ch).is_some());
        assert!(phone_b.answer_challenge(&ch).is_none());
    }
}
