//! fiat-control — the proxy-cluster control plane.
//!
//! Everything below the pipeline treats a home as already provisioned:
//! the ceremony happened, tickets exist, epochs rotate by fiat. This
//! crate is where those facts come from. It models the control plane a
//! FIAT deployment runs beside its data plane:
//!
//! - [`enroll`] — the phone ↔ proxy mutual-auth enrollment ceremony:
//!   three messages over the pairing-derived keys, device provisioning,
//!   and the first session ticket. A home that fails mutual auth gets
//!   nothing — no devices, no tickets, no state.
//! - [`lifecycle`] — ticket-epoch key lifecycle: scheduled rotation,
//!   bounded-window retirement (replay-store memory stays bounded), and
//!   the retired-epoch 0-RTT → 1-RTT fallback that makes rotation
//!   invisible to users.
//! - [`rebalance`] — home snapshot/restore: canonical serialized bytes
//!   of a proxy's full decision state, and the restore path a fleet
//!   uses to move a home between shards byte-identically.
//! - [`sweep`] — the end-to-end experiment cell: enroll → rotate →
//!   outage → recover on the paper's testbed, with the degraded-mode
//!   sliding window contrasted against the unsafe keep-retiring
//!   baseline, surfaced as `experiments control`.
//!
//! Degraded mode is the crate's availability story: when the control
//! plane is unreachable, the proxy freezes its live-epoch window — it
//! cannot grow (bounded memory) and cannot shrink (last-known-good
//! tickets keep authenticating) — flags every decision it takes in the
//! audit chain and telemetry, and recovers cleanly on reconnect.

pub mod enroll;
pub mod lifecycle;
pub mod rebalance;
pub mod sweep;

pub use enroll::{
    enroll_home, DeviceSpec, EnrollChallenge, EnrollError, EnrollProof, EnrollRequest,
    EnrolledHome, HomeProvision, PhoneEnroller, ProxyEnroller,
};
pub use lifecycle::{KeyLifecycle, LifecyclePolicy};
pub use rebalance::{restore_home, snapshot_home, RestoreError};
pub use sweep::{run_control_sweep, ControlConfig, ControlReport};
