//! Snapshot/restore orchestration: the control-plane operations a fleet
//! uses to rebalance a home between shards or survive a proxy restart.
//!
//! [`snapshot_home`] serializes a [`FiatProxy`]'s [`HomeSnapshot`] to
//! canonical JSON bytes (deterministic: the snapshot sorts every
//! collection, so the same state always produces the same bytes) and
//! counts them into `fiat_control_snapshot_bytes_total`.
//! [`restore_home`] parses, re-verifies (version + audit chain), and
//! rebuilds a proxy that resumes byte-identically — the determinism
//! contract proven by the core pipeline tests and the fleet rebalance
//! oracle.

use fiat_core::pipeline::ProxyTelemetry;
use fiat_core::{EventClassifier, FiatProxy, HomeSnapshot, ProxyConfig, SnapshotError};
use fiat_sensors::HumannessValidator;
use fiat_telemetry::ControlMetrics;

/// Why a serialized snapshot could not be restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreError {
    /// The bytes did not parse as a [`HomeSnapshot`].
    Corrupt,
    /// The snapshot parsed but failed validation.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Corrupt => write!(f, "snapshot bytes did not parse"),
            RestoreError::Snapshot(e) => write!(f, "snapshot rejected: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<SnapshotError> for RestoreError {
    fn from(e: SnapshotError) -> Self {
        RestoreError::Snapshot(e)
    }
}

/// Serialize `proxy`'s full decision state to canonical JSON bytes.
pub fn snapshot_home(proxy: &FiatProxy, metrics: Option<&ControlMetrics>) -> Vec<u8> {
    let snap = proxy.snapshot();
    let bytes = serde_json::to_vec(&snap).expect("snapshot serializes");
    if let Some(m) = metrics {
        m.record_snapshot_save(bytes.len() as u64);
    }
    bytes
}

/// Rebuild a proxy from [`snapshot_home`] bytes. The caller re-supplies
/// what the snapshot deliberately excludes: the ceremony secret (key
/// material never leaves a keystore), a validator, a telemetry plug
/// (typically a fresh registry on the destination shard — restore is
/// telemetry-silent, so old + new registries fold additively), and the
/// per-device classifiers.
pub fn restore_home(
    bytes: &[u8],
    config: ProxyConfig,
    ceremony_secret: &[u8; 32],
    validator: HumannessValidator,
    telemetry: ProxyTelemetry,
    classifiers: impl FnMut(u16) -> EventClassifier,
    metrics: Option<&ControlMetrics>,
) -> Result<FiatProxy, RestoreError> {
    let snap: HomeSnapshot = serde_json::from_slice(bytes).map_err(|_| RestoreError::Corrupt)?;
    let proxy = FiatProxy::restore(
        config,
        ceremony_secret,
        validator,
        telemetry,
        &snap,
        classifiers,
    )?;
    if let Some(m) = metrics {
        m.record_snapshot_restore();
    }
    Ok(proxy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_net::SimTime;
    use fiat_telemetry::{ManualClock, MetricRegistry};
    use proptest::prelude::*;
    use std::sync::Arc;

    const SECRET: [u8; 32] = [0xB4; 32];

    fn plug() -> ProxyTelemetry {
        ProxyTelemetry::new(MetricRegistry::new(), Arc::new(ManualClock::new()))
    }

    fn seeded_proxy(devices: u16, rotations: u32, start_secs: u64) -> FiatProxy {
        let mut p = FiatProxy::with_telemetry(
            ProxyConfig::default(),
            &SECRET,
            HumannessValidator::with_operating_point(1.0, 1.0, 0),
            plug(),
        );
        for d in 0..devices {
            p.register_device(d, EventClassifier::simple_rule(200 + d * 10), 4);
        }
        p.start(SimTime::from_secs(start_secs));
        for _ in 0..rotations {
            p.rotate_ticket_epoch();
        }
        p
    }

    #[test]
    fn snapshot_restore_round_trips_and_counts_bytes() {
        let registry = MetricRegistry::new();
        let metrics = ControlMetrics::new(&registry);
        let proxy = seeded_proxy(3, 2, 5);
        let bytes = snapshot_home(&proxy, Some(&metrics));
        let restored = restore_home(
            &bytes,
            ProxyConfig::default(),
            &SECRET,
            HumannessValidator::with_operating_point(1.0, 1.0, 0),
            plug(),
            |d| EventClassifier::simple_rule(200 + d * 10),
            Some(&metrics),
        )
        .expect("restore");
        assert_eq!(restored.ticket_epoch(), 2);
        assert_eq!(snapshot_home(&restored, None), bytes, "state round-trips");
        let text = registry.render_prometheus();
        assert!(text.contains(&format!(
            "fiat_control_snapshot_bytes_total {}",
            bytes.len()
        )));
        assert!(text.contains("fiat_control_snapshots_total{op=\"save\"} 1"));
        assert!(text.contains("fiat_control_snapshots_total{op=\"restore\"} 1"));
    }

    #[test]
    fn garbage_bytes_are_refused() {
        let err = match restore_home(
            b"not a snapshot",
            ProxyConfig::default(),
            &SECRET,
            HumannessValidator::with_operating_point(1.0, 1.0, 0),
            plug(),
            |_| EventClassifier::simple_rule(0),
            None,
        ) {
            Ok(_) => panic!("garbage must be refused"),
            Err(e) => e,
        };
        assert_eq!(err, RestoreError::Corrupt);
    }

    #[test]
    fn foreign_version_is_refused() {
        let proxy = seeded_proxy(1, 0, 0);
        let mut snap = proxy.snapshot();
        snap.version = 99;
        let bytes = serde_json::to_vec(&snap).unwrap();
        let err = match restore_home(
            &bytes,
            ProxyConfig::default(),
            &SECRET,
            HumannessValidator::with_operating_point(1.0, 1.0, 0),
            plug(),
            |_| EventClassifier::simple_rule(0),
            None,
        ) {
            Ok(_) => panic!("foreign version must be refused"),
            Err(e) => e,
        };
        assert_eq!(
            err,
            RestoreError::Snapshot(SnapshotError::UnsupportedVersion(99))
        );
    }

    proptest! {
        /// The satellite round-trip property: for arbitrary provisioning
        /// shapes, serialize → deserialize → serialize is byte-identical
        /// (the canonical-bytes contract every rebalance leans on).
        #[test]
        fn snapshot_serde_round_trips_byte_identically(
            devices in 0u16..6,
            rotations in 0u32..4,
            start_secs in 0u64..1000,
        ) {
            let proxy = seeded_proxy(devices, rotations, start_secs);
            let bytes = snapshot_home(&proxy, None);
            let snap: HomeSnapshot = serde_json::from_slice(&bytes).expect("parses");
            let again = serde_json::to_vec(&snap).expect("re-serializes");
            prop_assert_eq!(bytes, again);
        }

        /// A checkpoint-truncated audit chain survives rebalance: drive
        /// enough entries through a small cap that the journal truncates
        /// behind a checkpoint, then snapshot → restore → the restored
        /// chain still verifies (from the checkpoint, not genesis), the
        /// truncation ledger carries over, and re-snapshotting is
        /// byte-identical.
        #[test]
        fn truncated_audit_chain_survives_rebalance(
            cap in 4usize..12,
            extra in 1u16..30,
        ) {
            let config = ProxyConfig {
                max_audit_entries: Some(cap),
                ..ProxyConfig::default()
            };
            let mut proxy = FiatProxy::with_telemetry(
                config.clone(),
                &SECRET,
                HumannessValidator::with_operating_point(1.0, 1.0, 0),
                plug(),
            );
            proxy.start(SimTime::ZERO);
            // Each unregistered device appends one unknown-device audit
            // entry at first sighting (past the 20-minute bootstrap —
            // during the window everything merely buffers); enough of
            // them force truncation.
            let sightings = cap as u16 + extra;
            for d in 0..sightings {
                let _ = proxy.on_packet(&unknown_pkt(d, 1_300 + u64::from(d)));
            }
            prop_assert!(proxy.audit().truncated() > 0, "cap never engaged");
            prop_assert!(proxy.audit().checkpoint().is_some());
            prop_assert!(proxy.audit().verify());

            let bytes = snapshot_home(&proxy, None);
            let restored = restore_home(
                &bytes,
                config,
                &SECRET,
                HumannessValidator::with_operating_point(1.0, 1.0, 0),
                plug(),
                |_| EventClassifier::simple_rule(0),
                None,
            ).expect("restore");
            prop_assert!(restored.audit().verify(), "restored chain fails verification");
            prop_assert_eq!(restored.audit().truncated(), proxy.audit().truncated());
            prop_assert_eq!(restored.audit().total_appended(), u64::from(sightings));
            prop_assert_eq!(restored.audit().checkpoint(), proxy.audit().checkpoint());
            prop_assert_eq!(snapshot_home(&restored, None), bytes);
        }
    }

    fn unknown_pkt(device: u16, at_secs: u64) -> fiat_net::PacketRecord {
        use fiat_net::{Direction, TcpFlags, TlsVersion, TrafficClass, Transport};
        fiat_net::PacketRecord {
            ts: SimTime::from_secs(at_secs),
            device,
            direction: Direction::FromDevice,
            local_ip: std::net::Ipv4Addr::new(192, 168, 1, 50),
            remote_ip: std::net::Ipv4Addr::new(34, 0, 0, 1),
            local_port: 40_000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::ack(),
            tls: TlsVersion::None,
            size: 100,
            label: TrafficClass::Control,
        }
    }
}
