//! Generative IoT device model.
//!
//! A device is described by (a) its *periodic control flows* — the
//! constant-size, constant-pace packets that make IoT traffic predictable
//! (§2) — and (b) one *event shape* per traffic class for the bursty,
//! unpredictable part: app-triggered manual commands, routine-triggered
//! automated commands, and occasional irregular control chatter (the
//! Nest-E's hourly quirk, §3.2).

use crate::location::Location;
use fiat_net::{
    Direction, PacketRecord, SimDuration, SimTime, TcpFlags, TlsVersion, Trace, TrafficClass,
    Transport,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::net::Ipv4Addr;

/// Broad device category (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Echo Dot, Home Mini, Google Home.
    SmartSpeaker,
    /// WyzeCam, Blink.
    Camera,
    /// SP10, WP3.
    SmartPlug,
    /// Nest-E.
    Thermostat,
    /// E4 Mop Robot.
    RobotVacuum,
}

/// A periodic control flow: one packet per period, constant size, fixed
/// endpoint. `port_churn_every` models devices that re-open connections
/// from fresh ephemeral ports — the behaviour that breaks the Classic
/// 6-tuple definition and motivates PortLess (§2.1).
#[derive(Debug, Clone)]
pub struct PeriodicFlow {
    /// Vendor domain (pre-localization), e.g. "avs.amazon.com".
    pub domain: String,
    /// Packet direction relative to the device.
    pub direction: Direction,
    /// Transport protocol.
    pub transport: Transport,
    /// Constant packet size.
    pub size: u16,
    /// Period between packets.
    pub period: SimDuration,
    /// Uniform timing jitter in milliseconds (small vs the matcher bin).
    pub jitter_ms: u64,
    /// Re-draw the device-side ephemeral port every this many packets
    /// (`0` = stable port).
    pub port_churn_every: u32,
    /// Number of distinct cloud IPs the domain resolves to (round-robin).
    pub replica_ips: u8,
    /// TLS version carried by the flow's packets.
    pub tls: TlsVersion,
}

/// A constant-rate streaming tail appended to an event (camera video:
/// packets at a fixed size and pace, which the bucket heuristic learns as
/// predictable — §3.2's explanation for cameras' 60-65 % manual
/// predictability).
#[derive(Debug, Clone, Copy)]
pub struct StreamTail {
    /// Packet count range (inclusive).
    pub n: (usize, usize),
    /// Constant packet size.
    pub size: u16,
    /// Constant inter-arrival in milliseconds.
    pub iat_ms: u64,
}

/// Shape of a bursty event for one traffic class.
#[derive(Debug, Clone)]
pub struct EventShape {
    /// Packet count range (inclusive), before any streaming tail.
    pub n_packets: (usize, usize),
    /// Direction of the first packet (commands arrive ToDevice).
    pub first_direction: Direction,
    /// Transport protocol of the event's packets.
    pub transport: Transport,
    /// TLS version on the first packets.
    pub tls: TlsVersion,
    /// Size palette; each packet draws one (plus jitter).
    pub sizes: Vec<u16>,
    /// Uniform size jitter (± bytes).
    pub size_jitter: u16,
    /// Intra-event inter-arrival range in milliseconds (irregular).
    pub iat_ms: (u64, u64),
    /// TCP flags on the first packet.
    pub first_flags: TcpFlags,
    /// Vendor domain the event talks to.
    pub domain: String,
    /// Optional constant-rate tail.
    pub stream: Option<StreamTail>,
}

/// A complete generative device model.
#[derive(Debug, Clone)]
pub struct DeviceModel {
    /// Device name as in Table 1 (e.g. "EchoDot4").
    pub name: String,
    /// Category.
    pub kind: DeviceKind,
    /// Unique endpoint base for cloud IP derivation.
    pub endpoint_base: u16,
    /// Periodic control flows.
    pub control_flows: Vec<PeriodicFlow>,
    /// Shape of irregular (unpredictable) control events, with rate/day.
    pub control_events: Option<(EventShape, f64)>,
    /// Shape of automated (routine) events.
    pub automated: Option<EventShape>,
    /// Shape of manual (human) events.
    pub manual: Option<EventShape>,
    /// Minimum packets the device needs to execute a command (§3.3's N).
    pub min_packets_to_complete: usize,
    /// Distinctive notification packet size for simple-rule devices
    /// (SP10 / WP3 / Nest-E, §4: "the size of the notification packets
    /// (267 and 235 Bytes) is a distinctive feature").
    pub simple_rule_size: Option<u16>,
    /// Probability that a non-manual event is generated with the manual
    /// shape (and vice versa) — models the class overlap that keeps the
    /// paper's F1 scores below 1.0 for complex devices.
    pub confusion: f64,
}

impl DeviceModel {
    /// Whether §5's access control uses a size rule instead of ML.
    pub fn uses_simple_rule(&self) -> bool {
        self.simple_rule_size.is_some()
    }

    /// The device's LAN IP given its index.
    pub fn lan_ip(device_idx: u16) -> Ipv4Addr {
        let [hi, lo] = device_idx.to_be_bytes();
        Ipv4Addr::new(192, 168, hi.wrapping_add(1), lo.wrapping_add(10))
    }

    /// Emit all periodic control-flow packets over `[0, duration)` into
    /// `trace`, registering DNS mappings.
    pub fn emit_control(
        &self,
        trace: &mut Trace,
        device_idx: u16,
        location: Location,
        duration: SimDuration,
        rng: &mut StdRng,
    ) {
        let lan_ip = Self::lan_ip(device_idx);
        for (fi, flow) in self.control_flows.iter().enumerate() {
            let domain = location.localize_domain(&flow.domain);
            let endpoint = self.endpoint_base + fi as u16;
            // Register all replicas in DNS.
            for r in 0..flow.replica_ips.max(1) {
                trace
                    .dns
                    .observe_forward(location.cloud_ip(endpoint, r), domain.clone());
            }
            let mut t = SimTime::ZERO
                + SimDuration::from_millis(rng.gen_range(0..flow.period.as_millis().max(1)));
            let mut port = ephemeral_port(rng);
            let mut count = 0u32;
            let mut replica = 0u8;
            while t < SimTime::ZERO + duration {
                if flow.port_churn_every > 0
                    && count > 0
                    && count.is_multiple_of(flow.port_churn_every)
                {
                    port = ephemeral_port(rng);
                }
                trace.push(PacketRecord {
                    ts: t,
                    device: device_idx,
                    direction: flow.direction,
                    local_ip: lan_ip,
                    remote_ip: location.cloud_ip(endpoint, replica),
                    local_port: port,
                    remote_port: 443,
                    transport: flow.transport,
                    tcp_flags: if flow.transport == Transport::Tcp {
                        TcpFlags::psh_ack()
                    } else {
                        TcpFlags::default()
                    },
                    tls: flow.tls,
                    size: flow.size,
                    label: TrafficClass::Control,
                });
                replica = (replica + 1) % flow.replica_ips.max(1);
                count += 1;
                // Timer-driven firmware reschedules in coarse ticks: the
                // jitter takes a handful of discrete 10 ms values, so
                // interval values repeat exactly (what makes the traffic
                // predictable under exact inter-arrival matching).
                let jitter = if flow.jitter_ms == 0 {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_millis(rng.gen_range(0..=flow.jitter_ms / 10) * 10)
                };
                t = t + flow.period + jitter;
            }
        }
    }

    /// Emit one bursty event of the given class starting at `start`;
    /// returns the event's packets (already pushed into `trace`).
    ///
    /// With probability [`DeviceModel::confusion`], the event is drawn
    /// using another class's shape while keeping its true label.
    pub fn emit_event(
        &self,
        trace: &mut Trace,
        device_idx: u16,
        location: Location,
        class: TrafficClass,
        start: SimTime,
        rng: &mut StdRng,
    ) -> usize {
        self.emit_event_with_confusion(trace, device_idx, location, class, start, rng, 1.0)
    }

    /// Like [`DeviceModel::emit_event`], but scaling the class-confusion
    /// probability. Scripted operations (ADB automation, as in the
    /// paper's §6 accuracy runs) are uniform and rarely ambiguous
    /// (scale ≈ 0.15); free-form human use is messier (scale 1.0).
    #[allow(clippy::too_many_arguments)]
    pub fn emit_event_with_confusion(
        &self,
        trace: &mut Trace,
        device_idx: u16,
        location: Location,
        class: TrafficClass,
        start: SimTime,
        rng: &mut StdRng,
        confusion_scale: f64,
    ) -> usize {
        let shape = self.shape_for(class, rng, confusion_scale);
        let Some(shape) = shape else { return 0 };
        let lan_ip = Self::lan_ip(device_idx);
        let domain = location.localize_domain(&shape.domain);
        // All event classes share one relay endpoint per device: commands
        // ride the same cloud relay regardless of the trigger, so destination
        // IPs carry no class signal (Table 4: zero permutation importance).
        let endpoint = self.endpoint_base + 40;
        trace
            .dns
            .observe_forward(location.cloud_ip(endpoint, 0), domain.clone());
        let remote_ip = location.cloud_ip(endpoint, 0);
        let port = ephemeral_port(rng);

        let n = rng.gen_range(shape.n_packets.0..=shape.n_packets.1);
        let mut t = start;
        let mut emitted = 0usize;
        for i in 0..n {
            let base = shape.sizes[rng.gen_range(0..shape.sizes.len())];
            let size = if shape.size_jitter == 0 {
                base
            } else {
                let j = rng.gen_range(0..=2 * shape.size_jitter as i32) - shape.size_jitter as i32;
                (base as i32 + j).clamp(40, 1500) as u16
            };
            let direction = if i == 0 {
                shape.first_direction
            } else if rng.gen_bool(0.5) {
                Direction::FromDevice
            } else {
                Direction::ToDevice
            };
            trace.push(PacketRecord {
                ts: t,
                device: device_idx,
                direction,
                local_ip: lan_ip,
                remote_ip,
                local_port: port,
                remote_port: 443,
                transport: shape.transport,
                tcp_flags: if i == 0 {
                    shape.first_flags
                } else if shape.transport == Transport::Tcp {
                    TcpFlags::ack()
                } else {
                    TcpFlags::default()
                },
                tls: if i < 3 { shape.tls } else { TlsVersion::None },
                size,
                label: class,
            });
            emitted += 1;
            // Command-burst gaps are continuous (human/network timing):
            // microsecond resolution ensures intervals never repeat.
            t += SimDuration::from_micros(
                rng.gen_range(shape.iat_ms.0 * 1000..=shape.iat_ms.1 * 1000),
            );
        }
        if let Some(stream) = shape.stream {
            let sn = rng.gen_range(stream.n.0..=stream.n.1);
            for _ in 0..sn {
                t += SimDuration::from_millis(stream.iat_ms);
                trace.push(PacketRecord {
                    ts: t,
                    device: device_idx,
                    direction: Direction::FromDevice,
                    local_ip: lan_ip,
                    remote_ip,
                    local_port: port,
                    remote_port: 443,
                    transport: shape.transport,
                    tcp_flags: if shape.transport == Transport::Tcp {
                        TcpFlags::ack()
                    } else {
                        TcpFlags::default()
                    },
                    tls: TlsVersion::None,
                    size: stream.size,
                    label: class,
                });
                emitted += 1;
            }
        }
        emitted
    }

    fn shape_for(
        &self,
        class: TrafficClass,
        rng: &mut StdRng,
        confusion_scale: f64,
    ) -> Option<EventShape> {
        let confused = rng.gen_bool((self.confusion * confusion_scale).clamp(0.0, 1.0));
        let pick = |c: TrafficClass| -> Option<&EventShape> {
            match c {
                TrafficClass::Manual => self.manual.as_ref(),
                TrafficClass::Automated => self.automated.as_ref(),
                TrafficClass::Control => self.control_events.as_ref().map(|(s, _)| s),
            }
        };
        let effective = if confused {
            // Swap manual <-> non-manual shape.
            match class {
                TrafficClass::Manual => pick(TrafficClass::Automated)
                    .or_else(|| pick(TrafficClass::Control))
                    .or_else(|| pick(TrafficClass::Manual)),
                _ => pick(TrafficClass::Manual).or_else(|| pick(class)),
            }
        } else {
            pick(class)
        };
        effective.cloned()
    }
}

fn ephemeral_port(rng: &mut StdRng) -> u16 {
    rng.gen_range(49152..=65535)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plug_model() -> DeviceModel {
        DeviceModel {
            name: "TestPlug".to_string(),
            kind: DeviceKind::SmartPlug,
            endpoint_base: 100,
            control_flows: vec![PeriodicFlow {
                domain: "plug.vendor.com".to_string(),
                direction: Direction::FromDevice,
                transport: Transport::Tcp,
                size: 60,
                period: SimDuration::from_secs(60),
                jitter_ms: 20,
                port_churn_every: 0,
                replica_ips: 1,
                tls: TlsVersion::Tls12,
            }],
            control_events: None,
            automated: Some(EventShape {
                n_packets: (2, 2),
                first_direction: Direction::ToDevice,
                transport: Transport::Tcp,
                tls: TlsVersion::Tls12,
                sizes: vec![235],
                size_jitter: 0,
                iat_ms: (30, 120),
                first_flags: TcpFlags::psh_ack(),
                domain: "relay.vendor.com".to_string(),
                stream: None,
            }),
            manual: Some(EventShape {
                n_packets: (2, 2),
                first_direction: Direction::ToDevice,
                transport: Transport::Tcp,
                tls: TlsVersion::Tls12,
                sizes: vec![235],
                size_jitter: 0,
                iat_ms: (30, 120),
                first_flags: TcpFlags::psh_ack(),
                domain: "relay.vendor.com".to_string(),
                stream: None,
            }),
            min_packets_to_complete: 1,
            simple_rule_size: Some(235),
            confusion: 0.0,
        }
    }

    #[test]
    fn control_flow_emits_periodic_packets() {
        let m = plug_model();
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(0);
        m.emit_control(
            &mut trace,
            0,
            Location::Us,
            SimDuration::from_mins(10),
            &mut rng,
        );
        trace.finish();
        // ~10 packets (one per minute), all labeled control, size 60.
        assert!(trace.len() >= 8 && trace.len() <= 11, "{}", trace.len());
        assert!(trace.packets.iter().all(|p| p.size == 60));
        assert!(trace
            .packets
            .iter()
            .all(|p| p.label == TrafficClass::Control));
        // DNS registered.
        assert!(trace.dns.contains(Location::Us.cloud_ip(100, 0)));
    }

    #[test]
    fn manual_event_has_exact_plug_shape() {
        let m = plug_model();
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(1);
        let n = m.emit_event(
            &mut trace,
            0,
            Location::Us,
            TrafficClass::Manual,
            SimTime::from_secs(5),
            &mut rng,
        );
        assert_eq!(n, 2);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.packets[0].size, 235);
        assert_eq!(trace.packets[0].direction, Direction::ToDevice);
        assert_eq!(trace.packets[0].label, TrafficClass::Manual);
    }

    #[test]
    fn streaming_tail_is_constant_rate() {
        let mut m = plug_model();
        m.manual = Some(EventShape {
            stream: Some(StreamTail {
                n: (10, 10),
                size: 1400,
                iat_ms: 33,
            }),
            ..m.manual.clone().unwrap()
        });
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(2);
        let n = m.emit_event(
            &mut trace,
            0,
            Location::Us,
            TrafficClass::Manual,
            SimTime::ZERO,
            &mut rng,
        );
        trace.finish();
        assert_eq!(n, 12);
        let tail: Vec<&PacketRecord> = trace.packets.iter().filter(|p| p.size == 1400).collect();
        assert_eq!(tail.len(), 10);
        // Constant inter-arrival.
        for w in tail.windows(2) {
            assert_eq!((w[1].ts - w[0].ts).as_millis(), 33);
        }
    }

    #[test]
    fn location_changes_endpoints() {
        let m = plug_model();
        let mut us = Trace::new();
        let mut de = Trace::new();
        let mut rng = StdRng::seed_from_u64(3);
        m.emit_control(
            &mut us,
            0,
            Location::Us,
            SimDuration::from_mins(5),
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(3);
        m.emit_control(
            &mut de,
            0,
            Location::Germany,
            SimDuration::from_mins(5),
            &mut rng,
        );
        assert_ne!(us.packets[0].remote_ip, de.packets[0].remote_ip);
        assert_eq!(
            de.dns.name_of(Location::Germany.cloud_ip(100, 0)),
            "plug.vendor.com" // no .com rewrite here? plug.vendor.com has .com
                .replace(".com", ".de")
        );
    }

    #[test]
    fn port_churn_rotates_ports() {
        let mut m = plug_model();
        m.control_flows[0].port_churn_every = 2;
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(4);
        m.emit_control(
            &mut trace,
            0,
            Location::Us,
            SimDuration::from_mins(10),
            &mut rng,
        );
        let ports: Vec<u16> = trace.packets.iter().map(|p| p.local_port).collect();
        let distinct: std::collections::HashSet<u16> = ports.iter().copied().collect();
        assert!(distinct.len() > 1, "expected port churn, got {distinct:?}");
    }

    #[test]
    fn confusion_swaps_shapes() {
        let mut m = plug_model();
        m.confusion = 1.0; // always confused
        m.automated = Some(EventShape {
            sizes: vec![999],
            ..m.automated.clone().unwrap()
        });
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(5);
        // Manual event drawn with the automated shape (size 999) but
        // manual label.
        m.emit_event(
            &mut trace,
            0,
            Location::Us,
            TrafficClass::Manual,
            SimTime::ZERO,
            &mut rng,
        );
        assert!(trace
            .packets
            .iter()
            .all(|p| p.label == TrafficClass::Manual));
        assert_eq!(trace.packets[0].size, 999);
    }

    #[test]
    fn lan_ips_unique_across_devices() {
        let a = DeviceModel::lan_ip(0);
        let b = DeviceModel::lan_ip(1);
        let c = DeviceModel::lan_ip(300);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
