//! IoT traffic synthesis: the paper's testbed and public-dataset stand-ins.
//!
//! The original evaluation drew on a 10-device physical testbed (Table 1)
//! and two public captures (YourThings, Mon(IoT)r). Neither hardware nor
//! captures are available here, so this crate generates traffic from
//! parametric per-device models calibrated to what the paper reports:
//! flow structure (periodic control flows, port churn, multi-IP domains),
//! event shapes (a smart plug's single 235 B command packet, a camera's
//! 41-packet constant-rate stream, a smart speaker's hundred-packet app
//! bursts), routine schedules, and manual-interaction cadence.
//!
//! - [`device`]: the generative device model (periodic flows + event
//!   shapes per traffic class).
//! - [`testbed`]: the 10 Table 1 devices and full labeled trace synthesis.
//! - [`location`]: US / Japan / Germany VPN variants (domains and IPs
//!   change; behaviour does not — §3.3 "Location").
//! - [`datasets`]: YourThings-like and Mon(IoT)r-like corpora, the Bose
//!   SoundTouch flows of Figure 1(a), and IoT-Inspector-style 5-second
//!   aggregation.
//! - [`fingerprint_corpus`]: labeled per-class training corpora and a
//!   spoofed-device generator for `fiat-fingerprint`.

pub mod datasets;
pub mod device;
pub mod fingerprint_corpus;
pub mod location;
pub mod testbed;

pub use device::{DeviceModel, EventShape, PeriodicFlow};
pub use fingerprint_corpus::{
    class_trace, fingerprint_corpus, spoofed_trace, CLASS_TRACE_DURATION, CORPUS_CLASSES,
};
pub use location::Location;
pub use testbed::{testbed_devices, TestbedConfig, TestbedTrace};
