//! Public-dataset stand-ins: YourThings-like and Mon(IoT)r-like corpora,
//! the Bose SoundTouch flows of Figure 1(a), and IoT-Inspector-style
//! 5-second aggregation (§2.2).
//!
//! Each synthetic device draws a random flow structure (count, periods,
//! sizes, port churn, IP replicas) and a per-device *unpredictability
//! target*: the fraction of its traffic that is one-off, irregular
//! chatter. The mixture over devices is what the Figure 1(b) CDFs measure;
//! the measurement code in `fiat-core` is the artifact under test.

use crate::device::{DeviceModel, PeriodicFlow};
use crate::location::Location;
use fiat_net::{
    Direction, PacketRecord, SimDuration, SimTime, TcpFlags, TlsVersion, Trace, TrafficClass,
    Transport,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashMap;

/// One synthetic public-dataset device and its capture.
#[derive(Debug, Clone)]
pub struct CorpusDevice {
    /// Synthetic device name.
    pub name: String,
    /// Its packet trace (single device id 0 inside).
    pub trace: Trace,
}

/// Random flow structure for one synthetic device.
fn random_flows(rng: &mut StdRng, dev_idx: u16) -> Vec<PeriodicFlow> {
    let n_flows = rng.gen_range(3..=10);
    (0..n_flows)
        .map(|fi| {
            // Figure 1(c): most predictable flows repeat within 5 minutes,
            // none slower than 10 minutes.
            let period_s = if rng.gen_bool(0.85) {
                rng.gen_range(10..=300)
            } else {
                rng.gen_range(300..=600)
            };
            PeriodicFlow {
                domain: format!("svc{fi}.dev{dev_idx}.example.com"),
                direction: if rng.gen_bool(0.6) {
                    Direction::FromDevice
                } else {
                    Direction::ToDevice
                },
                transport: if rng.gen_bool(0.8) {
                    Transport::Tcp
                } else {
                    Transport::Udp
                },
                size: rng.gen_range(60..=700),
                period: SimDuration::from_secs(period_s),
                jitter_ms: rng.gen_range(10..=60),
                // Half the flows churn ports: the Classic-vs-PortLess gap.
                port_churn_every: if rng.gen_bool(0.5) {
                    rng.gen_range(2..=10)
                } else {
                    0
                },
                replica_ips: rng.gen_range(1..=3),
                tls: if rng.gen_bool(0.7) {
                    TlsVersion::Tls12
                } else {
                    TlsVersion::None
                },
            }
        })
        .collect()
}

/// Build a synthetic device whose traffic is `unpredictable_frac` one-off
/// chatter by packet volume.
fn synth_device(
    name: String,
    dev_idx: u16,
    duration: SimDuration,
    unpredictable_frac: f64,
    noise_label: TrafficClass,
    rng: &mut StdRng,
) -> CorpusDevice {
    let flows = random_flows(rng, dev_idx);
    // Expected periodic packet count over the capture.
    let periodic_count: f64 = flows
        .iter()
        .map(|f| duration.as_secs_f64() / f.period.as_secs_f64())
        .sum();
    let n_noise =
        ((unpredictable_frac / (1.0 - unpredictable_frac)) * periodic_count).round() as usize;

    let model = DeviceModel {
        name: name.clone(),
        kind: crate::device::DeviceKind::SmartSpeaker,
        endpoint_base: dev_idx.wrapping_mul(16),
        control_flows: flows,
        control_events: None,
        automated: None,
        manual: None,
        min_packets_to_complete: 5,
        simple_rule_size: None,
        confusion: 0.0,
    };

    let mut trace = Trace::new();
    model.emit_control(&mut trace, 0, Location::Us, duration, rng);

    // One-off unpredictable chatter: random sizes to random endpoints at
    // random times — never forms a repeating bucket.
    let noise_endpoint = model.endpoint_base + 15;
    for k in 0..n_noise {
        let ip = Location::Us.cloud_ip(noise_endpoint, (k % 23) as u8);
        trace.push(PacketRecord {
            ts: SimTime::from_micros(rng.gen_range(0..duration.as_micros().max(1))),
            device: 0,
            direction: if rng.gen_bool(0.5) {
                Direction::FromDevice
            } else {
                Direction::ToDevice
            },
            local_ip: DeviceModel::lan_ip(0),
            remote_ip: ip,
            local_port: rng.gen_range(49152..=65535),
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::psh_ack(),
            tls: TlsVersion::Tls12,
            // Wide size range so buckets almost never repeat.
            size: rng.gen_range(61..=1460),
            label: noise_label,
        });
    }
    trace.finish();
    CorpusDevice { name, trace }
}

/// YourThings-like corpus: `n_devices` devices captured for `hours`.
/// The per-device unpredictability mixture is calibrated to Figure 1(b):
/// for ~80 % of devices no more than ~20 % of traffic is unpredictable.
pub fn yourthings_like(n_devices: usize, hours: u64, seed: u64) -> Vec<CorpusDevice> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_devices)
        .map(|i| {
            let u = if rng.gen_bool(0.8) {
                rng.gen_range(0.02..0.20)
            } else {
                rng.gen_range(0.20..0.60)
            };
            synth_device(
                format!("yt-device-{i:02}"),
                i as u16,
                SimDuration::from_secs(hours * 3600),
                u,
                TrafficClass::Control,
                &mut rng,
            )
        })
        .collect()
}

/// Mon(IoT)r-like corpus: idle captures (control only, highly predictable)
/// and active captures (manual command bursts around each operation,
/// markedly less predictable).
#[derive(Debug, Clone)]
pub struct MoniotrCorpus {
    /// Idle captures, one per device.
    pub idle: Vec<CorpusDevice>,
    /// Active captures, one per device.
    pub active: Vec<CorpusDevice>,
}

/// Generate a Mon(IoT)r-like corpus.
pub fn moniotr_like(n_devices: usize, seed: u64) -> MoniotrCorpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idle = Vec::with_capacity(n_devices);
    let mut active = Vec::with_capacity(n_devices);
    for i in 0..n_devices {
        // Idle: low unpredictability (§2.2: up to 90 % predictable for
        // 90 % of devices under PortLess).
        let u_idle = rng.gen_range(0.01..0.15);
        idle.push(synth_device(
            format!("moniotr-idle-{i:03}"),
            i as u16,
            SimDuration::from_mins(120),
            u_idle,
            TrafficClass::Control,
            &mut rng,
        ));
        // Active: the same structure plus a heavy manual component.
        let u_active = rng.gen_range(0.15..0.55);
        active.push(synth_device(
            format!("moniotr-active-{i:03}"),
            i as u16,
            SimDuration::from_mins(40),
            u_active,
            TrafficClass::Manual,
            &mut rng,
        ));
    }
    MoniotrCorpus { idle, active }
}

/// The Bose SoundTouch 10 of Figure 1(a): 8 strictly periodic flows over
/// 30 minutes. Returns the trace; flows are distinguishable by size.
pub fn soundtouch_flows(seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let periods_s: [u64; 8] = [15, 30, 30, 60, 60, 120, 300, 600];
    let sizes: [u16; 8] = [66, 123, 155, 203, 311, 489, 577, 1024];
    let flows: Vec<PeriodicFlow> = (0..8)
        .map(|i| PeriodicFlow {
            domain: format!("streaming{i}.bose.com"),
            direction: if i % 2 == 0 {
                Direction::FromDevice
            } else {
                Direction::ToDevice
            },
            transport: Transport::Tcp,
            size: sizes[i],
            period: SimDuration::from_secs(periods_s[i]),
            jitter_ms: 20,
            port_churn_every: 0,
            replica_ips: 1,
            tls: TlsVersion::Tls12,
        })
        .collect();
    let model = DeviceModel {
        name: "SoundTouch10".to_string(),
        kind: crate::device::DeviceKind::SmartSpeaker,
        endpoint_base: 900,
        control_flows: flows,
        control_events: None,
        automated: None,
        manual: None,
        min_packets_to_complete: 5,
        simple_rule_size: None,
        confusion: 0.0,
    };
    let mut trace = Trace::new();
    model.emit_control(
        &mut trace,
        0,
        Location::Us,
        SimDuration::from_mins(30),
        &mut rng,
    );
    trace.finish();
    trace
}

/// IoT-Inspector-style aggregation: collapse a packet trace into 5-second
/// windows per (device, remote endpoint, transport, direction); each
/// window becomes one pseudo-packet whose size is the byte sum (clamped to
/// `u16::MAX`). One unpredictable packet inside a window perturbs the sum
/// and poisons the whole window — the effect §2.2 describes.
pub fn aggregate_5s(trace: &Trace) -> Trace {
    type Key = (u16, std::net::Ipv4Addr, Transport, Direction, u64);
    let mut windows: HashMap<Key, (u64, TrafficClass)> = HashMap::new();
    let window_us = 5_000_000u64;
    for p in &trace.packets {
        let w = p.ts.as_micros() / window_us;
        let key = (p.device, p.remote_ip, p.transport, p.direction, w);
        let entry = windows.entry(key).or_insert((0, TrafficClass::Control));
        entry.0 += p.size as u64;
        // Escalate the label: manual > automated > control.
        entry.1 = match (entry.1, p.label) {
            (_, TrafficClass::Manual) | (TrafficClass::Manual, _) => TrafficClass::Manual,
            (_, TrafficClass::Automated) | (TrafficClass::Automated, _) => TrafficClass::Automated,
            _ => TrafficClass::Control,
        };
    }
    let mut agg = Trace::new();
    agg.dns = trace.dns.clone();
    for ((device, remote_ip, transport, direction, w), (bytes, label)) in windows {
        agg.push(PacketRecord {
            ts: SimTime::from_micros(w * window_us),
            device,
            direction,
            local_ip: DeviceModel::lan_ip(device),
            remote_ip,
            local_port: 0,
            remote_port: 0,
            transport,
            tcp_flags: TcpFlags::default(),
            tls: TlsVersion::None,
            size: bytes.min(u16::MAX as u64) as u16,
            label,
        });
    }
    agg.finish();
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yourthings_corpus_shape() {
        let corpus = yourthings_like(5, 2, 0);
        assert_eq!(corpus.len(), 5);
        for d in &corpus {
            assert!(!d.trace.is_empty(), "{} empty", d.name);
            // All packets from device 0 and within the window.
            assert!(d.trace.packets.iter().all(|p| p.device == 0));
            assert!(d.trace.duration() <= SimDuration::from_secs(2 * 3600));
        }
        // Names unique.
        let mut names: Vec<&str> = corpus.iter().map(|d| d.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn moniotr_idle_quieter_than_active() {
        let c = moniotr_like(4, 1);
        assert_eq!(c.idle.len(), 4);
        assert_eq!(c.active.len(), 4);
        // Active captures contain manual-labeled noise; idle never.
        for d in &c.idle {
            assert_eq!(d.trace.count_labeled(0, TrafficClass::Manual), 0);
        }
        let manual_total: usize = c
            .active
            .iter()
            .map(|d| d.trace.count_labeled(0, TrafficClass::Manual))
            .sum();
        assert!(manual_total > 0);
    }

    #[test]
    fn soundtouch_has_eight_periodic_flows() {
        let t = soundtouch_flows(0);
        // 8 distinct sizes.
        let mut sizes: Vec<u16> = t.packets.iter().map(|p| p.size).collect();
        sizes.sort_unstable();
        sizes.dedup();
        assert_eq!(sizes.len(), 8);
        // The 15 s flow dominates: ~120 packets over 30 min.
        let fast = t.packets.iter().filter(|p| p.size == 66).count();
        assert!((100..=125).contains(&fast), "fast flow count {fast}");
        // 30-minute capture.
        assert!(t.duration() <= SimDuration::from_mins(31));
    }

    #[test]
    fn aggregation_collapses_windows() {
        // A 1 Hz flow puts ~5 packets in each 5 s window.
        let model = DeviceModel {
            name: "dense".to_string(),
            kind: crate::device::DeviceKind::SmartSpeaker,
            endpoint_base: 0,
            control_flows: vec![PeriodicFlow {
                domain: "dense.example.com".to_string(),
                direction: Direction::FromDevice,
                transport: Transport::Tcp,
                size: 100,
                period: SimDuration::from_secs(1),
                jitter_ms: 0,
                port_churn_every: 0,
                replica_ips: 1,
                tls: TlsVersion::None,
            }],
            control_events: None,
            automated: None,
            manual: None,
            min_packets_to_complete: 1,
            simple_rule_size: None,
            confusion: 0.0,
        };
        let mut t = Trace::new();
        let mut rng = StdRng::seed_from_u64(0);
        model.emit_control(&mut t, 0, Location::Us, SimDuration::from_mins(2), &mut rng);
        t.finish();
        let agg = aggregate_5s(&t);
        assert!(!agg.is_empty());
        assert!(
            agg.len() * 3 < t.len(),
            "agg {} vs raw {}",
            agg.len(),
            t.len()
        );
        // Sums of ~5 packets of 100 B each.
        assert!(agg.packets.iter().all(|p| p.size >= 100 && p.size <= 700));
        // Windows aligned to 5 s.
        assert!(agg
            .packets
            .iter()
            .all(|p| p.ts.as_micros() % 5_000_000 == 0));
    }

    #[test]
    fn aggregation_escalates_labels() {
        let mut t = Trace::new();
        let base = soundtouch_flows(2).packets[0].clone();
        let mut p1 = base.clone();
        p1.ts = SimTime::from_secs(0);
        p1.label = TrafficClass::Control;
        let mut p2 = base.clone();
        p2.ts = SimTime::from_secs(1);
        p2.label = TrafficClass::Manual;
        t.push(p1);
        t.push(p2);
        t.finish();
        let agg = aggregate_5s(&t);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg.packets[0].label, TrafficClass::Manual);
        assert_eq!(agg.packets[0].size, base.size * 2);
    }

    #[test]
    fn deterministic_corpora() {
        let a = yourthings_like(3, 1, 9);
        let b = yourthings_like(3, 1, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace.packets, y.trace.packets);
        }
    }
}
