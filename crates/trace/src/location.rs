//! Testbed locations (§3.1): New Jersey (US) plus VPN exits in Japan and
//! Germany. §3.3 found devices keep their communication models across
//! locations but talk to geolocated endpoints — different IPs and even
//! different domains (google.com → google.co.jp).

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Where the testbed's uplink egresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// United States (native, New Jersey / Illinois).
    Us,
    /// Japan via VPN.
    Japan,
    /// Germany via VPN.
    Germany,
}

impl Location {
    /// All locations in paper order.
    pub const ALL: [Location; 3] = [Location::Us, Location::Japan, Location::Germany];

    /// Short suffix used in the paper's tables (US/JP/DE).
    pub fn suffix(self) -> &'static str {
        match self {
            Location::Us => "US",
            Location::Japan => "JP",
            Location::Germany => "DE",
        }
    }

    /// Country-code TLD rewrite applied to geolocating vendors.
    pub fn localize_domain(self, domain: &str) -> String {
        match self {
            Location::Us => domain.to_string(),
            Location::Japan => domain.replace(".com", ".co.jp"),
            Location::Germany => domain.replace(".com", ".de"),
        }
    }

    /// First octet of the cloud IP space for this location; endpoints at
    /// different locations never share IPs.
    pub fn ip_base(self) -> u8 {
        match self {
            Location::Us => 34,
            Location::Japan => 126,
            Location::Germany => 85,
        }
    }

    /// Deterministic cloud IP for (location, endpoint index, replica).
    pub fn cloud_ip(self, endpoint: u16, replica: u8) -> Ipv4Addr {
        let [hi, lo] = endpoint.to_be_bytes();
        Ipv4Addr::new(self.ip_base(), hi, lo, replica)
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_localization() {
        assert_eq!(Location::Us.localize_domain("google.com"), "google.com");
        assert_eq!(
            Location::Japan.localize_domain("google.com"),
            "google.co.jp"
        );
        assert_eq!(Location::Germany.localize_domain("google.com"), "google.de");
        // Non-.com domains unchanged.
        assert_eq!(
            Location::Japan.localize_domain("wyze.example.net"),
            "wyze.example.net"
        );
    }

    #[test]
    fn ip_spaces_disjoint() {
        let ips: Vec<Ipv4Addr> = Location::ALL.iter().map(|l| l.cloud_ip(7, 1)).collect();
        assert_ne!(ips[0].octets()[0], ips[1].octets()[0]);
        assert_ne!(ips[1].octets()[0], ips[2].octets()[0]);
    }

    #[test]
    fn cloud_ip_deterministic_and_distinct_per_endpoint() {
        let a = Location::Us.cloud_ip(1, 0);
        let b = Location::Us.cloud_ip(2, 0);
        assert_ne!(a, b);
        assert_eq!(a, Location::Us.cloud_ip(1, 0));
        assert_ne!(Location::Us.cloud_ip(1, 0), Location::Us.cloud_ip(1, 1));
    }

    #[test]
    fn suffixes() {
        assert_eq!(Location::Us.suffix(), "US");
        assert_eq!(Location::Japan.to_string(), "JP");
        assert_eq!(Location::Germany.to_string(), "DE");
    }
}
