//! The Table 1 testbed: ten devices, their generative models, and full
//! labeled trace synthesis.
//!
//! Model parameters encode the paper's observations: a smart plug's
//! two-packet 235 B commands (N=1), WyzeCam's 41-packet commands with a
//! constant-rate video tail, Google Home's huge app-open bursts, and the
//! Nest-E's hourly irregular control chatter that drops its control
//! predictability to ~90 % while every other device sits near 98 %.

use crate::device::{DeviceKind, DeviceModel, EventShape, PeriodicFlow, StreamTail};
use crate::location::Location;
use fiat_net::{
    Direction, SimDuration, SimTime, TcpFlags, TlsVersion, Trace, TrafficClass, Transport,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration for one testbed capture.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Uplink location (US native, or VPN to JP/DE).
    pub location: Location,
    /// Capture length in days (fractional allowed).
    pub days: f64,
    /// Mean manual interactions per device per day.
    pub manual_per_day: f64,
    /// Routine firings per device per day.
    pub routines_per_day: f64,
    /// Master seed.
    pub seed: u64,
    /// Scale on each device's class-confusion probability (1.0 = natural
    /// use; ~0.15 = scripted/ADB operations as in the paper's §6 runs).
    pub confusion_scale: f64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            location: Location::Us,
            days: 2.0,
            manual_per_day: 3.5,
            routines_per_day: 4.0,
            seed: 0,
            confusion_scale: 1.0,
        }
    }
}

/// Ground truth for one generated event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruthEvent {
    /// Device index (position in [`testbed_devices`]).
    pub device: u16,
    /// True class.
    pub class: TrafficClass,
    /// Event start time.
    pub start: SimTime,
    /// Number of packets emitted.
    pub n_packets: usize,
}

/// A generated testbed capture: packets plus event ground truth.
#[derive(Debug, Clone)]
pub struct TestbedTrace {
    /// The labeled packet trace (all devices).
    pub trace: Trace,
    /// Ground-truth events in generation order.
    pub events: Vec<GroundTruthEvent>,
    /// The device models, indexed by device id.
    pub devices: Vec<DeviceModel>,
    /// The configuration that produced this capture.
    pub config: TestbedConfig,
}

impl TestbedTrace {
    /// Generate a full capture for `config`.
    pub fn generate(config: TestbedConfig) -> TestbedTrace {
        let devices = testbed_devices();
        let duration = SimDuration::from_secs((config.days * 86_400.0) as u64);
        let mut trace = Trace::new();
        let mut events = Vec::new();
        let mut rng = StdRng::seed_from_u64(config.seed);

        for (idx, dev) in devices.iter().enumerate() {
            let idx = idx as u16;
            dev.emit_control(&mut trace, idx, config.location, duration, &mut rng);

            // Build the per-device event schedule with a 30 s minimum gap
            // so distinct events never merge under the 5 s grouping rule.
            let mut starts: Vec<(SimTime, TrafficClass)> = Vec::new();
            let reserve = |rng: &mut StdRng,
                           class: TrafficClass,
                           starts: &mut Vec<(SimTime, TrafficClass)>| {
                for _ in 0..200 {
                    let t = SimTime::from_millis(rng.gen_range(0..duration.as_millis().max(1)));
                    let min_gap = SimDuration::from_secs(30);
                    if starts
                        .iter()
                        .all(|(s, _)| s.since(t).max(t.since(*s)) > min_gap)
                    {
                        starts.push((t, class));
                        return;
                    }
                }
            };

            // Manual interactions (usage-weighted: plugs most, mop least —
            // §3.1 reports 40 plug vs 8 mop interactions).
            let usage = dev.usage_factor();
            let n_manual = (config.days * config.manual_per_day * usage).round() as usize;
            for _ in 0..n_manual {
                reserve(&mut rng, TrafficClass::Manual, &mut starts);
            }
            // Routines.
            let n_auto = (config.days * config.routines_per_day).round() as usize;
            for _ in 0..n_auto {
                reserve(&mut rng, TrafficClass::Automated, &mut starts);
            }
            // Irregular control events.
            if let Some((_, per_day)) = &dev.control_events {
                let n_ctl = (config.days * per_day).round() as usize;
                for _ in 0..n_ctl {
                    reserve(&mut rng, TrafficClass::Control, &mut starts);
                }
            }

            starts.sort_by_key(|(t, _)| *t);
            for (start, class) in starts {
                let n = dev.emit_event_with_confusion(
                    &mut trace,
                    idx,
                    config.location,
                    class,
                    start,
                    &mut rng,
                    config.confusion_scale,
                );
                if n > 0 {
                    events.push(GroundTruthEvent {
                        device: idx,
                        class,
                        start,
                        n_packets: n,
                    });
                }
            }
        }
        trace.finish();
        TestbedTrace {
            trace,
            events,
            devices,
            config,
        }
    }

    /// Ground-truth events of one device.
    pub fn device_events(&self, device: u16) -> impl Iterator<Item = &GroundTruthEvent> {
        self.events.iter().filter(move |e| e.device == device)
    }
}

impl DeviceModel {
    /// Relative manual-usage weight (§3.1: plugs used most, mop least).
    pub fn usage_factor(&self) -> f64 {
        match self.kind {
            DeviceKind::SmartPlug => 2.0,
            DeviceKind::RobotVacuum => 0.4,
            _ => 1.0,
        }
    }
}

/// Helper: a periodic TLS keep-alive flow.
fn flow(
    domain: &'static str,
    direction: Direction,
    size: u16,
    period_s: u64,
    churn: u32,
    replicas: u8,
) -> PeriodicFlow {
    PeriodicFlow {
        domain: domain.to_string(),
        direction,
        transport: Transport::Tcp,
        size,
        period: SimDuration::from_secs(period_s),
        jitter_ms: 40,
        port_churn_every: churn,
        replica_ips: replicas,
        tls: TlsVersion::Tls12,
    }
}

/// Helper: a periodic UDP flow (NTP/DNS-style).
fn udp_flow(domain: &'static str, size: u16, period_s: u64) -> PeriodicFlow {
    PeriodicFlow {
        domain: domain.to_string(),
        direction: Direction::FromDevice,
        transport: Transport::Udp,
        size,
        period: SimDuration::from_secs(period_s),
        jitter_ms: 25,
        port_churn_every: 8,
        replica_ips: 1,
        tls: TlsVersion::None,
    }
}

fn burst(
    domain: &'static str,
    n: (usize, usize),
    sizes: Vec<u16>,
    tls: TlsVersion,
    iat_ms: (u64, u64),
    stream: Option<StreamTail>,
) -> EventShape {
    EventShape {
        n_packets: n,
        first_direction: Direction::ToDevice,
        transport: Transport::Tcp,
        tls,
        sizes,
        size_jitter: 20,
        iat_ms,
        first_flags: TcpFlags::psh_ack(),
        domain: domain.to_string(),
        stream,
    }
}

/// Device-initiated telemetry burst: irregular control chatter starts
/// *from* the device (the direction signal §4.3 finds most important).
fn telemetry_burst(
    domain: &'static str,
    n: (usize, usize),
    sizes: Vec<u16>,
    tls: TlsVersion,
    iat_ms: (u64, u64),
) -> EventShape {
    EventShape {
        first_direction: Direction::FromDevice,
        ..burst(domain, n, sizes, tls, iat_ms, None)
    }
}

/// The ten Table 1 devices, in a fixed order (index = device id):
/// 0 EchoDot4, 1 HomeMini, 2 WyzeCam, 3 SP10, 4 Home, 5 Nest-E,
/// 6 EchoDot3, 7 E4, 8 Blink, 9 WP3.
#[allow(clippy::vec_init_then_push)] // one commented push block per device
pub fn testbed_devices() -> Vec<DeviceModel> {
    let mut devices = Vec::new();

    // --- 0: Echo Dot 4 (smart speaker, Amazon) ---
    devices.push(DeviceModel {
        name: "EchoDot4".to_string(),
        kind: DeviceKind::SmartSpeaker,
        endpoint_base: 0,
        control_flows: vec![
            flow("avs.amazon.com", Direction::FromDevice, 66, 30, 0, 2),
            flow("avs.amazon.com", Direction::ToDevice, 123, 30, 0, 2),
            flow(
                "device-metrics.amazon.com",
                Direction::FromDevice,
                489,
                300,
                4,
                2,
            ),
            udp_flow("ntp.amazon.com", 76, 480),
            udp_flow("dns.amazon.com", 70, 150),
        ],
        control_events: Some((
            telemetry_burst(
                "todo-ta.amazon.com",
                (3, 8),
                vec![214, 318, 402],
                TlsVersion::Tls12,
                (100, 900),
            ),
            8.0,
        )),
        automated: Some(burst(
            "alexa-routines.amazon.com",
            (3, 5),
            vec![188, 346, 590],
            TlsVersion::Tls12,
            (60, 450),
            Some(StreamTail {
                n: (18, 30),
                size: 640,
                iat_ms: 120,
            }),
        )),
        manual: Some(burst(
            "alexa-mobile.amazon.com",
            (8, 25),
            vec![151, 412, 803, 1248],
            TlsVersion::Tls13,
            (20, 350),
            None,
        )),
        min_packets_to_complete: 5,
        simple_rule_size: None,
        confusion: 0.10,
    });

    // --- 1: Home Mini (smart speaker, Google) ---
    devices.push(DeviceModel {
        name: "HomeMini".to_string(),
        kind: DeviceKind::SmartSpeaker,
        endpoint_base: 50,
        control_flows: vec![
            flow("clients.google.com", Direction::FromDevice, 92, 20, 0, 3),
            flow("clients.google.com", Direction::ToDevice, 105, 20, 0, 3),
            flow(
                "cast-edge.google.com",
                Direction::FromDevice,
                311,
                180,
                6,
                2,
            ),
            udp_flow("time.google.com", 76, 600),
        ],
        control_events: Some((
            telemetry_burst(
                "update-check.google.com",
                (3, 7),
                vec![255, 377],
                TlsVersion::Tls12,
                (120, 800),
            ),
            7.0,
        )),
        automated: Some(burst(
            "assistant-routines.google.com",
            (3, 6),
            vec![203, 351, 566],
            TlsVersion::Tls12,
            (60, 400),
            Some(StreamTail {
                n: (20, 30),
                size: 702,
                iat_ms: 100,
            }),
        )),
        manual: Some(burst(
            "home-app.google.com",
            (15, 60),
            vec![167, 423, 889, 1310],
            TlsVersion::Tls13,
            (15, 280),
            None,
        )),
        min_packets_to_complete: 5,
        simple_rule_size: None,
        confusion: 0.05,
    });

    // --- 2: WyzeCam (camera, Wyze) ---
    devices.push(DeviceModel {
        name: "WyzeCam".to_string(),
        kind: DeviceKind::Camera,
        endpoint_base: 100,
        control_flows: vec![
            flow("api.wyzecam.com", Direction::FromDevice, 88, 60, 0, 1),
            flow("api.wyzecam.com", Direction::ToDevice, 97, 60, 0, 1),
            udp_flow("stun.wyzecam.com", 102, 300),
        ],
        control_events: Some((
            telemetry_burst(
                "logs.wyzecam.com",
                (3, 6),
                vec![276, 388],
                TlsVersion::Tls12,
                (150, 900),
            ),
            5.0,
        )),
        automated: Some(EventShape {
            n_packets: (3, 6),
            first_direction: Direction::ToDevice,
            transport: Transport::Udp,
            tls: TlsVersion::None,
            sizes: vec![233, 415],
            size_jitter: 15,
            iat_ms: (50, 400),
            first_flags: TcpFlags::default(),
            domain: "upload.wyzecam.com".to_string(),
            stream: Some(StreamTail {
                n: (25, 45),
                size: 1228,
                iat_ms: 40,
            }),
        }),
        manual: Some(EventShape {
            n_packets: (8, 14),
            first_direction: Direction::ToDevice,
            transport: Transport::Tcp,
            tls: TlsVersion::Tls12,
            sizes: vec![198, 342, 561],
            size_jitter: 20,
            iat_ms: (30, 300),
            first_flags: TcpFlags::psh_ack(),
            domain: "relay.wyzecam.com".to_string(),
            stream: Some(StreamTail {
                n: (18, 30),
                size: 1404,
                iat_ms: 33,
            }),
        }),
        min_packets_to_complete: 41,
        simple_rule_size: None,
        confusion: 0.04,
    });

    // --- 3: SP10 (smart plug, Teckin) ---
    devices.push(smart_plug("SP10", 150, "teckin.com", 235));

    // --- 4: Home (smart speaker, Google; 2016 firmware era — slightly
    // slower heartbeats than the Mini) ---
    devices.push(DeviceModel {
        name: "Home".to_string(),
        kind: DeviceKind::SmartSpeaker,
        endpoint_base: 200,
        control_flows: vec![
            flow("clients.google.com", Direction::FromDevice, 92, 25, 0, 3),
            flow("clients.google.com", Direction::ToDevice, 105, 25, 0, 3),
            flow(
                "cast-edge.google.com",
                Direction::FromDevice,
                311,
                200,
                6,
                2,
            ),
            udp_flow("time.google.com", 76, 600),
        ],
        control_events: Some((
            telemetry_burst(
                "update-check.google.com",
                (4, 10),
                vec![221, 340, 478],
                TlsVersion::Tls12,
                (80, 700),
            ),
            9.0,
        )),
        automated: Some(burst(
            "assistant-routines.google.com",
            (3, 8),
            vec![203, 351, 566, 910],
            TlsVersion::Tls12,
            (40, 380),
            Some(StreamTail {
                n: (22, 34),
                size: 702,
                iat_ms: 100,
            }),
        )),
        manual: Some(burst(
            "home-app.google.com",
            (20, 120),
            vec![167, 423, 889, 1310],
            TlsVersion::Tls13,
            (10, 250),
            None,
        )),
        min_packets_to_complete: 5,
        simple_rule_size: None,
        confusion: 0.14,
    });

    // --- 5: Nest-E (thermostat, Google) ---
    devices.push(DeviceModel {
        name: "Nest-E".to_string(),
        kind: DeviceKind::Thermostat,
        endpoint_base: 250,
        control_flows: vec![
            // Sparser control than speakers: fewer, slower flows.
            flow(
                "nest-weave.google.com",
                Direction::FromDevice,
                131,
                120,
                0,
                1,
            ),
            flow("nest-weave.google.com", Direction::ToDevice, 144, 120, 0, 1),
            udp_flow("time.google.com", 76, 540),
        ],
        // The hourly quirk: motion sensor / phone-presence chatter with
        // second-scale irregular intervals (§3.2).
        control_events: Some((
            telemetry_burst(
                "nest-telemetry.google.com",
                (4, 8),
                vec![152, 297, 430],
                TlsVersion::Tls12,
                (1500, 4500),
            ),
            24.0,
        )),
        automated: Some(EventShape {
            size_jitter: 0,
            ..burst(
                "nest-schedule.google.com",
                (2, 4),
                vec![188],
                TlsVersion::Tls12,
                (80, 500),
                None,
            )
        }),
        manual: Some(EventShape {
            size_jitter: 0, // the rule keys on the exact 267 B notification
            ..burst(
                "nest-app.google.com",
                (2, 3),
                vec![267],
                TlsVersion::Tls12,
                (50, 300),
                None,
            )
        }),
        min_packets_to_complete: 1,
        simple_rule_size: Some(267),
        confusion: 0.0,
    });

    // --- 6: Echo Dot 3 (smart speaker, Amazon) ---
    devices.push(DeviceModel {
        name: "EchoDot3".to_string(),
        kind: DeviceKind::SmartSpeaker,
        endpoint_base: 300,
        control_flows: vec![
            flow("avs.amazon.com", Direction::FromDevice, 66, 30, 0, 2),
            flow("avs.amazon.com", Direction::ToDevice, 123, 30, 0, 2),
            flow(
                "device-metrics.amazon.com",
                Direction::FromDevice,
                489,
                300,
                4,
                2,
            ),
            udp_flow("ntp.amazon.com", 76, 480),
        ],
        control_events: Some((
            telemetry_burst(
                "todo-ta.amazon.com",
                (3, 8),
                vec![214, 318],
                TlsVersion::Tls12,
                (100, 900),
            ),
            6.0,
        )),
        automated: Some(burst(
            "alexa-routines.amazon.com",
            (3, 5),
            vec![188, 346],
            TlsVersion::Tls12,
            (60, 450),
            Some(StreamTail {
                n: (18, 30),
                size: 640,
                iat_ms: 120,
            }),
        )),
        manual: Some(burst(
            "alexa-mobile.amazon.com",
            (8, 22),
            vec![151, 412, 803, 1248],
            TlsVersion::Tls13,
            (20, 350),
            None,
        )),
        min_packets_to_complete: 5,
        simple_rule_size: None,
        confusion: 0.05,
    });

    // --- 7: E4 Mop Robot (robot vacuum, Roborock) ---
    devices.push(DeviceModel {
        name: "E4".to_string(),
        kind: DeviceKind::RobotVacuum,
        endpoint_base: 350,
        control_flows: vec![
            flow("api.roborock.com", Direction::FromDevice, 120, 90, 0, 1),
            flow("api.roborock.com", Direction::ToDevice, 133, 90, 0, 1),
        ],
        control_events: Some((
            telemetry_burst(
                "ota.roborock.com",
                (4, 9),
                vec![261, 390, 515],
                TlsVersion::Tls12,
                (90, 800),
            ),
            4.0,
        )),
        automated: Some(burst(
            "sched.roborock.com",
            (4, 8),
            vec![284, 462, 671],
            TlsVersion::Tls12,
            (50, 500),
            Some(StreamTail {
                n: (16, 26),
                size: 512,
                iat_ms: 200,
            }),
        )),
        manual: Some(burst(
            "app.roborock.com",
            (6, 20),
            vec![297, 489, 702],
            TlsVersion::Tls13,
            (40, 450),
            None,
        )),
        min_packets_to_complete: 4,
        simple_rule_size: None,
        confusion: 0.10,
    });

    // --- 8: Blink Camera (camera, Amazon) ---
    devices.push(DeviceModel {
        name: "Blink".to_string(),
        kind: DeviceKind::Camera,
        endpoint_base: 400,
        control_flows: vec![
            flow(
                "rest-prod.immedia-semi.com",
                Direction::FromDevice,
                95,
                45,
                0,
                1,
            ),
            flow(
                "rest-prod.immedia-semi.com",
                Direction::ToDevice,
                104,
                45,
                0,
                1,
            ),
            udp_flow("stun.immedia-semi.com", 98, 300),
        ],
        control_events: Some((
            telemetry_burst(
                "logs.immedia-semi.com",
                (3, 6),
                vec![244, 361],
                TlsVersion::Tls12,
                (150, 900),
            ),
            4.0,
        )),
        automated: Some(EventShape {
            n_packets: (3, 5),
            first_direction: Direction::ToDevice,
            transport: Transport::Udp,
            tls: TlsVersion::None,
            sizes: vec![219, 398],
            size_jitter: 15,
            iat_ms: (50, 400),
            first_flags: TcpFlags::default(),
            domain: "upload.immedia-semi.com".to_string(),
            stream: Some(StreamTail {
                n: (20, 35),
                size: 1180,
                iat_ms: 45,
            }),
        }),
        manual: Some(EventShape {
            n_packets: (7, 12),
            first_direction: Direction::ToDevice,
            transport: Transport::Tcp,
            tls: TlsVersion::Tls12,
            sizes: vec![205, 334, 528],
            size_jitter: 20,
            iat_ms: (30, 300),
            first_flags: TcpFlags::psh_ack(),
            domain: "relay.immedia-semi.com".to_string(),
            stream: Some(StreamTail {
                n: (15, 26),
                size: 1352,
                iat_ms: 35,
            }),
        }),
        min_packets_to_complete: 30,
        simple_rule_size: None,
        confusion: 0.02,
    });

    // --- 9: WP3 (smart plug, Gosund) ---
    devices.push(smart_plug("WP3", 450, "gosund.com", 235));

    devices
}

/// Smart plug model: one keep-alive flow; two-packet fixed-size commands
/// (manual and automated identical on the wire — the simple size rule and
/// humanness validation tell them apart).
fn smart_plug(
    name: &'static str,
    endpoint_base: u16,
    domain: &'static str,
    command_size: u16,
) -> DeviceModel {
    // Events leak the vendor domain through the relay.
    let relay: &'static str = match endpoint_base {
        150 => "relay.teckin.com",
        _ => "relay.gosund.com",
    };
    let keepalive: &'static str = domain;
    DeviceModel {
        name: name.to_string(),
        kind: DeviceKind::SmartPlug,
        endpoint_base,
        control_flows: vec![
            PeriodicFlow {
                domain: keepalive.to_string(),
                direction: Direction::FromDevice,
                transport: Transport::Tcp,
                size: 60,
                period: SimDuration::from_secs(60),
                jitter_ms: 30,
                port_churn_every: 0,
                replica_ips: 1,
                tls: TlsVersion::Tls10,
            },
            PeriodicFlow {
                domain: keepalive.to_string(),
                direction: Direction::ToDevice,
                transport: Transport::Tcp,
                size: 66,
                period: SimDuration::from_secs(60),
                jitter_ms: 30,
                port_churn_every: 0,
                replica_ips: 1,
                tls: TlsVersion::Tls10,
            },
        ],
        control_events: None,
        automated: Some(EventShape {
            n_packets: (2, 2),
            first_direction: Direction::ToDevice,
            transport: Transport::Tcp,
            tls: TlsVersion::Tls12,
            sizes: vec![command_size - 8],
            size_jitter: 0,
            iat_ms: (30, 150),
            first_flags: TcpFlags::psh_ack(),
            domain: relay.to_string(),
            stream: None,
        }),
        manual: Some(EventShape {
            n_packets: (2, 2),
            first_direction: Direction::ToDevice,
            transport: Transport::Tcp,
            tls: TlsVersion::Tls12,
            sizes: vec![command_size],
            size_jitter: 0,
            iat_ms: (30, 150),
            first_flags: TcpFlags::psh_ack(),
            domain: relay.to_string(),
            stream: None,
        }),
        min_packets_to_complete: 1,
        simple_rule_size: Some(command_size),
        confusion: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_devices_in_table_order() {
        let d = testbed_devices();
        assert_eq!(d.len(), 10);
        let names: Vec<&str> = d.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "EchoDot4", "HomeMini", "WyzeCam", "SP10", "Home", "Nest-E", "EchoDot3", "E4",
                "Blink", "WP3"
            ]
        );
    }

    #[test]
    fn simple_rule_devices_match_paper() {
        let d = testbed_devices();
        let simple: Vec<&str> = d
            .iter()
            .filter(|m| m.uses_simple_rule())
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(simple, vec!["SP10", "Nest-E", "WP3"]);
    }

    #[test]
    fn command_completion_thresholds() {
        let d = testbed_devices();
        let n: std::collections::HashMap<&str, usize> = d
            .iter()
            .map(|m| (m.name.as_str(), m.min_packets_to_complete))
            .collect();
        // §3.3: N ranges from 1 (SP10, WP3) to 41 (WyzeCam).
        assert_eq!(n["SP10"], 1);
        assert_eq!(n["WP3"], 1);
        assert_eq!(n["WyzeCam"], 41);
        assert!(d
            .iter()
            .all(|m| (1..=41).contains(&m.min_packets_to_complete)));
    }

    #[test]
    fn generation_produces_all_classes() {
        let cfg = TestbedConfig {
            days: 0.25,
            seed: 1,
            ..Default::default()
        };
        let tb = TestbedTrace::generate(cfg);
        assert!(!tb.trace.is_empty());
        assert_eq!(tb.trace.devices().len(), 10);
        // Packets are time ordered.
        assert!(tb.trace.packets.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Every device has control traffic; most have manual events.
        for dev in 0..10 {
            assert!(
                tb.trace.count_labeled(dev, TrafficClass::Control) > 0,
                "device {dev} lacks control traffic"
            );
        }
        let manual_events = tb
            .events
            .iter()
            .filter(|e| e.class == TrafficClass::Manual)
            .count();
        assert!(manual_events > 0);
    }

    #[test]
    fn events_respect_min_gap_per_device() {
        let tb = TestbedTrace::generate(TestbedConfig {
            days: 0.5,
            seed: 2,
            ..Default::default()
        });
        for dev in 0..10u16 {
            let mut starts: Vec<SimTime> = tb.device_events(dev).map(|e| e.start).collect();
            starts.sort();
            for w in starts.windows(2) {
                assert!(
                    (w[1] - w[0]) > SimDuration::from_secs(29),
                    "device {dev}: events too close: {} vs {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = TestbedConfig {
            days: 0.1,
            seed: 3,
            ..Default::default()
        };
        let a = TestbedTrace::generate(cfg.clone());
        let b = TestbedTrace::generate(cfg);
        assert_eq!(a.trace.len(), b.trace.len());
        assert_eq!(a.events, b.events);
        assert_eq!(a.trace.packets, b.trace.packets);
    }

    #[test]
    fn plug_usage_exceeds_mop_usage() {
        let tb = TestbedTrace::generate(TestbedConfig {
            days: 2.0,
            seed: 4,
            ..Default::default()
        });
        let plug_manual = tb
            .device_events(3)
            .filter(|e| e.class == TrafficClass::Manual)
            .count();
        let mop_manual = tb
            .device_events(7)
            .filter(|e| e.class == TrafficClass::Manual)
            .count();
        assert!(
            plug_manual > 2 * mop_manual,
            "plug {plug_manual} vs mop {mop_manual}"
        );
    }

    #[test]
    fn locations_shift_endpoints_not_structure() {
        let mk = |loc| {
            TestbedTrace::generate(TestbedConfig {
                days: 0.1,
                seed: 5,
                location: loc,
                ..Default::default()
            })
        };
        let us = mk(Location::Us);
        let jp = mk(Location::Japan);
        // Same packet counts (same seeds drive the same schedule)...
        assert_eq!(us.trace.len(), jp.trace.len());
        // ...but disjoint cloud IPs.
        let us_ip = us.trace.packets[0].remote_ip.octets()[0];
        let jp_ip = jp.trace.packets[0].remote_ip.octets()[0];
        assert_ne!(us_ip, jp_ip);
    }
}
