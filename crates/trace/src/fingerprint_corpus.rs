//! Labeled per-class training corpora and a spoofed-device generator for
//! the fingerprint subsystem (`fiat-fingerprint`).
//!
//! The corpus is deliberately *class*-level, not model-level: one
//! representative Table 1 device per [`crate::device::DeviceKind`]. Two
//! Echo Dot generations are not behaviorally separable in a 24-packet
//! window, and the gate's job is "is this really a camera?", not "which
//! camera firmware?". The residual cold-start risk (a genuine device of
//! an *untrained* class quarantines as no-match until its class is
//! enrolled) is documented in DESIGN §19.

use crate::device::DeviceModel;
use crate::location::Location;
use crate::testbed::testbed_devices;
use fiat_net::{SimDuration, SimTime, Trace, TrafficClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The class labels and their representative testbed device index, in
/// signature order: 0 smart-speaker (EchoDot4), 1 camera (WyzeCam),
/// 2 smart-plug (SP10), 3 thermostat (Nest-E), 4 robot-vacuum (E4).
pub const CORPUS_CLASSES: [(&str, usize); 5] = [
    ("smart-speaker", 0),
    ("camera", 2),
    ("smart-plug", 3),
    ("thermostat", 5),
    ("robot-vacuum", 7),
];

/// Capture length for one class trace: two hours is hundreds of
/// keep-alive rounds for every testbed cadence, plus a dozen events.
pub const CLASS_TRACE_DURATION: SimDuration = SimDuration::from_secs(2 * 3600);

/// One labeled single-device capture of `model`: its full periodic
/// control plane plus a spread of manual/automated/control events (so
/// the signature also absorbs event mass and the relay domain enters the
/// class's domain vocabulary).
pub fn class_trace(model: &DeviceModel, device_id: u16, seed: u64) -> Trace {
    let mut trace = Trace::new();
    let mut rng = StdRng::seed_from_u64(seed);
    model.emit_control(
        &mut trace,
        device_id,
        Location::Us,
        CLASS_TRACE_DURATION,
        &mut rng,
    );
    let classes = [
        TrafficClass::Manual,
        TrafficClass::Automated,
        TrafficClass::Control,
    ];
    let mut start = SimTime::ZERO + SimDuration::from_secs(300);
    let step = SimDuration::from_secs(600);
    let mut i = 0usize;
    while start < SimTime::ZERO + CLASS_TRACE_DURATION {
        model.emit_event(
            &mut trace,
            device_id,
            Location::Us,
            classes[i % classes.len()],
            start,
            &mut rng,
        );
        start += step;
        i += 1;
    }
    trace.finish();
    trace
}

/// Training captures per class in [`fingerprint_corpus`]. Several
/// independently-phased replicas widen the exemplar pool so an online
/// window (whose periodic flows start at arbitrary phase) has a close
/// training neighbor.
pub const CORPUS_REPLICAS: u16 = 6;

/// The labeled training corpus: one `(label, trace)` per
/// [`CORPUS_CLASSES`] entry, all derived from `seed` deterministically.
/// Each class trace holds [`CORPUS_REPLICAS`] device ids with distinct
/// flow phases; signature learning chunks per device id, so the replicas
/// multiply exemplars without smearing cadences.
pub fn fingerprint_corpus(seed: u64) -> Vec<(String, Trace)> {
    let devices = testbed_devices();
    CORPUS_CLASSES
        .iter()
        .enumerate()
        .map(|(i, (label, dev))| {
            let mut trace = Trace::new();
            for rep in 0..CORPUS_REPLICAS {
                let rep_seed = seed ^ ((i as u64 + 1) << 48) ^ ((rep as u64 + 1) << 24);
                trace.merge(class_trace(&devices[*dev], rep, rep_seed));
            }
            trace.finish();
            (label.to_string(), trace)
        })
        .collect()
}

/// A spoofed device: it *claims* to be `claimed` — every destination is
/// one of `claimed`'s cloud endpoints, exactly what a MAC/DNS-level
/// impersonator controls — but its wire behavior (packet sizes, cadence,
/// direction mix, transport) is `behaved`'s, which it cannot fake
/// without also being that kind of device. The fingerprint gate should
/// resolve the contradiction as `Spoof { claimed, matched }`.
pub fn spoofed_trace(
    claimed: &DeviceModel,
    behaved: &DeviceModel,
    device_id: u16,
    duration: SimDuration,
    seed: u64,
) -> Trace {
    let n_claimed = claimed.control_flows.len().max(1);
    let control_flows = behaved
        .control_flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut f = f.clone();
            f.domain = claimed.control_flows[i % n_claimed].domain.clone();
            f
        })
        .collect();
    let hybrid = DeviceModel {
        name: format!("{}-claiming-{}", behaved.name, claimed.name),
        kind: behaved.kind,
        endpoint_base: claimed.endpoint_base,
        control_flows,
        control_events: None,
        automated: None,
        manual: None,
        min_packets_to_complete: behaved.min_packets_to_complete,
        simple_rule_size: None,
        confusion: 0.0,
    };
    let mut trace = Trace::new();
    let mut rng = StdRng::seed_from_u64(seed);
    hybrid.emit_control(&mut trace, device_id, Location::Us, duration, &mut rng);
    trace.finish();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_net::RemoteId;

    #[test]
    fn corpus_has_five_distinct_labeled_classes() {
        let corpus = fingerprint_corpus(7);
        assert_eq!(corpus.len(), 5);
        let labels: Vec<&str> = corpus.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "smart-speaker",
                "camera",
                "smart-plug",
                "thermostat",
                "robot-vacuum"
            ]
        );
        for (label, trace) in &corpus {
            assert!(
                trace.packets.len() > 100,
                "{label}: only {} packets",
                trace.packets.len()
            );
            assert!(trace.packets.windows(2).all(|w| w[0].ts <= w[1].ts));
        }
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = fingerprint_corpus(3);
        let b = fingerprint_corpus(3);
        let c = fingerprint_corpus(4);
        assert_eq!(a[0].1.packets, b[0].1.packets);
        assert_ne!(a[0].1.packets, c[0].1.packets);
    }

    #[test]
    fn spoofed_trace_wears_claimed_domains_with_behaved_sizes() {
        let devices = testbed_devices();
        let plug = &devices[3]; // SP10
        let cam = &devices[2]; // WyzeCam
        let spoof = spoofed_trace(plug, cam, 900, SimDuration::from_secs(3600), 11);
        assert!(!spoof.packets.is_empty());
        // Every destination resolves to a plug domain...
        for pkt in &spoof.packets {
            let RemoteId::Domain(id) = spoof.dns.remote_id(pkt.remote_ip) else {
                panic!("unregistered remote ip");
            };
            assert!(
                spoof.dns.domain_str(id).contains("teckin"),
                "unexpected domain {}",
                spoof.dns.domain_str(id)
            );
        }
        // ...but no packet has the plug's keep-alive sizes (60/66 B);
        // the wire behavior is the camera's (88/97/102 B).
        let sizes: Vec<u16> = spoof.packets.iter().map(|p| p.size).collect();
        assert!(sizes.iter().all(|s| [88, 97, 102].contains(s)));
    }
}
