//! Integer packet-feature histogram shared by training and the online
//! matcher.
//!
//! Three feature groups, all computed from fields the proxy already sees
//! per packet (no payload inspection):
//!
//! - **size × direction** — 16 size buckets per direction. The buckets
//!   are deliberately fine below ~256 B: IoT keep-alives have stable,
//!   class-distinctive sizes (a plug's 60 B ping vs a camera's 88 B API
//!   poll), and that is where identification power lives per the
//!   fingerprinting survey's feature ranking.
//! - **inter-arrival time** — 8 log-scale buckets over the gap to the
//!   device's previous packet, from millisecond bursts up through the
//!   minute-scale cadence of periodic control flows. The top buckets
//!   deliberately resolve 30 s / 60 s / 120 s-class keep-alive periods:
//!   cadence survives size padding, so it anchors identity when a
//!   privacy countermeasure reshapes packet lengths.
//! - **size delta** — 8 buckets over `|size - previous size|` for the
//!   same device. A constant-pad countermeasure shifts every absolute
//!   size but leaves the deltas untouched, so this group keeps a padded
//!   plug (60/66 B, delta 6) from colliding with a camera (88/97/102 B,
//!   deltas 5–14) whose absolute buckets the padding happens to reach.
//! - **transport** — TCP/UDP packet counts (the NTP/STUN fraction).
//!
//! Histograms are integer counts and profiles are per-mille integers, so
//! every comparison is exact and the naive oracle mirror can reproduce
//! the arithmetic bit for bit.

use fiat_net::{Direction, PacketRecord, SimTime, Transport};

/// Size buckets per direction.
pub const SIZE_BUCKETS: usize = 16;
/// Inter-arrival-time buckets.
pub const IAT_BUCKETS: usize = 8;
/// Consecutive size-delta buckets.
pub const DELTA_BUCKETS: usize = 8;
/// Total feature dimensions: size×2 directions, IAT, size delta,
/// transport.
pub const FEATURE_COUNT: usize = 2 * SIZE_BUCKETS + IAT_BUCKETS + DELTA_BUCKETS + 2;

/// Upper bounds (inclusive) of the first `SIZE_BUCKETS - 1` size buckets;
/// anything larger falls in the last bucket.
pub const SIZE_THRESHOLDS: [u16; SIZE_BUCKETS - 1] = [
    64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 512, 768, 1024, 2048,
];

/// Upper bounds (inclusive, in milliseconds) of the first
/// `IAT_BUCKETS - 1` inter-arrival buckets.
pub const IAT_THRESHOLDS_MS: [u64; IAT_BUCKETS - 1] =
    [16, 256, 4_096, 30_000, 60_000, 90_000, 240_000];

/// Upper bounds (inclusive) of the first `DELTA_BUCKETS - 1`
/// consecutive-size-delta buckets.
pub const DELTA_THRESHOLDS: [u16; DELTA_BUCKETS - 1] = [0, 4, 8, 16, 32, 64, 256];

/// Normalization groups: each `(start, end)` slice of the feature vector
/// is scaled to per-mille independently, so the sparse transport pair is
/// not drowned by the size histogram.
pub const GROUPS: [(usize, usize); 4] = [
    (0, 2 * SIZE_BUCKETS),
    (2 * SIZE_BUCKETS, 2 * SIZE_BUCKETS + IAT_BUCKETS),
    (
        2 * SIZE_BUCKETS + IAT_BUCKETS,
        2 * SIZE_BUCKETS + IAT_BUCKETS + DELTA_BUCKETS,
    ),
    (
        2 * SIZE_BUCKETS + IAT_BUCKETS + DELTA_BUCKETS,
        FEATURE_COUNT,
    ),
];

/// Bucket index for a wire size.
pub fn size_bucket(size: u16) -> usize {
    SIZE_THRESHOLDS
        .iter()
        .position(|&t| size <= t)
        .unwrap_or(SIZE_BUCKETS - 1)
}

/// Bucket index for an inter-arrival gap in milliseconds.
pub fn iat_bucket(ms: u64) -> usize {
    IAT_THRESHOLDS_MS
        .iter()
        .position(|&t| ms <= t)
        .unwrap_or(IAT_BUCKETS - 1)
}

/// Bucket index for a consecutive size delta.
pub fn delta_bucket(delta: u16) -> usize {
    DELTA_THRESHOLDS
        .iter()
        .position(|&t| delta <= t)
        .unwrap_or(DELTA_BUCKETS - 1)
}

/// Fold one packet into `hist`. `last` is the timestamp and size of the
/// same device's previous packet (`None` for its first), which feeds the
/// IAT and size-delta groups.
pub fn fold_packet(
    hist: &mut [u32; FEATURE_COUNT],
    pkt: &PacketRecord,
    last: Option<(SimTime, u16)>,
) {
    let dir_base = match pkt.direction {
        Direction::FromDevice => 0,
        Direction::ToDevice => SIZE_BUCKETS,
    };
    hist[dir_base + size_bucket(pkt.size)] += 1;
    if let Some((prev_ts, prev_size)) = last {
        hist[2 * SIZE_BUCKETS + iat_bucket(pkt.ts.since(prev_ts).as_millis())] += 1;
        let delta_base = 2 * SIZE_BUCKETS + IAT_BUCKETS;
        hist[delta_base + delta_bucket(pkt.size.abs_diff(prev_size))] += 1;
    }
    let transport_base = 2 * SIZE_BUCKETS + IAT_BUCKETS + DELTA_BUCKETS;
    match pkt.transport {
        Transport::Tcp => hist[transport_base] += 1,
        Transport::Udp => hist[transport_base + 1] += 1,
    }
}

/// Per-mille profile of a histogram: each [`GROUPS`] slice is scaled to
/// sum (approximately, integer division truncates) 1000. A group with no
/// mass stays all-zero.
pub fn profile(hist: &[u32; FEATURE_COUNT]) -> [u16; FEATURE_COUNT] {
    let mut out = [0u16; FEATURE_COUNT];
    for (start, end) in GROUPS {
        let total: u64 = hist[start..end].iter().map(|&c| u64::from(c)).sum();
        if total == 0 {
            continue;
        }
        for i in start..end {
            out[i] = (u64::from(hist[i]) * 1000 / total) as u16;
        }
    }
    out
}

/// L1 distance between two per-mille profiles (0..=6000).
pub fn l1(a: &[u16; FEATURE_COUNT], b: &[u16; FEATURE_COUNT]) -> u32 {
    let mut d = 0u32;
    for i in 0..FEATURE_COUNT {
        d += u32::from(a[i].abs_diff(b[i]));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(64), 0);
        assert_eq!(size_bucket(65), 1);
        assert_eq!(size_bucket(2048), SIZE_BUCKETS - 2);
        assert_eq!(size_bucket(u16::MAX), SIZE_BUCKETS - 1);
        assert_eq!(iat_bucket(0), 0);
        assert_eq!(iat_bucket(16), 0);
        assert_eq!(iat_bucket(17), 1);
        assert_eq!(iat_bucket(60_000), 4);
        assert_eq!(iat_bucket(90_000), 5);
        assert_eq!(iat_bucket(120_000), 6);
        assert_eq!(iat_bucket(240_000), IAT_BUCKETS - 2);
        assert_eq!(iat_bucket(u64::MAX), IAT_BUCKETS - 1);
        assert_eq!(delta_bucket(0), 0);
        assert_eq!(delta_bucket(1), 1);
        assert_eq!(delta_bucket(6), 2);
        assert_eq!(delta_bucket(9), 3);
        assert_eq!(delta_bucket(256), DELTA_BUCKETS - 2);
        assert_eq!(delta_bucket(u16::MAX), DELTA_BUCKETS - 1);
    }

    #[test]
    fn thresholds_are_strictly_increasing() {
        assert!(SIZE_THRESHOLDS.windows(2).all(|w| w[0] < w[1]));
        assert!(IAT_THRESHOLDS_MS.windows(2).all(|w| w[0] < w[1]));
        assert!(DELTA_THRESHOLDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn profile_normalizes_per_group() {
        let mut hist = [0u32; FEATURE_COUNT];
        hist[0] = 3;
        hist[1] = 1;
        let transport_base = 2 * SIZE_BUCKETS + IAT_BUCKETS + DELTA_BUCKETS;
        hist[transport_base] = 10; // tcp only
        let p = profile(&hist);
        assert_eq!(p[0], 750);
        assert_eq!(p[1], 250);
        // Empty IAT and delta groups stay zero.
        assert!(p[2 * SIZE_BUCKETS..transport_base].iter().all(|&v| v == 0));
        assert_eq!(p[transport_base], 1000);
    }

    #[test]
    fn l1_is_symmetric_and_zero_on_self() {
        let mut a = [0u16; FEATURE_COUNT];
        let mut b = [0u16; FEATURE_COUNT];
        a[0] = 600;
        a[5] = 400;
        b[0] = 500;
        b[7] = 500;
        assert_eq!(l1(&a, &a), 0);
        assert_eq!(l1(&a, &b), l1(&b, &a));
        assert_eq!(l1(&a, &b), 100 + 400 + 500);
    }
}
