//! Behavioral device identification for unknown-MAC traffic.
//!
//! FIAT's decision path historically *failed open* for unregistered
//! devices (`AllowReason::UnknownDevice`): anything with an unknown MAC
//! sailed past enforcement. This crate closes that hole the way the
//! WiFinger line of work suggests — packet-level behavior is identifying
//! — without trusting anything the device says about itself:
//!
//! 1. **Training** ([`SignatureSet::learn`]): one [`ClassSignature`] per
//!    labeled class trace — an integer per-mille profile over bucketed
//!    packet sizes × direction, log-scale inter-arrival gaps, and
//!    transport mix, plus the class's cloud-domain vocabulary.
//! 2. **Online evidence** ([`FingerprintEngine`]): each unknown device
//!    gets a bounded evidence window (default 24 packets — below any
//!    testbed command-completion threshold). While it fills, packets
//!    pass provisionally; the window then *seals* with one verdict that
//!    is cached and applied to all later traffic. Evicting an open
//!    window under the tracking cap seals it with its partial evidence
//!    (never a silent evidence reset), and both the tracked and sealed
//!    caches evict least-recently-active, so throwaway-MAC floods
//!    cannot flush an active device's state.
//! 3. **Verdict** ([`fiat_core::FingerprintVerdict`]): the nearest
//!    signature under an L1 threshold *and* a runner-up margin. A
//!    confident match that contradicts the class the device claims by
//!    its destinations is `Spoof` — but only after a second full
//!    window independently confirms a wrong class (one reshaped media
//!    burst is not an accusation; a spoofer misbehaves in every
//!    window). The confirmation window's traffic is already
//!    quarantined (`NoMatch`, not `Pending`), so at most one window of
//!    packets is ever forwarded, and exactly one restart is allowed —
//!    alternating mimicry between classes cannot re-arm forever. An
//!    ambiguous or distant profile is `NoMatch` — never a cross-class
//!    guess, so padding/shaping countermeasures degrade to quarantine,
//!    not misattribution.
//!
//! The proxy consumes the engine through the [`fiat_core::FingerprintGate`]
//! trait behind the `ProxyConfig::fingerprint_unknown` knob; the naive
//! mirror in `fiat-oracle` recomputes the same integer arithmetic from
//! scratch to keep this implementation honest under differential fuzz.

mod engine;
pub mod features;
mod signature;

pub use engine::{FingerprintEngine, MatcherConfig, MAX_CLAIM_DOMAINS};
pub use features::{FEATURE_COUNT, IAT_BUCKETS, SIZE_BUCKETS};
pub use signature::{ClassSignature, SignatureSet, MAX_EXEMPLARS};
