//! Per-class behavioral signatures learned from labeled traces.

use crate::features::{fold_packet, l1, profile, FEATURE_COUNT};
use crate::MatcherConfig;
use fiat_net::{DnsTable, RemoteId, SimTime, Trace};
use std::collections::HashMap;

/// Exemplar windows kept per class after stride sampling. Bounds the
/// per-seal matching cost at `classes x MAX_EXEMPLARS` L1 distances.
pub const MAX_EXEMPLARS: usize = 96;

/// One device class's learned signature: a set of exemplar window
/// profiles plus the sorted set of cloud domains the class was seen
/// contacting (the vocabulary the claimed-class resolution searches).
///
/// A class is *not* one average profile: a camera's keep-alive windows
/// and its streaming windows look nothing alike, and blending them
/// produces a centroid matching neither. Training instead chops each
/// labeled trace into consecutive evidence-window-sized chunks — the
/// same unit the online engine accumulates — and keeps a bounded sample
/// of their profiles. Distance to a class is the distance to its
/// nearest exemplar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSignature {
    /// Class label (e.g. `"camera"`).
    pub label: String,
    /// Sampled per-mille window profiles (see [`crate::features::profile`]).
    pub exemplars: Vec<[u16; FEATURE_COUNT]>,
    /// Domains contacted in training, sorted for binary search.
    pub domains: Vec<String>,
    /// Training packets behind the exemplars.
    pub packets: u64,
}

impl ClassSignature {
    /// L1 distance from `obs` to the nearest exemplar (`u32::MAX` when
    /// the class has none).
    pub fn distance(&self, obs: &[u16; FEATURE_COUNT]) -> u32 {
        self.exemplars
            .iter()
            .map(|e| l1(e, obs))
            .min()
            .unwrap_or(u32::MAX)
    }
}

/// The learned signature set, in stable (training) order. Index identity
/// matters: verdicts refer to signatures by index, and ties in matching
/// and claim resolution break toward the lowest index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SignatureSet {
    sigs: Vec<ClassSignature>,
}

impl SignatureSet {
    /// Learn one signature per `(label, trace)` pair, in order, chopping
    /// each trace into consecutive `window`-packet chunks per device id
    /// (so a multi-device trace does not smear cadences) and sampling at
    /// most [`MAX_EXEMPLARS`] chunk profiles per class with a uniform
    /// stride. Partial trailing chunks are dropped. `window` should be
    /// the engine's `evidence_window` so training and online windows
    /// come from the same distribution.
    pub fn learn(corpus: &[(String, Trace)], window: u32) -> SignatureSet {
        let window = window.max(1);
        let sigs = corpus
            .iter()
            .map(|(label, trace)| {
                type Open = ([u32; FEATURE_COUNT], u32, SimTime, u16);
                let mut open: HashMap<u16, Open> = HashMap::new();
                let mut chunks: Vec<[u16; FEATURE_COUNT]> = Vec::new();
                for pkt in &trace.packets {
                    let (hist, seen, last_ts, last_size) =
                        open.entry(pkt.device)
                            .or_insert(([0; FEATURE_COUNT], 0, SimTime::ZERO, 0));
                    let prev = (*seen > 0).then_some((*last_ts, *last_size));
                    fold_packet(hist, pkt, prev);
                    *last_ts = pkt.ts;
                    *last_size = pkt.size;
                    *seen += 1;
                    if *seen == window {
                        chunks.push(profile(hist));
                        *hist = [0; FEATURE_COUNT];
                        *seen = 0;
                    }
                }
                let exemplars = if chunks.len() <= MAX_EXEMPLARS {
                    chunks
                } else {
                    (0..MAX_EXEMPLARS)
                        .map(|i| chunks[i * chunks.len() / MAX_EXEMPLARS])
                        .collect()
                };
                let mut domains: Vec<String> = Vec::new();
                for pkt in &trace.packets {
                    if let RemoteId::Domain(id) = trace.dns.remote_id(pkt.remote_ip) {
                        let d = trace.dns.domain_str(id);
                        if !domains.iter().any(|x| x == d) {
                            domains.push(d.to_string());
                        }
                    }
                }
                domains.sort();
                ClassSignature {
                    label: label.clone(),
                    exemplars,
                    domains,
                    packets: trace.packets.len() as u64,
                }
            })
            .collect();
        SignatureSet { sigs }
    }

    /// Build a set directly from signatures (training order is index
    /// order). Used by the oracle mirror and tests.
    pub fn from_signatures(sigs: Vec<ClassSignature>) -> SignatureSet {
        SignatureSet { sigs }
    }

    /// The signatures, in training order.
    pub fn signatures(&self) -> &[ClassSignature] {
        &self.sigs
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Label of the signature at `idx`, if any.
    pub fn label(&self, idx: u16) -> Option<&str> {
        self.sigs.get(idx as usize).map(|s| s.label.as_str())
    }

    /// Nearest signature to `obs` with its distance and the runner-up
    /// distance (`u32::MAX` with a single signature). Ties keep the
    /// lowest index. `None` on an empty set.
    pub fn nearest(&self, obs: &[u16; FEATURE_COUNT]) -> Option<(u16, u32, u32)> {
        let mut best: Option<(u16, u32)> = None;
        let mut runner = u32::MAX;
        for (i, sig) in self.sigs.iter().enumerate() {
            let d = sig.distance(obs);
            match best {
                None => best = Some((i as u16, d)),
                Some((_, bd)) if d < bd => {
                    runner = bd;
                    best = Some((i as u16, d));
                }
                Some(_) => runner = runner.min(d),
            }
        }
        best.map(|(i, d)| (i, d, runner))
    }

    /// The confident behavioral match for `obs` under `cfg`: the nearest
    /// signature, accepted only when it is both close enough
    /// (`max_distance`) and unambiguous (`min_margin` ahead of the
    /// runner-up). Anything else is an explicit no-confident-match.
    pub fn confident_match(&self, obs: &[u16; FEATURE_COUNT], cfg: &MatcherConfig) -> Option<u16> {
        let (idx, dist, runner) = self.nearest(obs)?;
        if dist > cfg.max_distance {
            return None;
        }
        if runner != u32::MAX && runner - dist < cfg.min_margin {
            return None;
        }
        Some(idx)
    }

    /// Resolve the class a device *claims* by its destinations: the
    /// signature whose domain set overlaps the claimed domains most
    /// (ties toward the lowest index), or `None` when nothing overlaps.
    /// Claimed domains arrive as interned ids resolved through `dns`, so
    /// the lookup allocates nothing.
    pub fn claimed_class(&self, claims: &[u32], dns: &DnsTable) -> Option<u16> {
        let mut best: Option<(u16, usize)> = None;
        for (i, sig) in self.sigs.iter().enumerate() {
            let overlap = claims
                .iter()
                .filter(|&&id| {
                    sig.domains
                        .binary_search_by(|d| d.as_str().cmp(dns.domain_str(id)))
                        .is_ok()
                })
                .count();
            if overlap > 0 && best.is_none_or(|(_, b)| overlap > b) {
                best = Some((i as u16, overlap));
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(label: &str, hots: &[usize], domains: &[&str]) -> ClassSignature {
        let exemplars = hots
            .iter()
            .map(|&hot| {
                let mut p = [0u16; FEATURE_COUNT];
                p[hot] = 1000;
                p
            })
            .collect();
        let mut domains: Vec<String> = domains.iter().map(|d| d.to_string()).collect();
        domains.sort();
        ClassSignature {
            label: label.to_string(),
            exemplars,
            domains,
            packets: 100,
        }
    }

    fn set(sigs: Vec<ClassSignature>) -> SignatureSet {
        SignatureSet { sigs }
    }

    #[test]
    fn nearest_prefers_smallest_distance_then_lowest_index() {
        let s = set(vec![
            sig("a", &[0], &[]),
            sig("b", &[1], &[]),
            sig("c", &[1], &[]),
        ]);
        let mut obs = [0u16; FEATURE_COUNT];
        obs[1] = 1000;
        let (idx, d, runner) = s.nearest(&obs).unwrap();
        assert_eq!(idx, 1); // exact match, and index 1 beats the tied index 2
        assert_eq!(d, 0);
        assert_eq!(runner, 0); // the tied duplicate is the runner-up
    }

    #[test]
    fn class_distance_is_nearest_exemplar() {
        // A class with two regimes (buckets 0 and 5): an observation in
        // either regime is distance 0, not distance to their blend.
        let s = set(vec![sig("two-regime", &[0, 5], &[])]);
        let mut obs = [0u16; FEATURE_COUNT];
        obs[5] = 1000;
        assert_eq!(s.nearest(&obs), Some((0, 0, u32::MAX)));
        assert_eq!(s.signatures()[0].distance(&obs), 0);
    }

    #[test]
    fn confident_match_enforces_threshold_and_margin() {
        let cfg = MatcherConfig {
            max_distance: 500,
            min_margin: 100,
            ..MatcherConfig::default()
        };
        let s = set(vec![sig("a", &[0], &[]), sig("b", &[1], &[])]);
        let mut near_a = [0u16; FEATURE_COUNT];
        near_a[0] = 900;
        near_a[2] = 100;
        // dist(a) = 200, dist(b) = 2000: clear accept.
        assert_eq!(s.confident_match(&near_a, &cfg), Some(0));

        // Equidistant between a and b: margin kills it.
        let mut ambiguous = [0u16; FEATURE_COUNT];
        ambiguous[0] = 500;
        ambiguous[1] = 500;
        assert_eq!(s.confident_match(&ambiguous, &cfg), None);

        // Far from everything: threshold kills it.
        let mut far = [0u16; FEATURE_COUNT];
        far[5] = 1000;
        assert_eq!(s.confident_match(&far, &cfg), None);
    }

    #[test]
    fn single_signature_skips_the_margin_rule() {
        let cfg = MatcherConfig {
            max_distance: 500,
            min_margin: 100,
            ..MatcherConfig::default()
        };
        let s = set(vec![sig("only", &[0], &[])]);
        let mut obs = [0u16; FEATURE_COUNT];
        obs[0] = 1000;
        assert_eq!(s.confident_match(&obs, &cfg), Some(0));
    }

    #[test]
    fn learn_chunks_per_device_and_caps_exemplars() {
        use fiat_net::{Direction, PacketRecord, TcpFlags, TlsVersion, TrafficClass, Transport};
        let mut trace = Trace::new();
        for i in 0..500u64 {
            trace.packets.push(PacketRecord {
                ts: SimTime::from_millis(i * 7),
                device: (i % 2) as u16,
                direction: Direction::FromDevice,
                local_ip: "192.168.1.2".parse().unwrap(),
                remote_ip: "10.0.0.1".parse().unwrap(),
                local_port: 40_000,
                remote_port: 443,
                transport: Transport::Tcp,
                tcp_flags: TcpFlags::psh_ack(),
                tls: TlsVersion::Tls13,
                size: 100,
                label: TrafficClass::Control,
            });
        }
        trace.finish();
        let s = SignatureSet::learn(&[("x".to_string(), trace)], 4);
        // 500 packets over 2 devices = 125 windows of 4 each, capped.
        assert_eq!(s.signatures()[0].exemplars.len(), MAX_EXEMPLARS);
        // Identical traffic: every exemplar is the same profile.
        let first = s.signatures()[0].exemplars[0];
        assert!(s.signatures()[0].exemplars.iter().all(|e| *e == first));
    }

    #[test]
    fn claimed_class_by_domain_overlap() {
        let mut dns = DnsTable::new();
        let plug = dns.intern_domain("relay.plug.example");
        let cam = dns.intern_domain("api.cam.example");
        let other = dns.intern_domain("unrelated.example");
        let s = set(vec![
            sig("plug", &[0], &["plug.example", "relay.plug.example"]),
            sig("cam", &[1], &["api.cam.example", "stun.cam.example"]),
        ]);
        assert_eq!(s.claimed_class(&[plug], &dns), Some(0));
        assert_eq!(s.claimed_class(&[cam, other], &dns), Some(1));
        assert_eq!(s.claimed_class(&[other], &dns), None);
        assert_eq!(s.claimed_class(&[], &dns), None);
        // More overlap wins; equal overlap keeps the lower index.
        assert_eq!(s.claimed_class(&[plug, cam], &dns), Some(0));
    }
}
