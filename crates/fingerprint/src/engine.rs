//! The online evidence-window engine behind [`FingerprintGate`].

use crate::features::{fold_packet, profile, FEATURE_COUNT};
use crate::SignatureSet;
use fiat_core::{FingerprintGate, FingerprintObservation, FingerprintVerdict};
use fiat_net::{DnsTable, PacketRecord, RemoteId, SimTime};

/// Most claimed-domain slots an evidence record can hold
/// ([`MatcherConfig::claim_domains`] is clamped to this).
pub const MAX_CLAIM_DOMAINS: usize = 8;

/// Matcher and evidence-window parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatcherConfig {
    /// Packets accumulated per unknown device before the verdict seals.
    /// Must stay below the smallest command-completion threshold the
    /// deployment cares about (the testbed's WyzeCam needs 41), so an
    /// impersonator cannot finish a long command inside the window.
    pub evidence_window: u32,
    /// Maximum L1 profile distance (per-mille units) for a confident
    /// match.
    pub max_distance: u32,
    /// Minimum lead over the runner-up signature; anything closer is
    /// ambiguous and degrades to no-confident-match rather than risking
    /// a cross-class flip.
    pub min_margin: u32,
    /// Concurrent open evidence windows. Past the cap the
    /// least-recently-active window is evicted — and *sealed* with its
    /// partial evidence, so eviction is never a free evidence reset.
    pub max_tracked: usize,
    /// Cached sealed verdicts (least-recently-replayed eviction past
    /// the cap).
    pub max_sealed: usize,
    /// Distinct destination domains recorded as the device's *claim*
    /// (clamped to [`MAX_CLAIM_DOMAINS`]).
    pub claim_domains: usize,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            evidence_window: 24,
            max_distance: 1500,
            min_margin: 400,
            max_tracked: 64,
            max_sealed: 256,
            claim_domains: 4,
        }
    }
}

/// Fixed-size evidence for one unknown device's open window.
#[derive(Debug, Clone, Copy)]
struct Evidence {
    hist: [u32; FEATURE_COUNT],
    seen: u32,
    last_ts: SimTime,
    last_size: u16,
    claims: [u32; MAX_CLAIM_DOMAINS],
    n_claims: usize,
    /// Class a previous full window confidently matched *against* the
    /// device's claim. A single contradictory window (e.g. one media
    /// burst reshaped by a padding countermeasure into another class's
    /// buckets) only restarts the window with this candidate armed, and
    /// the device's traffic is dropped (`NoMatch`) while the
    /// confirmation window fills; a second consecutive window that
    /// confidently matches *any* wrong class seals the spoof verdict.
    /// Exactly one restart — an attacker alternating mimicry between
    /// classes cannot re-arm forever.
    candidate: Option<u16>,
}

impl Evidence {
    fn new() -> Evidence {
        Evidence {
            hist: [0; FEATURE_COUNT],
            seen: 0,
            last_ts: SimTime::ZERO,
            last_size: 0,
            claims: [0; MAX_CLAIM_DOMAINS],
            n_claims: 0,
            candidate: None,
        }
    }

    /// Restart the window for a second opinion, keeping only the armed
    /// spoof candidate.
    fn restart(&mut self, candidate: u16) {
        *self = Evidence::new();
        self.candidate = Some(candidate);
    }
}

/// The production fingerprint gate: accumulates a bounded per-device
/// evidence window, seals it with one nearest-signature decision, and
/// caches the sealed verdict for every later packet.
///
/// Determinism and allocation discipline: all state lives in two
/// `Vec`s preallocated to their caps and kept in LRU order (front =
/// eviction victim; touches move to the back without reallocating),
/// every decision is integer arithmetic, and after a device's window
/// seals its packets cost one linear scan and zero allocations (pinned
/// by `tests/zero_alloc.rs`).
pub struct FingerprintEngine {
    signatures: SignatureSet,
    cfg: MatcherConfig,
    tracked: Vec<(u16, Evidence)>,
    sealed: Vec<(u16, FingerprintVerdict)>,
    sealed_total: [u64; 3],
}

impl FingerprintEngine {
    /// Engine over a learned signature set.
    pub fn new(signatures: SignatureSet, mut cfg: MatcherConfig) -> FingerprintEngine {
        cfg.claim_domains = cfg.claim_domains.min(MAX_CLAIM_DOMAINS);
        cfg.evidence_window = cfg.evidence_window.max(1);
        cfg.max_tracked = cfg.max_tracked.max(1);
        cfg.max_sealed = cfg.max_sealed.max(1);
        FingerprintEngine {
            signatures,
            tracked: Vec::with_capacity(cfg.max_tracked),
            sealed: Vec::with_capacity(cfg.max_sealed),
            sealed_total: [0; 3],
            cfg,
        }
    }

    /// The signature set the engine matches against.
    pub fn signatures(&self) -> &SignatureSet {
        &self.signatures
    }

    /// The active configuration (after clamping).
    pub fn config(&self) -> &MatcherConfig {
        &self.cfg
    }

    /// Sealed verdict cached for `device`, if its window has closed.
    pub fn sealed_verdict(&self, device: u16) -> Option<FingerprintVerdict> {
        self.sealed
            .iter()
            .find(|(d, _)| *d == device)
            .map(|&(_, v)| v)
    }

    /// Windows sealed so far as `[matched, spoof_suspected, no_match]`.
    pub fn sealed_counts(&self) -> [u64; 3] {
        self.sealed_total
    }

    /// Seal the evidence in `ev`: behavioral nearest-signature decision
    /// crossed with the claimed class.
    fn seal(&self, ev: &Evidence, dns: &DnsTable) -> FingerprintVerdict {
        let obs = profile(&ev.hist);
        let behavioral = self.signatures.confident_match(&obs, &self.cfg);
        match behavioral {
            // A confident behavioral identity that contradicts the
            // claimed class is the spoof signal. Matching the claim (or
            // claiming nothing recognizable) is a provisional pass.
            Some(b) => match self
                .signatures
                .claimed_class(&ev.claims[..ev.n_claims], dns)
            {
                Some(c) if c != b => FingerprintVerdict::Spoof {
                    claimed: c,
                    matched: b,
                },
                _ => FingerprintVerdict::Match(b),
            },
            // No confident behavior — including a genuine device under
            // padding/shaping countermeasures — is *never* attributed to
            // another class: it degrades to the explicit no-match.
            None => FingerprintVerdict::NoMatch,
        }
    }

    /// Record a sealed verdict in the FIFO cache and the totals.
    fn commit(&mut self, device: u16, verdict: FingerprintVerdict) {
        self.sealed_total[match verdict {
            FingerprintVerdict::Match(_) => 0,
            FingerprintVerdict::Spoof { .. } => 1,
            _ => 2,
        }] += 1;
        if self.sealed.len() >= self.cfg.max_sealed {
            self.sealed.remove(0);
        }
        self.sealed.push((device, verdict));
    }
}

impl FingerprintGate for FingerprintEngine {
    fn observe(&mut self, pkt: &PacketRecord, dns: &DnsTable) -> FingerprintObservation {
        // Steady state: the device's verdict is already sealed. The
        // replay refreshes the entry's LRU slot, so an active device's
        // verdict cannot be flushed out of the cache by a burst of
        // throwaway-MAC seals (which would reopen its Pending window).
        if let Some(i) = self.sealed.iter().position(|(d, _)| *d == pkt.device) {
            let entry = self.sealed.remove(i);
            let v = entry.1;
            self.sealed.push(entry);
            return FingerprintObservation {
                verdict: v,
                just_sealed: false,
            };
        }

        // Find the device's evidence window, refreshing its LRU slot,
        // or open one. Past the cap the least-recently-active window is
        // evicted — a one-shot throwaway MAC, not a device that is
        // actively sending — and the victim is *sealed* with whatever
        // partial evidence it has, rather than discarded: silently
        // dropping an open window would let a device that floods
        // throwaway MACs reset its own evidence each cycle and stay
        // Pending (allowed) forever. An un-confirmed Spoof from partial
        // evidence is demoted to NoMatch — still quarantined, but the
        // accusation keeps requiring a prior full contradictory window.
        match self.tracked.iter().position(|(d, _)| *d == pkt.device) {
            Some(i) => {
                let entry = self.tracked.remove(i);
                self.tracked.push(entry);
            }
            None => {
                if self.tracked.len() >= self.cfg.max_tracked {
                    let (victim, ev) = self.tracked.remove(0);
                    let verdict = match self.seal(&ev, dns) {
                        FingerprintVerdict::Spoof { .. } if ev.candidate.is_none() => {
                            FingerprintVerdict::NoMatch
                        }
                        v => v,
                    };
                    self.commit(victim, verdict);
                }
                self.tracked.push((pkt.device, Evidence::new()));
            }
        };
        let idx = self.tracked.len() - 1;

        let ev = &mut self.tracked[idx].1;
        let prev = (ev.seen > 0).then_some((ev.last_ts, ev.last_size));
        fold_packet(&mut ev.hist, pkt, prev);
        ev.last_ts = pkt.ts;
        ev.last_size = pkt.size;
        ev.seen += 1;
        if ev.n_claims < self.cfg.claim_domains {
            if let RemoteId::Domain(id) = dns.remote_id(pkt.remote_ip) {
                if !ev.claims[..ev.n_claims].contains(&id) {
                    ev.claims[ev.n_claims] = id;
                    ev.n_claims += 1;
                }
            }
        }

        if ev.seen < self.cfg.evidence_window {
            // While a spoof candidate is armed the device is already
            // quarantined: its confirmation-window traffic reads NoMatch
            // (drop), never Pending (allow) — otherwise a spoofer whose
            // first window sealed contradictory would get a second
            // window of forwarded packets, enough to finish a command.
            return FingerprintObservation {
                verdict: if ev.candidate.is_some() {
                    FingerprintVerdict::NoMatch
                } else {
                    FingerprintVerdict::Pending
                },
                just_sealed: false,
            };
        }

        // Window full: decide. Only the first window forwards traffic
        // (the confirmation window reads NoMatch throughout), so at most
        // `evidence_window - 1` packets of an unknown device are ever
        // forwarded, spoofer or not.
        let ev = self.tracked[idx].1;
        let verdict = self.seal(&ev, dns);
        if let FingerprintVerdict::Spoof { matched, .. } = verdict {
            if ev.candidate.is_none() {
                // First contradictory window: arm the candidate and
                // demand a second contradictory window before the
                // accusation. Until then the device's traffic reads as
                // NoMatch — quarantined, but not yet branded a spoofer.
                self.tracked[idx].1.restart(matched);
                return FingerprintObservation {
                    verdict: FingerprintVerdict::NoMatch,
                    just_sealed: false,
                };
            }
            // Candidate armed: any confident wrong class confirms. A
            // genuine device's fluke window is followed by Match or
            // NoMatch; only sustained wrong-class behavior lands here,
            // and letting a different wrong class re-arm would let an
            // attacker alternate mimicry between two classes and never
            // seal.
        }
        let (device, _) = self.tracked.remove(idx);
        self.commit(device, verdict);
        FingerprintObservation {
            verdict,
            just_sealed: true,
        }
    }

    fn state_size(&self) -> usize {
        self.tracked.len() + self.sealed.len()
    }
}
