//! The allocation discipline, made checkable: after construction the
//! engine's entire observe path — evidence accumulation, window sealing,
//! and the sealed-verdict steady state — must not touch the heap. All
//! evidence lives in fixed arrays inside two `Vec`s preallocated to
//! their FIFO caps, and every decision is integer arithmetic.
//!
//! The file holds exactly one test so no concurrent test thread can
//! perturb the allocator counters.

use fiat_core::FingerprintGate;
use fiat_fingerprint::{FingerprintEngine, MatcherConfig, SignatureSet};
use fiat_net::{
    Direction, DnsTable, PacketRecord, SimTime, TcpFlags, TlsVersion, TrafficClass, Transport,
};
use fiat_probe::{thread_allocations, AllocScope, CountingAllocator};
use fiat_trace::fingerprint_corpus;
use std::net::Ipv4Addr;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn observe_path_does_not_allocate() {
    // Setup (allocates freely): train, build the DNS view and packets.
    let cfg = MatcherConfig::default();
    let corpus = fingerprint_corpus(1);
    let mut engine = FingerprintEngine::new(SignatureSet::learn(&corpus, cfg.evidence_window), cfg);
    let mut dns = DnsTable::new();
    for (_, trace) in &corpus {
        dns.merge(&trace.dns);
    }
    let window = cfg.evidence_window as usize;
    let remote = Ipv4Addr::new(34, 9, 9, 9);
    let packets: Vec<PacketRecord> = (0..300u64)
        .map(|i| PacketRecord {
            ts: SimTime::from_millis(i * 40),
            device: 800 + (i / window as u64) as u16,
            direction: Direction::FromDevice,
            local_ip: Ipv4Addr::new(192, 168, 1, 7),
            remote_ip: remote,
            local_port: 50_000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::psh_ack(),
            tls: TlsVersion::None,
            size: 999,
            label: TrafficClass::Control,
        })
        .collect();

    // Measured region: fill and seal a dozen evidence windows, then
    // hammer the sealed steady state.
    let scope = AllocScope::enter();
    let mut sealed = 0u64;
    for pkt in &packets {
        if engine.observe(pkt, &dns).just_sealed {
            sealed += 1;
        }
    }
    for _ in 0..1000 {
        let obs = engine.observe(&packets[0], &dns);
        assert!(!obs.just_sealed);
    }
    let allocs = scope.delta();

    assert_eq!(sealed, 300 / window as u64);
    assert_eq!(
        allocs,
        0,
        "fingerprint observe path allocated {allocs} times over {} packets",
        packets.len() + 1000
    );
    // The counters saw the training setup, proving the probe was live
    // while the measured region stayed clean.
    assert!(thread_allocations() > 0);
}
