//! Countermeasure robustness: a *genuine* device running traffic-privacy
//! countermeasures — size padding, length quantization ("shaping"),
//! timing jitter — may lose its confident match, but the matcher must
//! degrade to the explicit no-confident-match, never flip it to another
//! class (which would brand a legitimate device a spoofer).

use fiat_core::{FingerprintGate, FingerprintVerdict};
use fiat_fingerprint::{FingerprintEngine, MatcherConfig, SignatureSet};
use fiat_net::{DnsTable, PacketRecord};
use fiat_trace::{class_trace, fingerprint_corpus, testbed_devices, CORPUS_CLASSES};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Train once; every proptest case builds a fresh engine from a clone.
fn trained() -> &'static (SignatureSet, DnsTable) {
    static TRAINED: OnceLock<(SignatureSet, DnsTable)> = OnceLock::new();
    TRAINED.get_or_init(|| {
        let corpus = fingerprint_corpus(1);
        let sigs = SignatureSet::learn(&corpus, MatcherConfig::default().evidence_window);
        let mut dns = DnsTable::new();
        for (_, trace) in &corpus {
            dns.merge(&trace.dns);
        }
        (sigs, dns)
    })
}

/// Run a transformed genuine trace of class `ci` through a fresh engine
/// and assert the sealed verdict is the honest set: the correct class or
/// an explicit no-match — never another class, never a spoof flag.
fn assert_no_cross_class_flip(
    ci: usize,
    seed: u64,
    case: &str,
    transform: impl Fn(&mut PacketRecord),
) -> Result<(), TestCaseError> {
    let (sigs, dns) = trained();
    let mut engine = FingerprintEngine::new(sigs.clone(), MatcherConfig::default());
    let mut dns = dns.clone();
    let devices = testbed_devices();
    let mut trace = class_trace(&devices[CORPUS_CLASSES[ci].1], 600, seed);
    dns.merge(&trace.dns);
    let window = engine.config().evidence_window as usize;
    trace.packets.truncate(2 * window);
    for pkt in &mut trace.packets {
        transform(pkt);
    }
    let mut sealed = None;
    for pkt in &trace.packets {
        let obs = engine.observe(pkt, &dns);
        if obs.just_sealed {
            sealed = Some(obs.verdict);
        }
    }
    let verdict = sealed.expect("two windows of packets must seal");
    match verdict {
        FingerprintVerdict::Match(b) => prop_assert_eq!(
            b as usize,
            ci,
            "genuine {} ({case}, seed {seed}) matched as {:?}",
            CORPUS_CLASSES[ci].0,
            verdict
        ),
        FingerprintVerdict::NoMatch => {}
        other => prop_assert!(
            false,
            "genuine {} ({case}, seed {seed}) got {:?} — cross-class flip",
            CORPUS_CLASSES[ci].0,
            other
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn padding_never_flips_class(ci in 0usize..5, seed in 0u64..1_000, pad in 0u16..=300) {
        assert_no_cross_class_flip(ci, seed, &format!("pad {pad}"), |pkt| {
            pkt.size = pkt.size.saturating_add(pad).min(1500);
        })?;
    }

    #[test]
    fn shaping_never_flips_class(ci in 0usize..5, seed in 0u64..1_000, quantum in 1u16..=128) {
        assert_no_cross_class_flip(ci, seed, &format!("quantum {quantum}"), |pkt| {
            pkt.size = (pkt.size.div_ceil(quantum) * quantum).min(1500);
        })?;
    }

    #[test]
    fn jitter_never_flips_class(ci in 0usize..5, seed in 0u64..1_000, num in 3u64..=5) {
        // Scale every timestamp by num/4: 0.75x to 1.25x cadence jitter.
        assert_no_cross_class_flip(ci, seed, &format!("scale {num}/4"), |pkt| {
            pkt.ts = fiat_net::SimTime::from_millis(pkt.ts.as_millis() * num / 4);
        })?;
    }

    #[test]
    fn combined_countermeasures_never_flip_class(
        ci in 0usize..5,
        seed in 0u64..1_000,
        pad in 0u16..=200,
        quantum in 1u16..=64,
        num in 3u64..=5,
    ) {
        let case = format!("pad {pad} quantum {quantum} scale {num}/4");
        assert_no_cross_class_flip(ci, seed, &case, |pkt| {
            pkt.size = (pkt.size.saturating_add(pad).div_ceil(quantum) * quantum).min(1500);
            pkt.ts = fiat_net::SimTime::from_millis(pkt.ts.as_millis() * num / 4);
        })?;
    }
}
