//! End-to-end matcher battery over the seeded labeled corpus: genuine
//! devices identify as their own class (never a false quarantine),
//! spoofed devices resolve as `Spoof`, and the evidence-window edge
//! behaves exactly as documented.

use fiat_core::{FingerprintGate, FingerprintObservation, FingerprintVerdict};
use fiat_fingerprint::{FingerprintEngine, MatcherConfig, SignatureSet};
use fiat_net::{DnsTable, SimDuration, Trace};
use fiat_trace::{class_trace, fingerprint_corpus, spoofed_trace, testbed_devices, CORPUS_CLASSES};

fn trained_engine(seed: u64) -> FingerprintEngine {
    let corpus = fingerprint_corpus(seed);
    let cfg = MatcherConfig::default();
    FingerprintEngine::new(SignatureSet::learn(&corpus, cfg.evidence_window), cfg)
}

/// Feed one single-device trace through the engine (merging its DNS so
/// claims resolve) and return the sealed verdict.
fn run_trace(
    engine: &mut FingerprintEngine,
    trace: &Trace,
    dns: &mut DnsTable,
) -> Option<FingerprintVerdict> {
    dns.merge(&trace.dns);
    let mut sealed = None;
    for pkt in &trace.packets {
        let FingerprintObservation {
            verdict,
            just_sealed,
        } = engine.observe(pkt, dns);
        if just_sealed {
            assert!(sealed.is_none(), "window sealed twice");
            sealed = Some(verdict);
        }
    }
    sealed
}

fn corpus_dns(seed: u64) -> DnsTable {
    let mut dns = DnsTable::new();
    for (_, trace) in fingerprint_corpus(seed) {
        dns.merge(&trace.dns);
    }
    dns
}

#[test]
fn genuine_devices_identify_as_their_own_class() {
    let devices = testbed_devices();
    let mut engine = trained_engine(1);
    let mut dns = corpus_dns(1);
    for eval_seed in [101u64, 202, 303, 404] {
        for (ci, (label, dev)) in CORPUS_CLASSES.iter().enumerate() {
            let device_id = 500 + (eval_seed % 100) as u16 * 10 + ci as u16;
            let mut trace = class_trace(&devices[*dev], device_id, eval_seed ^ (ci as u64) << 32);
            trace.packets.truncate(200);
            let verdict = run_trace(&mut engine, &trace, &mut dns)
                .unwrap_or_else(|| panic!("{label}: window never sealed"));
            assert_eq!(
                verdict,
                FingerprintVerdict::Match(ci as u16),
                "{label} (seed {eval_seed}) misidentified: {verdict:?}"
            );
        }
    }
}

#[test]
fn spoofed_devices_are_flagged_as_spoof() {
    let devices = testbed_devices();
    let mut engine = trained_engine(1);
    let mut dns = corpus_dns(1);
    // Each pair: a device that claims class `claimed` while behaving
    // like class `behaved` (indices into CORPUS_CLASSES).
    let pairs = [(2usize, 1usize), (1, 0), (3, 4), (0, 2)];
    for (i, (claimed_ci, behaved_ci)) in pairs.iter().enumerate() {
        let claimed = &devices[CORPUS_CLASSES[*claimed_ci].1];
        let behaved = &devices[CORPUS_CLASSES[*behaved_ci].1];
        let trace = spoofed_trace(
            claimed,
            behaved,
            700 + i as u16,
            SimDuration::from_secs(3600),
            55 + i as u64,
        );
        let verdict = run_trace(&mut engine, &trace, &mut dns).expect("window seals");
        assert_eq!(
            verdict,
            FingerprintVerdict::Spoof {
                claimed: *claimed_ci as u16,
                matched: *behaved_ci as u16,
            },
            "spoof pair {claimed_ci}<-{behaved_ci} not flagged: {verdict:?}"
        );
    }
}

#[test]
fn unrecognizable_behavior_is_no_match_not_a_guess() {
    // Constant 999 B uplink packets at a fixed 10 ms cadence resemble no
    // trained class: the verdict must be the explicit NoMatch.
    use fiat_net::{
        Direction, PacketRecord, SimTime, TcpFlags, TlsVersion, TrafficClass, Transport,
    };
    let mut engine = trained_engine(1);
    let dns = corpus_dns(1);
    let mut sealed = None;
    for i in 0..40u64 {
        let pkt = PacketRecord {
            ts: SimTime::from_millis(10 * i),
            device: 999,
            direction: Direction::FromDevice,
            local_ip: "192.168.1.9".parse().unwrap(),
            remote_ip: "1.2.3.4".parse().unwrap(),
            local_port: 50_000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::psh_ack(),
            tls: TlsVersion::None,
            size: 999,
            label: TrafficClass::Control,
        };
        let obs = engine.observe(&pkt, &dns);
        if obs.just_sealed {
            sealed = Some(obs.verdict);
        }
    }
    assert_eq!(sealed, Some(FingerprintVerdict::NoMatch));
}

#[test]
fn window_edge_is_exact() {
    // Packets 1..window-1 are Pending; packet #window seals with the
    // verdict; every later packet replays the cached verdict without
    // re-sealing.
    let devices = testbed_devices();
    let mut engine = trained_engine(1);
    let mut dns = corpus_dns(1);
    let window = engine.config().evidence_window as usize;
    let trace = class_trace(&devices[CORPUS_CLASSES[1].1], 321, 77);
    dns.merge(&trace.dns);
    assert!(trace.packets.len() > window + 10);
    for (i, pkt) in trace.packets.iter().take(window + 10).enumerate() {
        let obs = engine.observe(pkt, &dns);
        if i + 1 < window {
            assert_eq!(obs.verdict, FingerprintVerdict::Pending, "packet {i}");
            assert!(!obs.just_sealed);
        } else {
            assert_eq!(obs.verdict, FingerprintVerdict::Match(1), "packet {i}");
            assert_eq!(obs.just_sealed, i + 1 == window);
        }
    }
    assert_eq!(
        engine.sealed_verdict(321),
        Some(FingerprintVerdict::Match(1))
    );
    assert_eq!(engine.sealed_counts(), [1, 0, 0]);
}

#[test]
fn tracked_and_sealed_are_fifo_capped() {
    use fiat_net::{
        Direction, PacketRecord, SimTime, TcpFlags, TlsVersion, TrafficClass, Transport,
    };
    let corpus = fingerprint_corpus(1);
    let cfg = MatcherConfig {
        max_tracked: 4,
        max_sealed: 4,
        evidence_window: 3,
        ..MatcherConfig::default()
    };
    let mut engine = FingerprintEngine::new(SignatureSet::learn(&corpus, cfg.evidence_window), cfg);
    let dns = DnsTable::new();
    let pkt = |device: u16, i: u64| PacketRecord {
        ts: SimTime::from_millis(i),
        device,
        direction: Direction::FromDevice,
        local_ip: "192.168.1.9".parse().unwrap(),
        remote_ip: "1.2.3.4".parse().unwrap(),
        local_port: 50_000,
        remote_port: 443,
        transport: Transport::Tcp,
        tcp_flags: TcpFlags::psh_ack(),
        tls: TlsVersion::None,
        size: 999,
        label: TrafficClass::Control,
    };
    // Open 6 windows with one packet each: the first two devices are
    // FIFO-evicted, state never exceeds the cap.
    for d in 0..6u16 {
        engine.observe(&pkt(d, u64::from(d)), &dns);
    }
    assert_eq!(engine.state_size(), 4);
    // Device 0 was evicted: two more packets still leave it Pending
    // (its evidence restarted), the third seals it.
    assert!(!engine.observe(&pkt(0, 100), &dns).just_sealed);
    assert!(!engine.observe(&pkt(0, 101), &dns).just_sealed);
    assert!(engine.observe(&pkt(0, 102), &dns).just_sealed);
    // Seal 4 more devices: the sealed cache caps at 4 too.
    for d in 10..14u16 {
        for i in 0..3u64 {
            engine.observe(&pkt(d, 200 + u64::from(d) * 10 + i), &dns);
        }
    }
    assert_eq!(engine.sealed_verdict(0), None, "FIFO evicted from sealed");
    assert!(engine.sealed_verdict(13).is_some());
    assert!(engine.state_size() <= 8);
}
