//! End-to-end matcher battery over the seeded labeled corpus: genuine
//! devices identify as their own class (never a false quarantine),
//! spoofed devices resolve as `Spoof`, and the evidence-window edge
//! behaves exactly as documented.

use fiat_core::{FingerprintGate, FingerprintObservation, FingerprintVerdict};
use fiat_fingerprint::{FingerprintEngine, MatcherConfig, SignatureSet};
use fiat_net::{DnsTable, SimDuration, Trace};
use fiat_trace::{class_trace, fingerprint_corpus, spoofed_trace, testbed_devices, CORPUS_CLASSES};

fn trained_engine(seed: u64) -> FingerprintEngine {
    let corpus = fingerprint_corpus(seed);
    let cfg = MatcherConfig::default();
    FingerprintEngine::new(SignatureSet::learn(&corpus, cfg.evidence_window), cfg)
}

/// Feed one single-device trace through the engine (merging its DNS so
/// claims resolve) and return the sealed verdict.
fn run_trace(
    engine: &mut FingerprintEngine,
    trace: &Trace,
    dns: &mut DnsTable,
) -> Option<FingerprintVerdict> {
    dns.merge(&trace.dns);
    let mut sealed = None;
    for pkt in &trace.packets {
        let FingerprintObservation {
            verdict,
            just_sealed,
        } = engine.observe(pkt, dns);
        if just_sealed {
            assert!(sealed.is_none(), "window sealed twice");
            sealed = Some(verdict);
        }
    }
    sealed
}

fn corpus_dns(seed: u64) -> DnsTable {
    let mut dns = DnsTable::new();
    for (_, trace) in fingerprint_corpus(seed) {
        dns.merge(&trace.dns);
    }
    dns
}

#[test]
fn genuine_devices_identify_as_their_own_class() {
    let devices = testbed_devices();
    let mut engine = trained_engine(1);
    let mut dns = corpus_dns(1);
    for eval_seed in [101u64, 202, 303, 404] {
        for (ci, (label, dev)) in CORPUS_CLASSES.iter().enumerate() {
            let device_id = 500 + (eval_seed % 100) as u16 * 10 + ci as u16;
            let mut trace = class_trace(&devices[*dev], device_id, eval_seed ^ (ci as u64) << 32);
            trace.packets.truncate(200);
            let verdict = run_trace(&mut engine, &trace, &mut dns)
                .unwrap_or_else(|| panic!("{label}: window never sealed"));
            assert_eq!(
                verdict,
                FingerprintVerdict::Match(ci as u16),
                "{label} (seed {eval_seed}) misidentified: {verdict:?}"
            );
        }
    }
}

#[test]
fn spoofed_devices_are_flagged_as_spoof() {
    let devices = testbed_devices();
    let mut engine = trained_engine(1);
    let mut dns = corpus_dns(1);
    // Each pair: a device that claims class `claimed` while behaving
    // like class `behaved` (indices into CORPUS_CLASSES).
    let pairs = [(2usize, 1usize), (1, 0), (3, 4), (0, 2)];
    for (i, (claimed_ci, behaved_ci)) in pairs.iter().enumerate() {
        let claimed = &devices[CORPUS_CLASSES[*claimed_ci].1];
        let behaved = &devices[CORPUS_CLASSES[*behaved_ci].1];
        let trace = spoofed_trace(
            claimed,
            behaved,
            700 + i as u16,
            SimDuration::from_secs(3600),
            55 + i as u64,
        );
        let verdict = run_trace(&mut engine, &trace, &mut dns).expect("window seals");
        assert_eq!(
            verdict,
            FingerprintVerdict::Spoof {
                claimed: *claimed_ci as u16,
                matched: *behaved_ci as u16,
            },
            "spoof pair {claimed_ci}<-{behaved_ci} not flagged: {verdict:?}"
        );
    }
}

#[test]
fn unrecognizable_behavior_is_no_match_not_a_guess() {
    // Constant 999 B uplink packets at a fixed 10 ms cadence resemble no
    // trained class: the verdict must be the explicit NoMatch.
    use fiat_net::{
        Direction, PacketRecord, SimTime, TcpFlags, TlsVersion, TrafficClass, Transport,
    };
    let mut engine = trained_engine(1);
    let dns = corpus_dns(1);
    let mut sealed = None;
    for i in 0..40u64 {
        let pkt = PacketRecord {
            ts: SimTime::from_millis(10 * i),
            device: 999,
            direction: Direction::FromDevice,
            local_ip: "192.168.1.9".parse().unwrap(),
            remote_ip: "1.2.3.4".parse().unwrap(),
            local_port: 50_000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::psh_ack(),
            tls: TlsVersion::None,
            size: 999,
            label: TrafficClass::Control,
        };
        let obs = engine.observe(&pkt, &dns);
        if obs.just_sealed {
            sealed = Some(obs.verdict);
        }
    }
    assert_eq!(sealed, Some(FingerprintVerdict::NoMatch));
}

#[test]
fn window_edge_is_exact() {
    // Packets 1..window-1 are Pending; packet #window seals with the
    // verdict; every later packet replays the cached verdict without
    // re-sealing.
    let devices = testbed_devices();
    let mut engine = trained_engine(1);
    let mut dns = corpus_dns(1);
    let window = engine.config().evidence_window as usize;
    let trace = class_trace(&devices[CORPUS_CLASSES[1].1], 321, 77);
    dns.merge(&trace.dns);
    assert!(trace.packets.len() > window + 10);
    for (i, pkt) in trace.packets.iter().take(window + 10).enumerate() {
        let obs = engine.observe(pkt, &dns);
        if i + 1 < window {
            assert_eq!(obs.verdict, FingerprintVerdict::Pending, "packet {i}");
            assert!(!obs.just_sealed);
        } else {
            assert_eq!(obs.verdict, FingerprintVerdict::Match(1), "packet {i}");
            assert_eq!(obs.just_sealed, i + 1 == window);
        }
    }
    assert_eq!(
        engine.sealed_verdict(321),
        Some(FingerprintVerdict::Match(1))
    );
    assert_eq!(engine.sealed_counts(), [1, 0, 0]);
}

#[test]
fn spoof_confirmation_quarantines_instead_of_allowing() {
    // A spoofer whose first window seals contradictory must NOT get a
    // second window of forwarded traffic while the confirmation fills:
    // across the whole run at most `evidence_window - 1` packets are
    // allowed — below the 41-packet command-completion threshold the
    // window size was chosen to stay under — and once quarantine starts
    // it never reverts to allow.
    let devices = testbed_devices();
    let mut engine = trained_engine(1);
    let mut dns = corpus_dns(1);
    let window = engine.config().evidence_window as usize;
    let trace = spoofed_trace(
        &devices[CORPUS_CLASSES[2].1],
        &devices[CORPUS_CLASSES[1].1],
        710,
        SimDuration::from_secs(3600),
        55,
    );
    dns.merge(&trace.dns);
    let mut allowed = 0usize;
    let mut dropping = false;
    let mut sealed = None;
    for pkt in &trace.packets {
        let obs = engine.observe(pkt, &dns);
        match obs.verdict {
            FingerprintVerdict::Pending | FingerprintVerdict::Match(_) => {
                assert!(!dropping, "quarantined device allowed again");
                allowed += 1;
            }
            _ => dropping = true,
        }
        if obs.just_sealed {
            sealed = Some(obs.verdict);
        }
    }
    assert!(matches!(sealed, Some(FingerprintVerdict::Spoof { .. })));
    assert!(allowed < window, "{allowed} packets forwarded");
    assert!(allowed < 41, "spoofer could complete a WyzeCam command");
}

#[test]
fn alternating_mimicry_cannot_rearm_the_candidate_forever() {
    // Synthetic three-class world with full control over behavior:
    // class A = tiny packets, class B = big packets, class C is what
    // the device *claims* via its destination domain. The device plays
    // one window of B then switches to A. The first contradictory
    // window arms candidate B; the A-shaped confirmation window matches
    // a *different* wrong class — which must still confirm the spoof
    // (re-arming on every swap would let the device alternate mimicry
    // between two classes and keep a window of traffic allowed forever).
    use fiat_fingerprint::features::{fold_packet, profile};
    use fiat_fingerprint::{ClassSignature, FEATURE_COUNT};
    use fiat_net::SimTime;

    let cfg = MatcherConfig::default();
    let window = cfg.evidence_window as usize;
    let shaped = |start: u64, n: usize, size: u16| -> Vec<fiat_net::PacketRecord> {
        (0..n)
            .map(|i| {
                let mut p = flood_pkt(880, start + 10 * i as u64);
                p.size = size;
                p
            })
            .collect()
    };
    let phase_b = shaped(0, window, 999);
    let phase_a = shaped(10 * window as u64, window, 60);
    let exemplar = |pkts: &[fiat_net::PacketRecord]| -> [u16; FEATURE_COUNT] {
        let mut hist = [0u32; FEATURE_COUNT];
        let mut prev: Option<(SimTime, u16)> = None;
        for p in pkts {
            fold_packet(&mut hist, p, prev);
            prev = Some((p.ts, p.size));
        }
        profile(&hist)
    };
    let sig = |label: &str, ex: [u16; FEATURE_COUNT], domain: &str| ClassSignature {
        label: label.to_string(),
        exemplars: vec![ex],
        domains: vec![domain.to_string()],
        packets: window as u64,
    };
    // Class C's exemplar is far from both phases (sizes in bucket 5).
    let sigs = SignatureSet::from_signatures(vec![
        sig("a", exemplar(&phase_a), "a.example"),
        sig("b", exemplar(&phase_b), "b.example"),
        sig("c", exemplar(&shaped(0, window, 160)), "c.example"),
    ]);
    let mut dns = DnsTable::new();
    dns.observe_forward("1.2.3.4".parse().unwrap(), "c.example");
    let mut engine = FingerprintEngine::new(sigs, cfg);

    let mut sealed = None;
    for (i, pkt) in phase_b.iter().chain(&phase_a).enumerate() {
        let obs = engine.observe(pkt, &dns);
        if i >= window {
            assert_eq!(
                obs.verdict,
                if obs.just_sealed {
                    FingerprintVerdict::Spoof {
                        claimed: 2,
                        matched: 0,
                    }
                } else {
                    FingerprintVerdict::NoMatch
                },
                "confirmation-window packet {i} was not quarantined"
            );
        }
        if obs.just_sealed {
            sealed = Some(obs.verdict);
        }
    }
    assert_eq!(
        sealed,
        Some(FingerprintVerdict::Spoof {
            claimed: 2,
            matched: 0,
        }),
        "class-swapping spoofer re-armed instead of sealing"
    );
}

fn flood_pkt(device: u16, i: u64) -> fiat_net::PacketRecord {
    use fiat_net::{
        Direction, PacketRecord, SimTime, TcpFlags, TlsVersion, TrafficClass, Transport,
    };
    PacketRecord {
        ts: SimTime::from_millis(i),
        device,
        direction: Direction::FromDevice,
        local_ip: "192.168.1.9".parse().unwrap(),
        remote_ip: "1.2.3.4".parse().unwrap(),
        local_port: 50_000,
        remote_port: 443,
        transport: Transport::Tcp,
        tcp_flags: TcpFlags::psh_ack(),
        tls: TlsVersion::None,
        size: 999,
        label: TrafficClass::Control,
    }
}

#[test]
fn tracked_and_sealed_are_lru_capped() {
    let corpus = fingerprint_corpus(1);
    let cfg = MatcherConfig {
        max_tracked: 4,
        max_sealed: 4,
        evidence_window: 3,
        ..MatcherConfig::default()
    };
    let mut engine = FingerprintEngine::new(SignatureSet::learn(&corpus, cfg.evidence_window), cfg);
    let dns = DnsTable::new();
    // Open 6 windows with one packet each: the two least recently
    // active devices are evicted, and eviction *seals* their partial
    // evidence (a silently discarded window would be an
    // attacker-resettable reset).
    for d in 0..6u16 {
        engine.observe(&flood_pkt(d, u64::from(d)), &dns);
    }
    assert_eq!(engine.state_size(), 6, "4 tracked + 2 evicted-and-sealed");
    let evicted = engine.sealed_verdict(0).expect("eviction seals");
    assert!(engine.sealed_verdict(1).is_some());
    // The evicted device's next packet replays the cached verdict
    // instead of reopening a Pending window.
    let obs = engine.observe(&flood_pkt(0, 100), &dns);
    assert_eq!(obs.verdict, evicted);
    assert!(!obs.just_sealed);
    assert_eq!(engine.state_size(), 6, "no re-tracking after seal");
    // Seal 4 more devices: the sealed cache caps at 4 too.
    for d in 10..14u16 {
        for i in 0..3u64 {
            engine.observe(&flood_pkt(d, 200 + u64::from(d) * 10 + i), &dns);
        }
    }
    assert_eq!(engine.sealed_verdict(0), None, "LRU evicted from sealed");
    assert!(engine.sealed_verdict(13).is_some());
    assert!(engine.state_size() <= 8);
}

#[test]
fn mac_flood_cannot_keep_a_device_pending_forever() {
    // A device that also emits packets from throwaway MACs used to evict
    // its own open window each cycle, so its verdict never sealed and
    // all of its traffic stayed Pending (allowed) indefinitely. Now the
    // forced eviction seals the partial evidence: across the whole
    // flood the target device gets at most `evidence_window - 1`
    // provisionally allowed packets, then a cached verdict.
    let corpus = fingerprint_corpus(1);
    let cfg = MatcherConfig::default();
    let mut engine = FingerprintEngine::new(SignatureSet::learn(&corpus, cfg.evidence_window), cfg);
    let dns = DnsTable::new();
    let window = cfg.evidence_window as u64;
    let target = 400u16;
    let mut pending = 0u64;
    let mut t = 0u64;
    for cycle in 0..40u64 {
        // A few target packets, then a full FIFO of throwaway MACs.
        for _ in 0..window / 4 {
            t += 1;
            if engine.observe(&flood_pkt(target, t), &dns).verdict == FingerprintVerdict::Pending {
                pending += 1;
            }
        }
        for m in 0..cfg.max_tracked as u64 {
            t += 1;
            let mac = 1000 + (cycle * cfg.max_tracked as u64 + m) as u16;
            engine.observe(&flood_pkt(mac, t), &dns);
        }
    }
    assert!(
        pending < window,
        "{pending} packets rode the flood-reset fail-open"
    );
    assert!(
        engine.sealed_verdict(target).is_some(),
        "flooded device never sealed"
    );
}

#[test]
fn degenerate_caps_are_clamped_not_panicking() {
    let corpus = fingerprint_corpus(1);
    let cfg = MatcherConfig {
        max_tracked: 0,
        max_sealed: 0,
        evidence_window: 1,
        ..MatcherConfig::default()
    };
    let mut engine = FingerprintEngine::new(SignatureSet::learn(&corpus, 1), cfg);
    assert_eq!(engine.config().max_tracked, 1);
    assert_eq!(engine.config().max_sealed, 1);
    let dns = DnsTable::new();
    // Exercise both the tracked and sealed eviction paths at cap 1.
    for d in 0..4u16 {
        for i in 0..2u64 {
            engine.observe(&flood_pkt(d, u64::from(d) * 10 + i), &dns);
        }
    }
    assert!(engine.state_size() <= 2);
}
