//! The lazy IMU buffer (§6): "we assume the FIAT app can keep a lazy
//! buffer of sensor data, i.e., subscribe to sensor events in low
//! frequency and increase the frequency when an IoT app is detected in
//! the foreground — which requires about 60-80 ms."
//!
//! The buffer keeps a low-rate ring of recent samples; when an IoT app
//! comes to the foreground it switches to the full 250 Hz rate after a
//! rate-raise latency. Evidence windows then combine the low-rate history
//! with high-rate samples, so sensor capture is off the authorization
//! critical path.

use crate::imu::{ImuTrace, SAMPLE_RATE_HZ};

/// Low-power background sampling rate.
pub const LOW_RATE_HZ: u32 = 10;

/// Latency of raising the sampling rate (§6: 60–80 ms; we model the
/// midpoint deterministically).
pub const RATE_RAISE_MS: u64 = 70;

/// Buffer state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferMode {
    /// Background: sampling at [`LOW_RATE_HZ`].
    Low,
    /// Foreground IoT app: sampling at the full 250 Hz.
    High,
}

/// A lazy ring buffer over an underlying continuous IMU signal.
///
/// The signal is provided as a full-rate trace (what the physical sensor
/// would produce); the buffer models which of those samples the app
/// actually receives given its subscription rate over time.
#[derive(Debug)]
pub struct LazyImuBuffer {
    /// Capacity in milliseconds of history retained.
    window_ms: u64,
    mode: BufferMode,
    /// Millisecond timestamps (relative) of retained samples with their
    /// index into the source trace.
    retained: Vec<(u64, usize)>,
    /// When the current mode started (ms) and when high-rate delivery
    /// actually begins (after the raise latency).
    high_effective_from: Option<u64>,
    now_ms: u64,
}

impl LazyImuBuffer {
    /// New buffer retaining `window_ms` of history, starting in low mode.
    pub fn new(window_ms: u64) -> Self {
        assert!(window_ms > 0);
        LazyImuBuffer {
            window_ms,
            mode: BufferMode::Low,
            retained: Vec::new(),
            high_effective_from: None,
            now_ms: 0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> BufferMode {
        self.mode
    }

    /// The foreground IoT app was detected: raise the rate. High-rate
    /// samples start flowing [`RATE_RAISE_MS`] later.
    pub fn raise(&mut self) {
        if self.mode == BufferMode::Low {
            self.mode = BufferMode::High;
            self.high_effective_from = Some(self.now_ms + RATE_RAISE_MS);
        }
    }

    /// The IoT app left the foreground: drop back to low rate.
    pub fn lower(&mut self) {
        self.mode = BufferMode::Low;
        self.high_effective_from = None;
    }

    /// Advance time to `t_ms`, ingesting samples from the source signal.
    /// `source` is indexed at the full 250 Hz rate from t = 0.
    pub fn advance(&mut self, t_ms: u64, source: &ImuTrace) {
        assert!(t_ms >= self.now_ms, "time moves forward");
        let full_rate = SAMPLE_RATE_HZ as u64;
        let low_step_ms = 1000 / LOW_RATE_HZ as u64;
        let mut t = self.now_ms;
        while t < t_ms {
            t += 1;
            let deliver = match self.mode {
                BufferMode::Low => t.is_multiple_of(low_step_ms),
                BufferMode::High => match self.high_effective_from {
                    Some(eff) if t >= eff => t * full_rate % 1000 < full_rate,
                    _ => t.is_multiple_of(low_step_ms),
                },
            };
            if deliver {
                let idx = (t * full_rate / 1000) as usize;
                if idx < source.len() {
                    self.retained.push((t, idx));
                }
            }
        }
        self.now_ms = t_ms;
        // Trim to the window.
        let cutoff = self.now_ms.saturating_sub(self.window_ms);
        self.retained.retain(|&(ts, _)| ts > cutoff);
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.retained.len()
    }

    /// Whether the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.retained.is_empty()
    }

    /// Materialize the retained window as an [`ImuTrace`] for feature
    /// extraction.
    pub fn snapshot(&self, source: &ImuTrace) -> ImuTrace {
        let mut out = ImuTrace::default();
        for &(_, idx) in &self.retained {
            out.accel.push(source.accel[idx]);
            out.gyro.push(source.gyro[idx]);
        }
        out
    }

    /// Effective sample rate over the last second (samples/s).
    pub fn recent_rate(&self) -> f64 {
        let cutoff = self.now_ms.saturating_sub(1000);
        self.retained.iter().filter(|&&(ts, _)| ts > cutoff).count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imu::MotionKind;

    fn source(ms: u64) -> ImuTrace {
        ImuTrace::synthesize(MotionKind::HumanTouch, ms, 1)
    }

    #[test]
    fn low_mode_samples_sparsely() {
        let src = source(3000);
        let mut buf = LazyImuBuffer::new(2000);
        buf.advance(1000, &src);
        // 10 Hz for one second.
        assert_eq!(buf.len(), 10);
        assert!((buf.recent_rate() - 10.0).abs() <= 1.0);
        assert_eq!(buf.mode(), BufferMode::Low);
    }

    #[test]
    fn raise_reaches_full_rate_after_latency() {
        let src = source(4000);
        let mut buf = LazyImuBuffer::new(4000);
        buf.advance(1000, &src);
        buf.raise();
        assert_eq!(buf.mode(), BufferMode::High);
        // During the raise latency the buffer still runs low-rate.
        buf.advance(1000 + RATE_RAISE_MS, &src);
        let before = buf.len();
        assert!(before <= 12, "{before}");
        // One second of full-rate capture afterwards.
        buf.advance(2000 + RATE_RAISE_MS, &src);
        let gained = buf.len() - before;
        assert!(
            (200..=260).contains(&gained),
            "high-rate second delivered {gained} samples"
        );
    }

    #[test]
    fn window_trims_old_history() {
        let src = source(10_000);
        let mut buf = LazyImuBuffer::new(1000);
        buf.advance(5000, &src);
        // Only the last second retained at 10 Hz.
        assert!(buf.len() <= 11, "{}", buf.len());
        assert!(buf.retained.iter().all(|&(ts, _)| ts > 4000));
    }

    #[test]
    fn snapshot_extractable() {
        let src = source(3000);
        let mut buf = LazyImuBuffer::new(3000);
        buf.advance(1000, &src);
        buf.raise();
        buf.advance(2500, &src);
        let snap = buf.snapshot(&src);
        assert_eq!(snap.len(), buf.len());
        // Features extract without panicking and carry signal.
        let f = crate::features::extract_features(&snap);
        assert_eq!(f.len(), crate::features::FEATURE_COUNT);
        assert!(f.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn lower_returns_to_sparse_sampling() {
        let src = source(5000);
        let mut buf = LazyImuBuffer::new(5000);
        buf.raise();
        buf.advance(1000, &src);
        buf.lower();
        let before = buf.len();
        buf.advance(2000, &src);
        assert_eq!(buf.mode(), BufferMode::Low);
        assert!(buf.len() - before <= 11, "{}", buf.len() - before);
    }

    #[test]
    #[should_panic(expected = "time moves forward")]
    fn time_cannot_rewind() {
        let src = source(1000);
        let mut buf = LazyImuBuffer::new(1000);
        buf.advance(500, &src);
        buf.advance(400, &src);
    }
}
