//! IMU sensing and humanness verification for FIAT.
//!
//! When a user interacts with an IoT companion app, the touch force leaves
//! a motion signature in the phone's accelerometer and gyroscope. FIAT's
//! client app samples both at 250 Hz while an IoT app is in the foreground
//! (§5.3), extracts 48 features, and the proxy classifies the evidence as
//! human or not with a 9-layer decision tree (§5.4, following zkSENSE).
//!
//! The paper trains on the zkSENSE dataset, which is not public; we build
//! a synthetic-but-physical substitute in [`imu`]: human traces combine
//! gravity, hand tremor (8–12 Hz), orientation drift, and damped touch
//! impulses; attacker traces are a phone resting on a table (software
//! injection leaves no motion) or replay-like smooth noise. The classifier
//! operating point is tuned to land near the paper's reported recalls
//! (0.934 human / 0.982 non-human), which is what the Table 6 composition
//! depends on.

pub mod features;
pub mod humanness;
pub mod imu;
pub mod lazy;

pub use features::{extract_features, feature_names, FEATURE_COUNT};
pub use humanness::{HumannessValidator, ValidatorReport};
pub use imu::{ImuTrace, MotionKind, SAMPLE_RATE_HZ};
pub use lazy::{BufferMode, LazyImuBuffer};
