//! Humanness verification: a 9-layer decision tree over the 48 IMU
//! features (§5.4), plus a calibrated operating point for end-to-end
//! composition.
//!
//! Two usage modes:
//!
//! - [`HumannessValidator::train`] trains on synthetic traces and reports
//!   held-out metrics — this exercises the real code path.
//! - [`HumannessValidator::with_operating_point`] pins the validator's
//!   error rates to the paper's measured recalls (human 0.934, non-human
//!   0.982 in Table 6), which is the right tool for reproducing the
//!   Table 6 false-positive/negative composition: those numbers came from
//!   a human-subject study we cannot rerun, and Appendix A shows the
//!   composition depends only on the recalls.

use crate::features::extract_features;
use crate::imu::{ImuTrace, MotionKind};
use fiat_ml::metrics::ConfusionMatrix;
use fiat_ml::tree::DecisionTree;
use fiat_ml::{Classifier, Dataset, StandardScaler};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Depth of the humanness decision tree (§5.4: "9-layer decision tree").
pub const TREE_DEPTH: usize = 9;

/// Held-out evaluation of a trained validator.
#[derive(Debug, Clone, Copy)]
pub struct ValidatorReport {
    /// Recall on human traces.
    pub recall_human: f64,
    /// Recall on non-human traces.
    pub recall_non_human: f64,
    /// Precision of the "human" verdict.
    pub precision_human: f64,
    /// Precision of the "non-human" verdict.
    pub precision_non_human: f64,
}

enum Mode {
    Trained {
        tree: DecisionTree,
        scaler: StandardScaler,
    },
    /// Decide from ground truth with pinned recalls (for composition
    /// studies): a human trace validates with probability `recall_human`,
    /// a non-human trace is rejected with probability `recall_non_human`.
    Calibrated {
        recall_human: f64,
        recall_non_human: f64,
        rng: parking_lot_free_rng::SeededCell,
    },
}

/// A tiny deterministic RNG cell so `validate` can take `&self`-style use
/// through `&mut self` without exposing rand types in the API.
mod parking_lot_free_rng {
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    pub struct SeededCell(StdRng);

    impl SeededCell {
        pub fn new(seed: u64) -> Self {
            SeededCell(StdRng::seed_from_u64(seed))
        }

        pub fn bernoulli(&mut self, p: f64) -> bool {
            self.0.gen_range(0.0..1.0) < p
        }
    }
}

/// Humanness validator.
pub struct HumannessValidator {
    mode: Mode,
}

impl HumannessValidator {
    /// Train a real tree on `n_per_class` synthetic traces per class and
    /// evaluate on a same-sized held-out set. Returns the validator and
    /// its held-out report.
    pub fn train(n_per_class: usize, seed: u64) -> (Self, ValidatorReport) {
        let (train, _) = Self::make_dataset(n_per_class, seed);
        let (test, _) = Self::make_dataset(n_per_class, seed.wrapping_add(0x9e3779b9));

        let (scaler, train_x) = StandardScaler::fit_transform(&train.x);
        let train_scaled = Dataset {
            x: train_x,
            y: train.y.clone(),
            n_classes: 2,
            feature_names: train.feature_names.clone(),
        };
        let mut tree = DecisionTree::new(TREE_DEPTH);
        tree.fit(&train_scaled);

        let test_x = scaler.transform(&test.x);
        let pred: Vec<usize> = test_x.iter().map(|x| tree.predict_one(x)).collect();
        let cm = ConfusionMatrix::from_predictions(&test.y, &pred, 2);
        let report = ValidatorReport {
            recall_human: cm.recall(1),
            recall_non_human: cm.recall(0),
            precision_human: cm.precision(1),
            precision_non_human: cm.precision(0),
        };
        (
            HumannessValidator {
                mode: Mode::Trained { tree, scaler },
            },
            report,
        )
    }

    /// Build a calibrated validator with pinned recalls. Paper operating
    /// point: `recall_human = 0.934`, `recall_non_human = 0.982`.
    pub fn with_operating_point(recall_human: f64, recall_non_human: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&recall_human));
        assert!((0.0..=1.0).contains(&recall_non_human));
        HumannessValidator {
            mode: Mode::Calibrated {
                recall_human,
                recall_non_human,
                rng: parking_lot_free_rng::SeededCell::new(seed),
            },
        }
    }

    /// Decide whether a trace shows a human. For the calibrated mode the
    /// trace's ground truth drives the pinned-recall coin flip.
    pub fn validate(&mut self, trace: &ImuTrace, truth: MotionKind) -> bool {
        self.validate_features(&extract_features(trace), truth)
    }

    /// Decide from an already-extracted 48-feature vector (what FIAT's
    /// app actually ships over the wire, §5.3).
    pub fn validate_features(&mut self, features: &[f64], truth: MotionKind) -> bool {
        match &mut self.mode {
            Mode::Trained { tree, scaler } => {
                let mut f = features.to_vec();
                scaler.transform_row(&mut f);
                tree.predict_one(&f) == 1
            }
            Mode::Calibrated {
                recall_human,
                recall_non_human,
                rng,
            } => match truth.label() {
                1 => rng.bernoulli(*recall_human),
                _ => !rng.bernoulli(*recall_non_human),
            },
        }
    }

    /// Generate a labeled dataset of synthetic traces: half human, a
    /// quarter resting, a quarter synthetic sway. Returns the dataset and
    /// the per-sample motion kinds.
    pub fn make_dataset(n_per_class: usize, seed: u64) -> (Dataset, Vec<MotionKind>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut kinds = Vec::new();
        for i in 0..n_per_class {
            let dur = rng.gen_range(400..1200);
            let t = ImuTrace::synthesize(MotionKind::HumanTouch, dur, seed ^ (i as u64) << 1);
            x.push(extract_features(&t));
            y.push(1);
            kinds.push(MotionKind::HumanTouch);

            let kind = if i % 2 == 0 {
                MotionKind::Resting
            } else {
                MotionKind::SyntheticSway
            };
            let dur = rng.gen_range(400..1200);
            let t = ImuTrace::synthesize(kind, dur, seed ^ ((i as u64) << 1 | 1));
            x.push(extract_features(&t));
            y.push(0);
            kinds.push(kind);
        }
        let names = crate::features::feature_names();
        (Dataset::new(x, y).with_feature_names(names), kinds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trained_validator_separates_classes_well() {
        let (_, report) = HumannessValidator::train(60, 42);
        assert!(
            report.recall_human > 0.9,
            "human recall {}",
            report.recall_human
        );
        assert!(
            report.recall_non_human > 0.9,
            "non-human recall {}",
            report.recall_non_human
        );
    }

    #[test]
    fn trained_validator_accepts_fresh_human_trace() {
        let (mut v, _) = HumannessValidator::train(60, 1);
        let mut accepted = 0;
        for seed in 1000..1020 {
            let t = ImuTrace::synthesize(MotionKind::HumanTouch, 800, seed);
            if v.validate(&t, MotionKind::HumanTouch) {
                accepted += 1;
            }
        }
        assert!(accepted >= 18, "accepted {accepted}/20 human traces");
    }

    #[test]
    fn trained_validator_rejects_resting_phone() {
        let (mut v, _) = HumannessValidator::train(60, 1);
        let mut rejected = 0;
        for seed in 2000..2020 {
            let t = ImuTrace::synthesize(MotionKind::Resting, 800, seed);
            if !v.validate(&t, MotionKind::Resting) {
                rejected += 1;
            }
        }
        assert!(rejected >= 18, "rejected {rejected}/20 resting traces");
    }

    #[test]
    fn calibrated_mode_hits_pinned_recalls() {
        let mut v = HumannessValidator::with_operating_point(0.934, 0.982, 7);
        let human = ImuTrace::synthesize(MotionKind::HumanTouch, 400, 0);
        let resting = ImuTrace::synthesize(MotionKind::Resting, 400, 0);
        let n = 5000;
        let mut human_ok = 0;
        let mut nonhuman_rej = 0;
        for _ in 0..n {
            if v.validate(&human, MotionKind::HumanTouch) {
                human_ok += 1;
            }
            if !v.validate(&resting, MotionKind::Resting) {
                nonhuman_rej += 1;
            }
        }
        let rh = human_ok as f64 / n as f64;
        let rn = nonhuman_rej as f64 / n as f64;
        assert!((rh - 0.934).abs() < 0.02, "human recall {rh}");
        assert!((rn - 0.982).abs() < 0.02, "non-human recall {rn}");
    }

    #[test]
    #[should_panic]
    fn calibrated_rejects_bad_recall() {
        let _ = HumannessValidator::with_operating_point(1.5, 0.9, 0);
    }

    #[test]
    fn dataset_is_balanced_and_labeled() {
        let (d, kinds) = HumannessValidator::make_dataset(20, 3);
        assert_eq!(d.len(), 40);
        assert_eq!(d.class_counts(), vec![20, 20]);
        assert_eq!(kinds.len(), 40);
        for (y, k) in d.y.iter().zip(&kinds) {
            assert_eq!(*y, k.label());
        }
        assert_eq!(d.n_features(), crate::features::FEATURE_COUNT);
    }
}
