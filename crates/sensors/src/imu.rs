//! Synthetic IMU (accelerometer + gyroscope) traces.
//!
//! The generator is a small physical model rather than arbitrary noise:
//!
//! - **Human-held phone**: gravity vector with slow orientation drift,
//!   physiological hand tremor (8–12 Hz band, ~0.05 m/s² amplitude), and
//!   for each touch a damped-oscillator impulse (~30 ms ring-down) on both
//!   sensors — this is the signature Invisible CAPPCHA and zkSENSE exploit.
//! - **Resting phone** (software-injected touches, the paper's attacker):
//!   gravity plus electronic sensor noise only.
//! - **Replay-like synthetic motion**: smooth sinusoidal sway an attacker
//!   might inject without OS access being available; distinguishable
//!   because it lacks touch impulses and tremor statistics.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// IMU sampling rate used by FIAT's app (§5.3: 250 samples per second).
pub const SAMPLE_RATE_HZ: u32 = 250;

const GRAVITY: f64 = 9.81;

/// What produced a trace (ground truth for training/evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotionKind {
    /// Human holding the phone and touching the screen.
    HumanTouch,
    /// Phone resting on a surface; touches injected in software.
    Resting,
    /// Smooth synthetic motion injected by an attacker.
    SyntheticSway,
}

impl MotionKind {
    /// Binary humanness label (1 = human).
    pub fn label(self) -> usize {
        match self {
            MotionKind::HumanTouch => 1,
            MotionKind::Resting | MotionKind::SyntheticSway => 0,
        }
    }
}

/// A fixed-rate IMU capture: accelerometer and gyroscope, 3 axes each.
#[derive(Debug, Clone, Default)]
pub struct ImuTrace {
    /// Accelerometer samples (m/s²), one `[x, y, z]` per tick.
    pub accel: Vec<[f64; 3]>,
    /// Gyroscope samples (rad/s), one `[x, y, z]` per tick.
    pub gyro: Vec<[f64; 3]>,
}

impl ImuTrace {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.accel.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accel.is_empty()
    }

    /// Duration in seconds at the fixed sample rate.
    pub fn duration_secs(&self) -> f64 {
        self.len() as f64 / SAMPLE_RATE_HZ as f64
    }

    /// Synthesize a trace of `duration_ms` for the given motion kind.
    pub fn synthesize(kind: MotionKind, duration_ms: u64, seed: u64) -> ImuTrace {
        let n = (duration_ms as f64 / 1000.0 * SAMPLE_RATE_HZ as f64).round() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut accel = Vec::with_capacity(n);
        let mut gyro = Vec::with_capacity(n);
        let dt = 1.0 / SAMPLE_RATE_HZ as f64;

        // Electronic noise floor present in every capture.
        let accel_noise = 0.003;
        let gyro_noise = 0.0005;

        match kind {
            MotionKind::Resting => {
                for _ in 0..n {
                    accel.push([
                        rng.gen_range(-accel_noise..accel_noise),
                        rng.gen_range(-accel_noise..accel_noise),
                        GRAVITY + rng.gen_range(-accel_noise..accel_noise),
                    ]);
                    gyro.push([
                        rng.gen_range(-gyro_noise..gyro_noise),
                        rng.gen_range(-gyro_noise..gyro_noise),
                        rng.gen_range(-gyro_noise..gyro_noise),
                    ]);
                }
            }
            MotionKind::SyntheticSway => {
                // One smooth low-frequency sinusoid per axis; no tremor, no
                // impulses.
                let f = rng.gen_range(0.3..1.2);
                let amp_a = rng.gen_range(0.05..0.2);
                let amp_g = rng.gen_range(0.01..0.05);
                let phase: [f64; 3] = [
                    rng.gen_range(0.0..std::f64::consts::TAU),
                    rng.gen_range(0.0..std::f64::consts::TAU),
                    rng.gen_range(0.0..std::f64::consts::TAU),
                ];
                for i in 0..n {
                    let t = i as f64 * dt;
                    let s = |p: f64| (std::f64::consts::TAU * f * t + p).sin();
                    accel.push([
                        amp_a * s(phase[0]) + rng.gen_range(-accel_noise..accel_noise),
                        amp_a * s(phase[1]) + rng.gen_range(-accel_noise..accel_noise),
                        GRAVITY + amp_a * s(phase[2]) + rng.gen_range(-accel_noise..accel_noise),
                    ]);
                    gyro.push([
                        amp_g * s(phase[1]) + rng.gen_range(-gyro_noise..gyro_noise),
                        amp_g * s(phase[2]) + rng.gen_range(-gyro_noise..gyro_noise),
                        amp_g * s(phase[0]) + rng.gen_range(-gyro_noise..gyro_noise),
                    ]);
                }
            }
            MotionKind::HumanTouch => {
                // Hand tremor band and drift.
                let tremor_f = rng.gen_range(8.0..12.0);
                let tremor_amp = rng.gen_range(0.03..0.08);
                let drift_f = rng.gen_range(0.1..0.4);
                let drift_amp = rng.gen_range(0.1..0.3);
                // Touch times: at least one touch, roughly every 400-900 ms.
                let mut touch_ticks = Vec::new();
                let mut t_ms = rng.gen_range(50..250);
                while (t_ms as u64) < duration_ms {
                    touch_ticks
                        .push((t_ms as f64 / 1000.0 * SAMPLE_RATE_HZ as f64).round() as usize);
                    t_ms += rng.gen_range(400..900);
                }
                if touch_ticks.is_empty() {
                    touch_ticks.push(n / 2);
                }
                let touch_amp: Vec<f64> = touch_ticks
                    .iter()
                    .map(|_| rng.gen_range(0.5..1.5))
                    .collect();

                for i in 0..n {
                    let t = i as f64 * dt;
                    let tremor = tremor_amp * (std::f64::consts::TAU * tremor_f * t).sin();
                    let drift = drift_amp * (std::f64::consts::TAU * drift_f * t).sin();
                    // Sum of damped impulses from touches in the past 100 ms.
                    let mut impulse = 0.0;
                    for (&tk, &amp) in touch_ticks.iter().zip(&touch_amp) {
                        if i >= tk {
                            let dt_t = (i - tk) as f64 * dt;
                            if dt_t < 0.1 {
                                // 60 Hz ring-down, ~30 ms decay constant.
                                impulse += amp
                                    * (-dt_t / 0.03).exp()
                                    * (std::f64::consts::TAU * 60.0 * dt_t).cos();
                            }
                        }
                    }
                    let a = [
                        0.6 * tremor + 0.8 * impulse + 0.3 * drift,
                        0.8 * tremor + 0.5 * impulse + 0.4 * drift,
                        GRAVITY + 0.4 * tremor + impulse,
                    ];
                    accel.push([
                        a[0] + rng.gen_range(-accel_noise..accel_noise),
                        a[1] + rng.gen_range(-accel_noise..accel_noise),
                        a[2] + rng.gen_range(-accel_noise..accel_noise),
                    ]);
                    let g = [
                        0.02 * tremor + 0.05 * impulse + 0.01 * drift,
                        0.03 * tremor + 0.04 * impulse,
                        0.01 * tremor + 0.02 * impulse + 0.02 * drift,
                    ];
                    gyro.push([
                        g[0] + rng.gen_range(-gyro_noise..gyro_noise),
                        g[1] + rng.gen_range(-gyro_noise..gyro_noise),
                        g[2] + rng.gen_range(-gyro_noise..gyro_noise),
                    ]);
                }
            }
        }
        ImuTrace { accel, gyro }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn std_dev(vals: impl Iterator<Item = f64>) -> f64 {
        let v: Vec<f64> = vals.collect();
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    }

    #[test]
    fn sample_count_matches_duration() {
        let t = ImuTrace::synthesize(MotionKind::Resting, 1000, 0);
        assert_eq!(t.len(), 250);
        assert!((t.duration_secs() - 1.0).abs() < 1e-9);
        assert_eq!(t.accel.len(), t.gyro.len());
    }

    #[test]
    fn resting_trace_is_quiet() {
        let t = ImuTrace::synthesize(MotionKind::Resting, 1000, 1);
        let sx = std_dev(t.accel.iter().map(|a| a[0]));
        assert!(sx < 0.01, "resting x-accel std {sx}");
        // Gravity on z.
        let mz = t.accel.iter().map(|a| a[2]).sum::<f64>() / t.len() as f64;
        assert!((mz - 9.81).abs() < 0.01);
    }

    #[test]
    fn human_trace_is_much_noisier_than_resting() {
        let h = ImuTrace::synthesize(MotionKind::HumanTouch, 1000, 2);
        let r = ImuTrace::synthesize(MotionKind::Resting, 1000, 2);
        let sh = std_dev(h.accel.iter().map(|a| a[0]));
        let sr = std_dev(r.accel.iter().map(|a| a[0]));
        assert!(sh > 10.0 * sr, "human std {sh} vs resting {sr}");
        let gh = std_dev(h.gyro.iter().map(|g| g[0]));
        let gr = std_dev(r.gyro.iter().map(|g| g[0]));
        assert!(gh > 5.0 * gr, "human gyro std {gh} vs resting {gr}");
    }

    #[test]
    fn human_trace_always_contains_a_touch_impulse() {
        // Peak |accel z - g| should exceed the tremor level in every seed.
        for seed in 0..20 {
            let t = ImuTrace::synthesize(MotionKind::HumanTouch, 600, seed);
            let peak = t
                .accel
                .iter()
                .map(|a| (a[2] - 9.81).abs())
                .fold(0.0, f64::max);
            assert!(peak > 0.2, "seed {seed}: peak {peak}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 7);
        let b = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 7);
        assert_eq!(a.accel, b.accel);
        assert_eq!(a.gyro, b.gyro);
        let c = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 8);
        assert_ne!(a.accel, c.accel);
    }

    #[test]
    fn labels() {
        assert_eq!(MotionKind::HumanTouch.label(), 1);
        assert_eq!(MotionKind::Resting.label(), 0);
        assert_eq!(MotionKind::SyntheticSway.label(), 0);
    }
}
