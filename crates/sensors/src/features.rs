//! 48-feature extraction from an IMU trace (§5.4: "the inputs are 48
//! features extracted from the gyroscope and accelerometer").
//!
//! Layout: 2 sensors × 3 axes × 8 statistics = 48 features. The statistics
//! per axis are mean, standard deviation, min, max, range, RMS, skewness,
//! and kurtosis — the standard zkSENSE-style time-domain feature set.

use crate::imu::ImuTrace;

/// Number of extracted features.
pub const FEATURE_COUNT: usize = 48;

const STATS: [&str; 8] = ["mean", "std", "min", "max", "range", "rms", "skew", "kurt"];

/// Names of the 48 features, aligned with [`extract_features`] output.
pub fn feature_names() -> Vec<String> {
    let mut names = Vec::with_capacity(FEATURE_COUNT);
    for sensor in ["accel", "gyro"] {
        for axis in ["x", "y", "z"] {
            for stat in STATS {
                names.push(format!("{sensor}-{axis}-{stat}"));
            }
        }
    }
    names
}

fn axis_stats(values: impl Iterator<Item = f64>, out: &mut Vec<f64>) {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        out.extend_from_slice(&[0.0; 8]);
        return;
    }
    let n = v.len() as f64;
    let mean = v.iter().sum::<f64>() / n;
    let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let std = var.sqrt();
    let min = v.iter().copied().fold(f64::INFINITY, f64::min);
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let rms = (v.iter().map(|x| x * x).sum::<f64>() / n).sqrt();
    let (skew, kurt) = if std > 1e-12 {
        let m3 = v.iter().map(|x| ((x - mean) / std).powi(3)).sum::<f64>() / n;
        let m4 = v.iter().map(|x| ((x - mean) / std).powi(4)).sum::<f64>() / n;
        (m3, m4 - 3.0) // excess kurtosis
    } else {
        (0.0, 0.0)
    };
    out.extend_from_slice(&[mean, std, min, max, max - min, rms, skew, kurt]);
}

/// Extract the 48-dimensional feature vector from a trace.
pub fn extract_features(trace: &ImuTrace) -> Vec<f64> {
    let mut out = Vec::with_capacity(FEATURE_COUNT);
    for axis in 0..3 {
        axis_stats(trace.accel.iter().map(|a| a[axis]), &mut out);
    }
    for axis in 0..3 {
        axis_stats(trace.gyro.iter().map(|g| g[axis]), &mut out);
    }
    debug_assert_eq!(out.len(), FEATURE_COUNT);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imu::MotionKind;

    #[test]
    fn names_and_count_agree() {
        let names = feature_names();
        assert_eq!(names.len(), FEATURE_COUNT);
        // All names unique.
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), FEATURE_COUNT);
        assert_eq!(names[0], "accel-x-mean");
        assert_eq!(names[47], "gyro-z-kurt");
    }

    #[test]
    fn constant_signal_stats() {
        let trace = ImuTrace {
            accel: vec![[1.0, 2.0, 3.0]; 100],
            gyro: vec![[0.0, 0.0, 0.0]; 100],
        };
        let f = extract_features(&trace);
        // accel-x: mean 1, std 0, min 1, max 1, range 0, rms 1, skew 0, kurt 0.
        assert_eq!(&f[0..8], &[1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
        // gyro axes all zero.
        assert!(f[24..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn alternating_signal_stats() {
        // +1/-1 alternating: mean 0, std 1, rms 1, range 2, kurtosis -2.
        let accel: Vec<[f64; 3]> = (0..100)
            .map(|i| [if i % 2 == 0 { 1.0 } else { -1.0 }, 0.0, 0.0])
            .collect();
        let trace = ImuTrace {
            accel,
            gyro: vec![[0.0; 3]; 100],
        };
        let f = extract_features(&trace);
        assert!((f[0] - 0.0).abs() < 1e-12); // mean
        assert!((f[1] - 1.0).abs() < 1e-12); // std
        assert_eq!(f[2], -1.0); // min
        assert_eq!(f[3], 1.0); // max
        assert_eq!(f[4], 2.0); // range
        assert!((f[5] - 1.0).abs() < 1e-12); // rms
        assert!((f[6]).abs() < 1e-12); // skew
        assert!((f[7] + 2.0).abs() < 1e-12); // excess kurtosis
    }

    #[test]
    fn empty_trace_yields_zeros() {
        let f = extract_features(&ImuTrace::default());
        assert_eq!(f, vec![0.0; FEATURE_COUNT]);
    }

    #[test]
    fn human_and_resting_features_differ_strongly() {
        let h = extract_features(&ImuTrace::synthesize(MotionKind::HumanTouch, 1000, 0));
        let r = extract_features(&ImuTrace::synthesize(MotionKind::Resting, 1000, 0));
        // accel-x std (index 1) should be far larger for human.
        assert!(h[1] > 10.0 * r[1]);
        // range too (index 4).
        assert!(h[4] > 10.0 * r[4]);
    }
}
