//! Property tests for histogram correctness and exposition integrity.
//!
//! The histogram invariants pinned here are what every stage-latency
//! number in the proxy's dashboards rests on:
//!
//! - bucket boundaries are monotone and tile the `u64` line exactly;
//! - every recorded value lands in the bucket whose bounds contain it;
//! - quantile estimates are within one bucket width of the exact order
//!   statistic (and exact below 16, where buckets have width 1).

use fiat_telemetry::{Histogram, Journal, MetricRegistry};
use proptest::prelude::*;

/// Exact order statistic matching `Histogram::quantile`'s rank rule.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The width of the bucket a value falls into: 1 below 16, then one
/// sixteenth of the enclosing power of two.
fn bucket_width(v: u64) -> u64 {
    if v < 16 {
        1
    } else {
        1u64 << (63 - v.leading_zeros() - 4)
    }
}

proptest! {
    #[test]
    fn recorded_values_are_fully_accounted(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let h = Histogram::new();
        let mut sum = 0u128;
        for &v in &values {
            h.record(v);
            sum += v as u128;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), sum as u64); // u64 wrap matches fetch_add semantics
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        // The cumulative bucket series ends at the total count and is
        // strictly monotone in both bound and count.
        let buckets = h.cumulative_buckets();
        prop_assert_eq!(buckets.last().unwrap().1, values.len() as u64);
        for w in buckets.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "bounds monotone");
            prop_assert!(w[0].1 < w[1].1, "cumulative counts monotone");
        }
    }

    #[test]
    fn recorded_value_lands_in_covering_bucket(v in any::<u64>()) {
        let h = Histogram::new();
        h.record(v);
        let buckets = h.cumulative_buckets();
        prop_assert_eq!(buckets.len(), 1);
        let (upper, count) = buckets[0];
        prop_assert_eq!(count, 1);
        // The inclusive upper bound covers the value and is within one
        // bucket width above it.
        prop_assert!(upper >= v);
        prop_assert!(upper - v < bucket_width(v).max(1));
    }

    #[test]
    fn quantiles_within_one_bucket_width(
        values in prop::collection::vec(0u64..1 << 48, 1..300),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile(q);
        let width = bucket_width(exact);
        prop_assert!(
            est.abs_diff(exact) <= width,
            "q={} exact={} est={} width={}",
            q, exact, est, width
        );
        // Estimates never escape the recorded range.
        prop_assert!(est >= h.min() && est <= h.max());
    }

    #[test]
    fn small_value_quantiles_are_exact(
        values in prop::collection::vec(0u64..16, 1..100),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.quantile(q), exact_quantile(&sorted, q));
    }

    #[test]
    fn journal_keeps_exactly_the_tail(
        cap in 1usize..32,
        items in prop::collection::vec(any::<u32>(), 0..100),
    ) {
        let j = Journal::new(cap);
        for &i in &items {
            j.push(i);
        }
        let keep = items.len().min(cap);
        prop_assert_eq!(j.recent(), items[items.len() - keep..].to_vec());
        prop_assert_eq!(j.total_pushed(), items.len() as u64);
        prop_assert_eq!(j.evicted(), (items.len() - keep) as u64);
    }

    #[test]
    fn json_exposition_balanced_for_arbitrary_label_values(
        label in "[ -~]{0,24}",
        v in any::<u64>(),
    ) {
        let reg = MetricRegistry::new();
        reg.counter("c_total", &[("k", &label)]).add(v);
        reg.histogram("h_us", &[("k", &label)]).record(v);
        let json = reg.render_json();
        // Balanced structure outside string literals, honoring escapes.
        let (mut depth, mut in_str, mut escaped) = (0i64, false, false);
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            prop_assert!(depth >= 0);
        }
        prop_assert_eq!(depth, 0);
        prop_assert!(!in_str);
    }
}
