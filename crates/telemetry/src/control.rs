//! Metrics for the proxy cluster control plane (`fiat-control`).
//!
//! The control plane owns the home lifecycle the paper hand-waves:
//! enrollment, ticket-epoch key rotation, snapshot/restore rebalancing,
//! and the degraded mode the proxy drops into when the control plane is
//! unreachable. Each of those has a counter family here so lifecycle
//! regressions surface on the same dashboards as the decision path:
//!
//! - `fiat_control_enrollments_total{result=}` — enrollment attempts, by
//!   outcome (`accepted` / `rejected`).
//! - `fiat_control_epoch_rotations_total` — ticket-epoch rotations
//!   driven by the key-lifecycle manager.
//! - `fiat_control_epochs_retired_total` — epochs retired by the
//!   manager's bounded-window schedule (the quic layer keeps its own
//!   count of what actually dropped out of the replay store).
//! - `fiat_control_outages_total` — control-plane outage windows the
//!   proxy weathered in degraded mode.
//! - `fiat_control_degraded_transitions_total{state=}` — degraded-mode
//!   entries and exits (`entered` / `exited`).
//! - `fiat_control_snapshots_total{op=}` — snapshot operations
//!   (`save` / `restore`).
//! - `fiat_control_snapshot_bytes_total` — cumulative serialized
//!   snapshot bytes (a counter, not a gauge, so per-home registries keep
//!   folding additively).

use crate::metrics::{Counter, MetricRegistry};

/// Metric name for enrollment-outcome counters.
pub const CONTROL_ENROLLMENTS_TOTAL: &str = "fiat_control_enrollments_total";
/// Metric name for the epoch-rotation counter.
pub const CONTROL_EPOCH_ROTATIONS_TOTAL: &str = "fiat_control_epoch_rotations_total";
/// Metric name for the epoch-retirement counter.
pub const CONTROL_EPOCHS_RETIRED_TOTAL: &str = "fiat_control_epochs_retired_total";
/// Metric name for the outage-window counter.
pub const CONTROL_OUTAGES_TOTAL: &str = "fiat_control_outages_total";
/// Metric name for degraded-mode transition counters.
pub const CONTROL_DEGRADED_TRANSITIONS_TOTAL: &str = "fiat_control_degraded_transitions_total";
/// Metric name for snapshot-operation counters.
pub const CONTROL_SNAPSHOTS_TOTAL: &str = "fiat_control_snapshots_total";
/// Metric name for the cumulative snapshot-size counter.
pub const CONTROL_SNAPSHOT_BYTES_TOTAL: &str = "fiat_control_snapshot_bytes_total";

/// Handle bundle for recording control-plane lifecycle events.
#[derive(Debug, Clone)]
pub struct ControlMetrics {
    enroll_accepted: Counter,
    enroll_rejected: Counter,
    rotations: Counter,
    retired: Counter,
    outages: Counter,
    degraded_entered: Counter,
    degraded_exited: Counter,
    snapshot_saves: Counter,
    snapshot_restores: Counter,
    snapshot_bytes: Counter,
}

impl ControlMetrics {
    /// Register descriptions and resolve every counter.
    pub fn new(registry: &MetricRegistry) -> Self {
        registry.describe(
            CONTROL_ENROLLMENTS_TOTAL,
            "Device/phone enrollment attempts, by outcome.",
        );
        registry.describe(
            CONTROL_EPOCH_ROTATIONS_TOTAL,
            "Session-ticket epoch rotations performed by the key-lifecycle manager.",
        );
        registry.describe(
            CONTROL_EPOCHS_RETIRED_TOTAL,
            "Ticket epochs retired on the bounded-window schedule.",
        );
        registry.describe(
            CONTROL_OUTAGES_TOTAL,
            "Control-plane outage windows weathered in degraded mode.",
        );
        registry.describe(
            CONTROL_DEGRADED_TRANSITIONS_TOTAL,
            "Degraded-mode transitions, by direction.",
        );
        registry.describe(CONTROL_SNAPSHOTS_TOTAL, "Home snapshot operations, by op.");
        registry.describe(
            CONTROL_SNAPSHOT_BYTES_TOTAL,
            "Cumulative serialized snapshot bytes.",
        );
        Self {
            enroll_accepted: registry.counter(CONTROL_ENROLLMENTS_TOTAL, &[("result", "accepted")]),
            enroll_rejected: registry.counter(CONTROL_ENROLLMENTS_TOTAL, &[("result", "rejected")]),
            rotations: registry.counter(CONTROL_EPOCH_ROTATIONS_TOTAL, &[]),
            retired: registry.counter(CONTROL_EPOCHS_RETIRED_TOTAL, &[]),
            outages: registry.counter(CONTROL_OUTAGES_TOTAL, &[]),
            degraded_entered: registry
                .counter(CONTROL_DEGRADED_TRANSITIONS_TOTAL, &[("state", "entered")]),
            degraded_exited: registry
                .counter(CONTROL_DEGRADED_TRANSITIONS_TOTAL, &[("state", "exited")]),
            snapshot_saves: registry.counter(CONTROL_SNAPSHOTS_TOTAL, &[("op", "save")]),
            snapshot_restores: registry.counter(CONTROL_SNAPSHOTS_TOTAL, &[("op", "restore")]),
            snapshot_bytes: registry.counter(CONTROL_SNAPSHOT_BYTES_TOTAL, &[]),
        }
    }

    /// Record an enrollment attempt.
    pub fn record_enrollment(&self, accepted: bool) {
        if accepted {
            self.enroll_accepted.inc();
        } else {
            self.enroll_rejected.inc();
        }
    }

    /// Record one epoch rotation.
    pub fn record_rotation(&self) {
        self.rotations.inc();
    }

    /// Record `n` epochs retired.
    pub fn record_retired(&self, n: u64) {
        if n > 0 {
            self.retired.add(n);
        }
    }

    /// Record one control-plane outage window.
    pub fn record_outage(&self) {
        self.outages.inc();
    }

    /// Record a degraded-mode transition.
    pub fn record_degraded(&self, entered: bool) {
        if entered {
            self.degraded_entered.inc();
        } else {
            self.degraded_exited.inc();
        }
    }

    /// Record a snapshot save of `bytes` serialized bytes.
    pub fn record_snapshot_save(&self, bytes: u64) {
        self.snapshot_saves.inc();
        self.snapshot_bytes.add(bytes);
    }

    /// Record a snapshot restore.
    pub fn record_snapshot_restore(&self) {
        self.snapshot_restores.inc();
    }

    /// Accepted enrollments so far.
    pub fn enrollment_accepted_count(&self) -> u64 {
        self.enroll_accepted.get()
    }

    /// Rejected enrollments so far.
    pub fn enrollment_rejected_count(&self) -> u64 {
        self.enroll_rejected.get()
    }

    /// Rotations so far.
    pub fn rotation_count(&self) -> u64 {
        self.rotations.get()
    }

    /// Epochs retired so far.
    pub fn retired_count(&self) -> u64 {
        self.retired.get()
    }

    /// Outage windows so far.
    pub fn outage_count(&self) -> u64 {
        self.outages.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_lifecycle_counters() {
        let registry = MetricRegistry::new();
        let m = ControlMetrics::new(&registry);
        m.record_enrollment(true);
        m.record_enrollment(true);
        m.record_enrollment(false);
        m.record_rotation();
        m.record_retired(3);
        m.record_retired(0); // no-op
        m.record_outage();
        m.record_degraded(true);
        m.record_degraded(false);
        m.record_snapshot_save(1024);
        m.record_snapshot_restore();

        assert_eq!(m.enrollment_accepted_count(), 2);
        assert_eq!(m.enrollment_rejected_count(), 1);
        assert_eq!(m.rotation_count(), 1);
        assert_eq!(m.retired_count(), 3);
        assert_eq!(m.outage_count(), 1);

        let text = registry.render_prometheus();
        assert!(text.contains("fiat_control_enrollments_total{result=\"accepted\"} 2"));
        assert!(text.contains("fiat_control_enrollments_total{result=\"rejected\"} 1"));
        assert!(text.contains("fiat_control_epoch_rotations_total 1"));
        assert!(text.contains("fiat_control_epochs_retired_total 3"));
        assert!(text.contains("fiat_control_outages_total 1"));
        assert!(text.contains("fiat_control_degraded_transitions_total{state=\"entered\"} 1"));
        assert!(text.contains("fiat_control_snapshots_total{op=\"save\"} 1"));
        assert!(text.contains("fiat_control_snapshot_bytes_total 1024"));
    }
}
