//! Metrics for the fault-injection harness (`fiat-chaos`).
//!
//! The chaos harness perturbs the phone→proxy proof channel and measures
//! how gracefully the decision path degrades; this module gives those
//! runs a first-class metric family so robustness regressions show up on
//! the same dashboards as the decision-path counters:
//!
//! - `fiat_chaos_faults_total{kind=}` — one increment per injected
//!   fault, labelled by fault kind (`drop` / `duplicate` / `reorder` /
//!   `delay` / `corrupt` / `offline` / `sensor_unavailable`).
//! - `fiat_proof_retries_total` — proof delivery attempts beyond the
//!   first (the client's resilience budget being spent).
//! - `fiat_chaos_false_drops_total` — genuine manual events that lost
//!   packets despite an eventually-delivered proof: the harness's
//!   headline failure count, which must stay at zero with quarantine
//!   enabled at the default deadline.
//!
//! Labels are resolved on demand so fault taxonomies can grow without
//! touching this crate.

use crate::metrics::{Counter, MetricRegistry};

/// Metric name for per-kind injected-fault counters.
pub const CHAOS_FAULTS_TOTAL: &str = "fiat_chaos_faults_total";
/// Metric name for the proof-retry counter.
pub const PROOF_RETRIES_TOTAL: &str = "fiat_proof_retries_total";
/// Metric name for the false-drop counter.
pub const CHAOS_FALSE_DROPS_TOTAL: &str = "fiat_chaos_false_drops_total";

/// Handle bundle for recording chaos-run outcomes into a registry.
#[derive(Debug, Clone)]
pub struct ChaosMetrics {
    registry: MetricRegistry,
    retries: Counter,
    false_drops: Counter,
}

impl ChaosMetrics {
    /// Register descriptions and resolve the shared counters.
    pub fn new(registry: &MetricRegistry) -> Self {
        registry.describe(
            CHAOS_FAULTS_TOTAL,
            "Faults injected into the proof channel, by kind.",
        );
        registry.describe(
            PROOF_RETRIES_TOTAL,
            "Humanness-proof delivery attempts beyond the first.",
        );
        registry.describe(
            CHAOS_FALSE_DROPS_TOTAL,
            "Genuine manual events that lost packets despite an eventually-delivered proof.",
        );
        Self {
            registry: registry.clone(),
            retries: registry.counter(PROOF_RETRIES_TOTAL, &[]),
            false_drops: registry.counter(CHAOS_FALSE_DROPS_TOTAL, &[]),
        }
    }

    /// Counter for one fault kind; labels resolve on demand so callers
    /// can record kinds this crate never heard of.
    pub fn faults(&self, kind: &str) -> Counter {
        self.registry.counter(CHAOS_FAULTS_TOTAL, &[("kind", kind)])
    }

    /// Record `n` injected faults of `kind`.
    pub fn record_faults(&self, kind: &str, n: u64) {
        if n > 0 {
            self.faults(kind).add(n);
        }
    }

    /// Record proof delivery attempts beyond the first.
    pub fn record_retries(&self, n: u64) {
        self.retries.add(n);
    }

    /// Record genuine manual events falsely dropped.
    pub fn record_false_drops(&self, n: u64) {
        self.false_drops.add(n);
    }

    /// Retries recorded so far.
    pub fn retry_count(&self) -> u64 {
        self.retries.get()
    }

    /// False drops recorded so far.
    pub fn false_drop_count(&self) -> u64 {
        self.false_drops.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_faults_by_kind_and_retries() {
        let registry = MetricRegistry::new();
        let m = ChaosMetrics::new(&registry);
        m.record_faults("drop", 3);
        m.record_faults("corrupt", 1);
        m.record_faults("delay", 0); // no-op: zero is not a sample
        m.record_retries(5);
        m.record_false_drops(2);

        assert_eq!(m.faults("drop").get(), 3);
        assert_eq!(m.faults("corrupt").get(), 1);
        assert_eq!(m.faults("delay").get(), 0);
        assert_eq!(m.retry_count(), 5);
        assert_eq!(m.false_drop_count(), 2);

        let text = registry.render_prometheus();
        assert!(text.contains("fiat_chaos_faults_total{kind=\"drop\"} 3"));
        assert!(text.contains("fiat_proof_retries_total 5"));
        assert!(text.contains("fiat_chaos_false_drops_total 2"));
    }
}
