//! # fiat-telemetry — observability for the FIAT proxy decision path
//!
//! A zero-dependency measurement layer sized for a line-rate packet
//! decider on small hardware:
//!
//! - [`MetricRegistry`] — thread-safe, named [`Counter`]s, [`Gauge`]s and
//!   log-linear-bucket [`Histogram`]s (p50/p90/p99/max queries, one
//!   relaxed atomic op per update on the hot path).
//! - [`Span`] — stage-latency timing driven by a pluggable [`Clock`], so
//!   real deployments use the OS monotonic clock ([`WallClock`]) while
//!   deterministic experiments drive simulated time ([`ManualClock`]).
//! - [`Journal`] — a bounded ring buffer of recent decisions for "what
//!   just happened" debugging.
//! - [`Snapshot`] exposition — Prometheus text format and a
//!   `serde_json`-compatible JSON document, both rendered without any
//!   serialization dependency.
//! - [`AttackMetrics`] — outcome counters and a time-to-block histogram
//!   for the `fiat-attack` red-team harness.
//! - [`OracleMetrics`] — replay volume and divergence counters for the
//!   `fiat-oracle` differential decision oracle.
//! - [`ChaosMetrics`] — injected-fault, proof-retry, and false-drop
//!   counters for the `fiat-chaos` fault-injection harness.
//! - [`ControlMetrics`] — enrollment, epoch-rotation, snapshot, and
//!   degraded-mode counters for the `fiat-control` control plane.
//! - [`StateMetrics`] — bounded-state gauges + high-water marks
//!   (`fiat_state_*`) for the long-horizon soak's per-home accountant.
//!
//! ```
//! use fiat_telemetry::{ManualClock, MetricRegistry, Span};
//!
//! let reg = MetricRegistry::new();
//! let clock = ManualClock::new();
//! reg.describe("fiat_proxy_decisions_total", "Packets decided, by reason.");
//! reg.counter("fiat_proxy_decisions_total", &[("reason", "rule_hit")]).inc();
//! let stage = reg.histogram("fiat_proxy_stage_us", &[("stage", "rule_match")]);
//! {
//!     let _span = Span::enter(&stage, &clock);
//!     clock.advance_micros(12);
//! }
//! assert!(reg.render_prometheus().contains("fiat_proxy_decisions_total"));
//! assert!(reg.render_json().starts_with("{\"counters\":["));
//! ```

pub mod attack;
pub mod chaos;
pub mod clock;
pub mod control;
pub mod expose;
pub mod journal;
pub mod metrics;
pub mod oracle;
pub mod span;
pub mod state;

pub use attack::AttackMetrics;
pub use chaos::ChaosMetrics;
pub use clock::{Clock, ManualClock, WallClock};
pub use control::ControlMetrics;
pub use expose::{CounterSample, GaugeSample, HistogramSample, Snapshot};
pub use journal::Journal;
pub use metrics::{Counter, Gauge, Histogram, MetricRegistry, NUM_BUCKETS};
pub use oracle::OracleMetrics;
pub use span::Span;
pub use state::{StateMetrics, StatePair};
