//! Stage-latency spans.
//!
//! A [`Span`] measures the wall time between `enter` and `exit` (or
//! drop) on a pluggable [`Clock`] and records the elapsed microseconds
//! into a [`Histogram`]. The proxy wraps each stage of its decision path
//! in one:
//!
//! ```
//! use fiat_telemetry::{Clock, ManualClock, MetricRegistry, Span};
//!
//! let reg = MetricRegistry::new();
//! let clock = ManualClock::new();
//! let hist = reg.histogram("stage_us", &[("stage", "rule_match")]);
//! {
//!     let _span = Span::enter(&hist, &clock);
//!     clock.advance_micros(42); // ... the stage runs ...
//! } // drop records 42 µs
//! assert_eq!(hist.count(), 1);
//! assert_eq!(hist.max(), 42);
//! ```

use crate::clock::Clock;
use crate::metrics::Histogram;

/// An in-flight stage timing; records into its histogram on [`Span::exit`]
/// or drop.
#[must_use = "a span records when it is dropped or exited"]
pub struct Span<'c> {
    hist: Histogram,
    clock: &'c dyn Clock,
    start: u64,
    armed: bool,
}

impl<'c> Span<'c> {
    /// Start timing a stage against `hist` using `clock`.
    pub fn enter(hist: &Histogram, clock: &'c dyn Clock) -> Self {
        Span {
            hist: hist.clone(),
            clock,
            start: clock.now_micros(),
            armed: true,
        }
    }

    /// Elapsed microseconds so far (saturating if the clock went
    /// backwards).
    pub fn elapsed_micros(&self) -> u64 {
        self.clock.now_micros().saturating_sub(self.start)
    }

    /// Stop and record, returning the elapsed microseconds.
    pub fn exit(mut self) -> u64 {
        let us = self.elapsed_micros();
        self.hist.record(us);
        self.armed = false;
        us
    }

    /// Abandon the span without recording (e.g. on an error path that
    /// should not pollute the latency distribution).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.elapsed_micros());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn span_records_on_drop() {
        let clock = ManualClock::new();
        let h = Histogram::new();
        {
            let _s = Span::enter(&h, &clock);
            clock.advance_micros(100);
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn span_exit_returns_elapsed() {
        let clock = ManualClock::new();
        let h = Histogram::new();
        let s = Span::enter(&h, &clock);
        clock.advance_micros(7);
        assert_eq!(s.exit(), 7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 7);
    }

    #[test]
    fn span_cancel_records_nothing() {
        let clock = ManualClock::new();
        let h = Histogram::new();
        let s = Span::enter(&h, &clock);
        clock.advance_micros(5);
        s.cancel();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn backwards_clock_saturates_to_zero() {
        let clock = ManualClock::new();
        clock.set_micros(1000);
        let h = Histogram::new();
        let s = Span::enter(&h, &clock);
        clock.set_micros(500);
        assert_eq!(s.exit(), 0);
    }

    #[test]
    fn nested_spans_record_independently() {
        let clock = ManualClock::new();
        let outer = Histogram::new();
        let inner = Histogram::new();
        {
            let _o = Span::enter(&outer, &clock);
            clock.advance_micros(10);
            {
                let _i = Span::enter(&inner, &clock);
                clock.advance_micros(5);
            }
            clock.advance_micros(10);
        }
        assert_eq!(inner.max(), 5);
        assert_eq!(outer.max(), 25);
    }
}
