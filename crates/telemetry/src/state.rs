//! Bounded-state gauges for the long-horizon soak (`fiat-chaos`).
//!
//! The proxy is designed to run for months on a home gateway, so every
//! state machine it owns must have a provable ceiling. This module gives
//! the state-size accountant a first-class metric family — one current
//! gauge and one high-water-mark gauge per bounded surface:
//!
//! - `fiat_state_rules` / `fiat_state_rules_hwm` — live rule-table
//!   entries (capped by LRU eviction).
//! - `fiat_state_quarantine_records` / `_hwm` — concurrent
//!   pending-verdict quarantine records (capped by oldest-deadline-first
//!   demotion).
//! - `fiat_state_quarantine_held` / `_hwm` — packets held across all
//!   quarantine records.
//! - `fiat_state_audit_entries` / `_hwm` — in-memory audit chain length
//!   (capped by checkpointed truncation).
//!
//! In a fleet these are sampled per home and the registry keeps the max
//! across homes via [`crate::Gauge::set_max`], so the exported value is
//! "worst home in the fleet" — the number the memory budget must cover.

use crate::metrics::{Gauge, MetricRegistry};

/// Metric name for live rule-table entries.
pub const STATE_RULES: &str = "fiat_state_rules";
/// Metric name for concurrent quarantine records.
pub const STATE_QUARANTINE_RECORDS: &str = "fiat_state_quarantine_records";
/// Metric name for packets held across quarantine records.
pub const STATE_QUARANTINE_HELD: &str = "fiat_state_quarantine_held";
/// Metric name for in-memory audit chain length.
pub const STATE_AUDIT_ENTRIES: &str = "fiat_state_audit_entries";

/// One current/high-water gauge pair.
#[derive(Debug, Clone)]
pub struct StatePair {
    current: Gauge,
    hwm: Gauge,
}

impl StatePair {
    fn new(registry: &MetricRegistry, name: &str, help: &str) -> Self {
        let hwm_name = format!("{name}_hwm");
        registry.describe(name, help);
        registry.describe(&hwm_name, &format!("High-water mark of {name}."));
        Self {
            current: registry.gauge(name, &[]),
            hwm: registry.gauge(&hwm_name, &[]),
        }
    }

    /// Record a sample: sets the current gauge, raises the high-water
    /// mark if exceeded.
    pub fn sample(&self, v: i64) {
        self.current.set(v);
        self.hwm.set_max(v);
    }

    /// Current value.
    pub fn current(&self) -> i64 {
        self.current.get()
    }

    /// High-water mark so far.
    pub fn high_water(&self) -> i64 {
        self.hwm.get()
    }
}

/// Handle bundle for the per-home bounded-state accountant.
#[derive(Debug, Clone)]
pub struct StateMetrics {
    /// Live rule-table entries.
    pub rules: StatePair,
    /// Concurrent pending-verdict quarantine records.
    pub quarantine_records: StatePair,
    /// Packets held across all quarantine records.
    pub quarantine_held: StatePair,
    /// In-memory audit chain length.
    pub audit_entries: StatePair,
}

impl StateMetrics {
    /// Register descriptions and resolve all gauge pairs.
    pub fn new(registry: &MetricRegistry) -> Self {
        Self {
            rules: StatePair::new(
                registry,
                STATE_RULES,
                "Live rule-table entries (LRU-capped).",
            ),
            quarantine_records: StatePair::new(
                registry,
                STATE_QUARANTINE_RECORDS,
                "Concurrent pending-verdict quarantine records (demotion-capped).",
            ),
            quarantine_held: StatePair::new(
                registry,
                STATE_QUARANTINE_HELD,
                "Packets held across all quarantine records.",
            ),
            audit_entries: StatePair::new(
                registry,
                STATE_AUDIT_ENTRIES,
                "In-memory audit chain length (truncation-capped).",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_track_current_and_high_water() {
        let registry = MetricRegistry::new();
        let m = StateMetrics::new(&registry);
        m.rules.sample(10);
        m.rules.sample(40);
        m.rules.sample(7);
        assert_eq!(m.rules.current(), 7);
        assert_eq!(m.rules.high_water(), 40);

        m.quarantine_held.sample(3);
        assert_eq!(m.quarantine_held.high_water(), 3);

        let text = registry.render_prometheus();
        assert!(text.contains("fiat_state_rules 7"));
        assert!(text.contains("fiat_state_rules_hwm 40"));
        assert!(text.contains("fiat_state_quarantine_held 3"));
        assert!(text.contains("fiat_state_audit_entries 0"));
    }

    #[test]
    fn gauge_set_max_never_lowers() {
        let g = Gauge::new();
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }
}
