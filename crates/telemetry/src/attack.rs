//! Metrics for the adversarial red-team harness (`fiat-attack`).
//!
//! The harness replays attacker strategies against a live proxy and
//! scores each run; this module gives those runs a first-class metric
//! family so security regressions show up on the same dashboards as the
//! decision-path counters:
//!
//! - `fiat_attack_runs_total{strategy=,outcome=}` — one increment per
//!   completed attack run, labelled by strategy name and scored outcome
//!   (`blocked` / `allowed` / `detected`).
//! - `fiat_attack_time_to_block_ms` — histogram of time from the first
//!   attack packet to the proxy's first blocking decision, for runs that
//!   were blocked.
//!
//! Labels are resolved on demand so strategy sets can grow without
//! touching this crate.

use crate::metrics::{Counter, Histogram, MetricRegistry};

/// Metric name for per-run outcome counters.
pub const ATTACK_RUNS_TOTAL: &str = "fiat_attack_runs_total";
/// Metric name for the time-to-block histogram (milliseconds).
pub const ATTACK_TIME_TO_BLOCK_MS: &str = "fiat_attack_time_to_block_ms";

/// Handle bundle for recording red-team run outcomes into a registry.
#[derive(Debug, Clone)]
pub struct AttackMetrics {
    registry: MetricRegistry,
    time_to_block: Histogram,
}

impl AttackMetrics {
    /// Register descriptions and resolve the shared histogram.
    pub fn new(registry: &MetricRegistry) -> Self {
        registry.describe(
            ATTACK_RUNS_TOTAL,
            "Red-team attack runs, by strategy and scored outcome.",
        );
        registry.describe(
            ATTACK_TIME_TO_BLOCK_MS,
            "Time from first attack packet to first blocking decision (ms).",
        );
        Self {
            registry: registry.clone(),
            time_to_block: registry.histogram(ATTACK_TIME_TO_BLOCK_MS, &[]),
        }
    }

    /// Counter for one (strategy, outcome) cell; labels resolve on
    /// demand so callers can record strategies this crate never heard
    /// of.
    pub fn runs(&self, strategy: &str, outcome: &str) -> Counter {
        self.registry.counter(
            ATTACK_RUNS_TOTAL,
            &[("strategy", strategy), ("outcome", outcome)],
        )
    }

    /// Record one completed run. `time_to_block_ms` is only meaningful
    /// (and only recorded) for blocked runs.
    pub fn record(&self, strategy: &str, outcome: &str, time_to_block_ms: Option<u64>) {
        self.runs(strategy, outcome).inc();
        if let Some(ms) = time_to_block_ms {
            self.time_to_block.record(ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_runs_by_strategy_and_outcome() {
        let registry = MetricRegistry::new();
        let m = AttackMetrics::new(&registry);
        m.record("replay", "blocked", Some(40));
        m.record("replay", "blocked", Some(60));
        m.record("mimicry", "allowed", None);
        m.record("audit-tamper", "detected", None);

        assert_eq!(m.runs("replay", "blocked").get(), 2);
        assert_eq!(m.runs("mimicry", "allowed").get(), 1);
        assert_eq!(m.runs("audit-tamper", "detected").get(), 1);
        assert_eq!(m.runs("replay", "allowed").get(), 0);

        let text = registry.render_prometheus();
        assert!(
            text.contains("fiat_attack_runs_total{outcome=\"blocked\",strategy=\"replay\"} 2")
                || text
                    .contains("fiat_attack_runs_total{strategy=\"replay\",outcome=\"blocked\"} 2")
        );
        assert!(text.contains("fiat_attack_time_to_block_ms"));
    }

    #[test]
    fn time_to_block_only_recorded_when_present() {
        let registry = MetricRegistry::new();
        let m = AttackMetrics::new(&registry);
        m.record("gap-evasion", "blocked", Some(12_000));
        m.record("mimicry", "allowed", None);
        let h = registry.histogram(ATTACK_TIME_TO_BLOCK_MS, &[]);
        assert_eq!(h.count(), 1);
    }
}
