//! Bounded ring-buffer journal of recent events.
//!
//! Counters tell the operator *how often*; the journal tells them *what,
//! most recently*. It keeps the last `capacity` entries, evicting the
//! oldest, and counts what it has evicted so a reader can tell whether
//! the window is complete.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct JournalState<T> {
    buf: VecDeque<T>,
    capacity: usize,
    total: u64,
}

/// A thread-safe, bounded, most-recent-first-evicting event buffer.
/// Clones share the same underlying buffer.
#[derive(Debug, Clone)]
pub struct Journal<T> {
    state: Arc<Mutex<JournalState<T>>>,
}

impl<T> Journal<T> {
    /// A journal holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Journal {
            state: Arc::new(Mutex::new(JournalState {
                buf: VecDeque::with_capacity(capacity),
                capacity,
                total: 0,
            })),
        }
    }

    /// Append an entry, evicting the oldest when full.
    pub fn push(&self, item: T) {
        let mut s = self.state.lock().unwrap();
        if s.buf.len() == s.capacity {
            s.buf.pop_front();
        }
        s.buf.push_back(item);
        s.total += 1;
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().buf.len()
    }

    /// Whether the journal holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entries held.
    pub fn capacity(&self) -> usize {
        self.state.lock().unwrap().capacity
    }

    /// Entries ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.state.lock().unwrap().total
    }

    /// Entries evicted to make room.
    pub fn evicted(&self) -> u64 {
        let s = self.state.lock().unwrap();
        s.total - s.buf.len() as u64
    }
}

impl<T: Clone> Journal<T> {
    /// The retained entries, oldest first.
    pub fn recent(&self) -> Vec<T> {
        self.state.lock().unwrap().buf.iter().cloned().collect()
    }

    /// The most recent entry, if any.
    pub fn last(&self) -> Option<T> {
        self.state.lock().unwrap().buf.back().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_up_to_capacity() {
        let j = Journal::new(3);
        for i in 0..5 {
            j.push(i);
        }
        assert_eq!(j.recent(), vec![2, 3, 4]);
        assert_eq!(j.last(), Some(4));
        assert_eq!(j.len(), 3);
        assert_eq!(j.capacity(), 3);
        assert_eq!(j.total_pushed(), 5);
        assert_eq!(j.evicted(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let j = Journal::new(0);
        j.push("a");
        j.push("b");
        assert_eq!(j.recent(), vec!["b"]);
        assert_eq!(j.capacity(), 1);
    }

    #[test]
    fn empty_journal() {
        let j: Journal<u8> = Journal::new(4);
        assert!(j.is_empty());
        assert_eq!(j.recent(), Vec::<u8>::new());
        assert_eq!(j.last(), None);
        assert_eq!(j.evicted(), 0);
    }

    #[test]
    fn clones_share_the_buffer() {
        let j = Journal::new(2);
        let j2 = j.clone();
        j.push(1);
        j2.push(2);
        assert_eq!(j.recent(), vec![1, 2]);
    }

    #[test]
    fn concurrent_pushes_account_for_everything() {
        let j = Journal::new(64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let j = j.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        j.push(t * 100 + i);
                    }
                });
            }
        });
        assert_eq!(j.total_pushed(), 400);
        assert_eq!(j.len(), 64);
        assert_eq!(j.evicted(), 336);
    }
}
