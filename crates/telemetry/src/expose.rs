//! Exposition: point-in-time snapshots rendered as Prometheus text or
//! JSON.
//!
//! Both formats are generated without any serialization dependency. The
//! JSON is plain RFC 8259 output (objects with sorted, deterministic
//! ordering) so `serde_json` — or any other reader — parses it directly;
//! the text format follows the Prometheus exposition conventions
//! (`# HELP`/`# TYPE` headers, `_bucket`/`_sum`/`_count` histogram
//! series with cumulative inclusive `le` bounds).

use std::collections::BTreeMap;
use std::fmt::Write;

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Counter value.
    pub value: u64,
}

/// One gauge's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Gauge value.
    pub value: i64,
}

/// One histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact smallest sample (0 when empty).
    pub min: u64,
    /// Exact largest sample (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Non-empty buckets as `(inclusive_upper_bound, cumulative_count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time copy of a registry's metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All counters, ordered by name then labels.
    pub counters: Vec<CounterSample>,
    /// All gauges, ordered by name then labels.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, ordered by name then labels.
    pub histograms: Vec<HistogramSample>,
    /// Help text per metric name.
    pub help: BTreeMap<String, String>,
}

/// Escape a string for a JSON string literal (quotes not included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

/// Escape a label value for the Prometheus text format: backslash,
/// double-quote, and line feed, in that order (escaping `\` first keeps
/// the later passes from re-escaping their own output).
fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape `# HELP` text for the Prometheus text format. HELP lines use a
/// smaller alphabet than label values: only backslash and line feed are
/// escaped (quotes stay literal).
fn prom_help_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", prom_escape(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

impl Snapshot {
    /// Render as Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_header: Option<(String, &str)> = None;
        let mut header =
            |out: &mut String, name: &str, kind: &'static str, help: &BTreeMap<String, String>| {
                if last_header
                    .as_ref()
                    .is_some_and(|(n, k)| n == name && *k == kind)
                {
                    return;
                }
                if let Some(h) = help.get(name) {
                    let _ = writeln!(out, "# HELP {name} {}", prom_help_escape(h));
                }
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_header = Some((name.to_string(), kind));
            };

        for c in &self.counters {
            header(&mut out, &c.name, "counter", &self.help);
            let _ = writeln!(
                out,
                "{}{} {}",
                c.name,
                prom_labels(&c.labels, None),
                c.value
            );
        }
        for g in &self.gauges {
            header(&mut out, &g.name, "gauge", &self.help);
            let _ = writeln!(
                out,
                "{}{} {}",
                g.name,
                prom_labels(&g.labels, None),
                g.value
            );
        }
        for h in &self.histograms {
            header(&mut out, &h.name, "histogram", &self.help);
            for (le, cum) in &h.buckets {
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    h.name,
                    prom_labels(&h.labels, Some(("le", &le.to_string()))),
                    cum
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                h.name,
                prom_labels(&h.labels, Some(("le", "+Inf"))),
                h.count
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                h.name,
                prom_labels(&h.labels, None),
                h.sum
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                h.name,
                prom_labels(&h.labels, None),
                h.count
            );
        }
        out
    }

    /// Render as a JSON document:
    ///
    /// ```json
    /// {
    ///   "counters":   [{"name":"...","labels":{...},"value":0}],
    ///   "gauges":     [{"name":"...","labels":{...},"value":0}],
    ///   "histograms": [{"name":"...","labels":{...},"count":0,"sum":0,
    ///                   "min":0,"max":0,"p50":0,"p90":0,"p99":0,
    ///                   "buckets":[[15,3],[31,9]]}]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                json_escape(&c.name),
                json_labels(&c.labels),
                c.value
            );
        }
        out.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                json_escape(&g.name),
                json_labels(&g.labels),
                g.value
            );
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":{},\"count\":{},\"sum\":{},\
                 \"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                json_escape(&h.name),
                json_labels(&h.labels),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p90,
                h.p99,
            );
            for (j, (le, cum)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{le},{cum}]");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricRegistry;

    fn sample_registry() -> MetricRegistry {
        let r = MetricRegistry::new();
        r.describe("decisions_total", "Packets decided, by reason.");
        r.counter("decisions_total", &[("reason", "rule_hit")])
            .add(7);
        r.counter("decisions_total", &[("reason", "bootstrap")])
            .add(2);
        r.gauge("rules", &[]).set(5);
        let h = r.histogram("stage_us", &[("stage", "classify")]);
        h.record(3);
        h.record(20);
        h.record(20);
        r
    }

    #[test]
    fn prometheus_format_shape() {
        let text = sample_registry().render_prometheus();
        assert!(text.contains("# HELP decisions_total Packets decided, by reason."));
        assert!(text.contains("# TYPE decisions_total counter"));
        // One header for both label sets.
        assert_eq!(text.matches("# TYPE decisions_total counter").count(), 1);
        assert!(text.contains("decisions_total{reason=\"rule_hit\"} 7"));
        assert!(text.contains("decisions_total{reason=\"bootstrap\"} 2"));
        assert!(text.contains("# TYPE rules gauge"));
        assert!(text.contains("rules 5"));
        assert!(text.contains("# TYPE stage_us histogram"));
        assert!(text.contains("stage_us_bucket{stage=\"classify\",le=\"3\"} 1"));
        assert!(text.contains("stage_us_bucket{stage=\"classify\",le=\"+Inf\"} 3"));
        assert!(text.contains("stage_us_sum{stage=\"classify\"} 43"));
        assert!(text.contains("stage_us_count{stage=\"classify\"} 3"));
    }

    #[test]
    fn json_is_deterministic_and_complete() {
        let a = sample_registry().render_json();
        let b = sample_registry().render_json();
        assert_eq!(a, b);
        assert!(a.contains("\"name\":\"decisions_total\""));
        assert!(a.contains("\"labels\":{\"reason\":\"rule_hit\"},\"value\":7"));
        assert!(a.contains("\"count\":3,\"sum\":43"));
        assert!(a.contains("\"p50\":"));
        assert!(a.starts_with("{\"counters\":["));
        assert!(a.ends_with("]}"));
    }

    #[test]
    fn prometheus_label_value_escaping_golden_vectors() {
        // Golden vectors from the Prometheus exposition-format spec:
        // label values escape backslash, double-quote, and line feed.
        for (raw, escaped) in [
            ("plain", "plain"),
            ("back\\slash", "back\\\\slash"),
            ("quo\"te", "quo\\\"te"),
            ("line\nfeed", "line\\nfeed"),
            ("\\n", "\\\\n"),                 // literal backslash-n, not a newline
            ("\\\"\n", "\\\\\\\"\\n"),        // all three, adjacent
            ("tab\tand\rcr", "tab\tand\rcr"), // only \ " \n are special
        ] {
            assert_eq!(prom_escape(raw), escaped, "raw = {raw:?}");
        }
        // End to end: the escaped value appears inside the series line.
        let r = MetricRegistry::new();
        r.counter("c", &[("k", "a\\b\"c\nd")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("c{k=\"a\\\\b\\\"c\\nd\"} 1"), "{text}");
        // The rendered document stays one-series-per-line.
        assert_eq!(text.lines().count(), 2); // TYPE header + series
    }

    #[test]
    fn prometheus_help_escaping() {
        // HELP text escapes backslash and line feed only; quotes are
        // literal. A multi-line help string must still render as a
        // single HELP line.
        let r = MetricRegistry::new();
        r.describe("m", "line one\nline \"two\" with \\ backslash");
        r.gauge("m", &[]).set(1);
        let text = r.render_prometheus();
        assert!(
            text.contains("# HELP m line one\\nline \"two\" with \\\\ backslash\n"),
            "{text}"
        );
        assert_eq!(text.lines().count(), 3); // HELP + TYPE + series
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        let r = MetricRegistry::new();
        r.counter("c", &[("k", "quote\"backslash\\")]).inc();
        let json = r.render_json();
        assert!(json.contains("\"k\":\"quote\\\"backslash\\\\\""));
    }

    #[test]
    fn json_parses_with_a_tiny_validator() {
        // Structural sanity without a JSON dependency: balanced braces and
        // brackets outside strings, and no trailing garbage.
        let json = sample_registry().render_json();
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let r = MetricRegistry::new();
        assert_eq!(
            r.render_json(),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[]}"
        );
        assert_eq!(r.render_prometheus(), "");
    }
}
