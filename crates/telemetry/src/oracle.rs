//! Metrics for the differential decision oracle (`fiat-oracle`).
//!
//! The oracle drives a naive reference pipeline and the real proxy over
//! the same chaos-mutated traffic and compares every decision; this
//! module gives those runs a metric family so a diverging build is
//! visible on the same dashboards as the decision-path counters:
//!
//! - `fiat_oracle_packets_total` — packets replayed through both sides.
//! - `fiat_oracle_scenarios_total` — complete fuzz scenarios executed.
//! - `fiat_oracle_divergences_total{kind=}` — disagreements found,
//!   labelled by what diverged (`decision` / `stats` / `audit`). Any
//!   nonzero value here is a release blocker unless the divergence is
//!   ledgered in DESIGN.md.

use crate::metrics::{Counter, MetricRegistry};

/// Metric name for packets replayed through both implementations.
pub const ORACLE_PACKETS_TOTAL: &str = "fiat_oracle_packets_total";
/// Metric name for completed fuzz scenarios.
pub const ORACLE_SCENARIOS_TOTAL: &str = "fiat_oracle_scenarios_total";
/// Metric name for divergence counters, labelled by kind.
pub const ORACLE_DIVERGENCES_TOTAL: &str = "fiat_oracle_divergences_total";

/// Handle bundle for recording oracle runs into a registry.
#[derive(Debug, Clone)]
pub struct OracleMetrics {
    registry: MetricRegistry,
    packets: Counter,
    scenarios: Counter,
}

impl OracleMetrics {
    /// Register descriptions and resolve the unlabelled counters.
    pub fn new(registry: &MetricRegistry) -> Self {
        registry.describe(
            ORACLE_PACKETS_TOTAL,
            "Packets replayed through both the reference and real proxy.",
        );
        registry.describe(
            ORACLE_SCENARIOS_TOTAL,
            "Differential fuzz scenarios executed.",
        );
        registry.describe(
            ORACLE_DIVERGENCES_TOTAL,
            "Reference/real disagreements found, by kind.",
        );
        Self {
            registry: registry.clone(),
            packets: registry.counter(ORACLE_PACKETS_TOTAL, &[]),
            scenarios: registry.counter(ORACLE_SCENARIOS_TOTAL, &[]),
        }
    }

    /// Counter for one divergence kind; labels resolve on demand so the
    /// oracle can grow comparison dimensions without touching this
    /// crate.
    pub fn divergences(&self, kind: &str) -> Counter {
        self.registry
            .counter(ORACLE_DIVERGENCES_TOTAL, &[("kind", kind)])
    }

    /// Record one completed differential run.
    pub fn record_run(&self, packets: u64, scenarios: u64) {
        self.packets.add(packets);
        self.scenarios.add(scenarios);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_runs_and_divergences() {
        let registry = MetricRegistry::new();
        let m = OracleMetrics::new(&registry);
        m.record_run(12_000, 3);
        m.record_run(800, 1);
        m.divergences("decision").inc();
        m.divergences("audit").inc();
        m.divergences("decision").inc();

        assert_eq!(registry.counter(ORACLE_PACKETS_TOTAL, &[]).get(), 12_800);
        assert_eq!(registry.counter(ORACLE_SCENARIOS_TOTAL, &[]).get(), 4);
        assert_eq!(m.divergences("decision").get(), 2);
        assert_eq!(m.divergences("stats").get(), 0);

        let text = registry.render_prometheus();
        assert!(text.contains("fiat_oracle_packets_total 12800"));
        assert!(text.contains("fiat_oracle_divergences_total{kind=\"decision\"} 2"));
    }
}
