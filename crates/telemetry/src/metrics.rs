//! Counters, gauges, log-linear histograms, and the registry that owns
//! them.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones over atomics: instrumented code looks a metric up once, stores
//! the handle, and updates it lock-free on the hot path. The
//! [`MetricRegistry`] itself is only locked on registration and
//! exposition.
//!
//! Histograms use log-linear buckets (16 linear sub-buckets per power of
//! two, the HdrHistogram layout): relative bucket width is bounded by
//! 1/16 ≈ 6.25 %, so any quantile estimate is within one bucket width of
//! the true order statistic while the whole `u64` range fits in 976
//! buckets.

use crate::expose::{CounterSample, GaugeSample, HistogramSample, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear buckets.
const SUB_BITS: u32 = 4;
const SUBS: u64 = 1 << SUB_BITS; // 16

/// Total bucket count covering all of `u64`: 16 linear buckets below 16,
/// then 16 per octave for octaves 4..=63.
pub const NUM_BUCKETS: usize = (SUBS + (64 - SUB_BITS as u64) * SUBS) as usize;

/// Bucket index for a value (monotone in `v`).
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let o = 63 - v.leading_zeros(); // o >= SUB_BITS
        let shift = o - SUB_BITS;
        ((o - SUB_BITS) as u64 * SUBS + (v >> shift)) as usize
    }
}

/// Inclusive `(lo, hi)` value range of a bucket.
pub(crate) fn bucket_bounds(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUBS {
        (idx, idx)
    } else {
        let q = idx - SUBS;
        let octave = SUB_BITS + (q / SUBS) as u32;
        let m = SUBS + q % SUBS;
        let shift = octave - SUB_BITS;
        let lo = m << shift;
        let hi = lo + ((1u64 << shift) - 1);
        (lo, hi)
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A detached counter (not owned by any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A detached gauge (not owned by any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Raise the gauge to `v` if it is below it (high-water marks).
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A log-linear-bucket histogram of `u64` samples (typically
/// microseconds). Quantile queries are accurate to one bucket width
/// (≤ 1/16 of the value, or ±1 below 16).
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A detached histogram (not owned by any registry).
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, AtomicU64::default);
        Histogram {
            core: Arc::new(HistogramCore {
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let c = &self.core;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.core.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest recorded sample (0 when empty; exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.core.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimate of the `q`-quantile (`0.0 ..= 1.0`): the lower bound of
    /// the bucket holding the order statistic of rank `ceil(q·n)`,
    /// clamped to the exact recorded min/max. The true quantile lies in
    /// the same bucket, so the error is at most one bucket width.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (idx, &n) in counts.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let (lo, _) = bucket_bounds(idx);
                return lo.max(self.min()).min(self.max());
            }
        }
        self.max()
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram's samples into this one (bucket-wise adds;
    /// min/max tighten). Used to aggregate per-shard histograms into a
    /// fleet-wide view; merging is commutative, so the merged result does
    /// not depend on shard order.
    pub fn merge_from(&self, other: &Histogram) {
        if Arc::ptr_eq(&self.core, &other.core) {
            return; // same underlying histogram: nothing to fold in
        }
        let c = &self.core;
        let o = &other.core;
        for (dst, src) in c.buckets.iter().zip(o.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        let n = o.count.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        c.count.fetch_add(n, Ordering::Relaxed);
        c.sum
            .fetch_add(o.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        c.min
            .fetch_min(o.min.load(Ordering::Relaxed), Ordering::Relaxed);
        c.max
            .fetch_max(o.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Non-empty buckets as `(inclusive_upper_bound, cumulative_count)`
    /// pairs, in increasing bound order — the Prometheus `le` series.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, b) in self.core.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                out.push((bucket_bounds(idx).1, cum));
            }
        }
        out
    }
}

/// A metric's identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert!(valid_name(k), "invalid label key {k:?}");
                (k.to_string(), v.to_string())
            })
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && !s.starts_with(|c: char| c.is_ascii_digit())
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<MetricId, Metric>>,
    help: Mutex<BTreeMap<String, String>>,
}

/// A thread-safe collection of named metrics. Cloning shares the same
/// underlying store, so a registry can be handed to several subsystems
/// and exposed once.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create a counter. Panics if the name+labels already map to
    /// a different metric kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = MetricId::new(name, labels);
        let mut m = self.inner.metrics.lock().unwrap();
        match m
            .entry(id)
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create a gauge. Panics on kind mismatch.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = MetricId::new(name, labels);
        let mut m = self.inner.metrics.lock().unwrap();
        match m.entry(id).or_insert_with(|| Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create a histogram. Panics on kind mismatch.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let id = MetricId::new(name, labels);
        let mut m = self.inner.metrics.lock().unwrap();
        match m
            .entry(id)
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Attach help text to a metric name (shown as `# HELP` in the text
    /// exposition).
    pub fn describe(&self, name: &str, help: &str) {
        self.inner
            .help
            .lock()
            .unwrap()
            .insert(name.to_string(), help.to_string());
    }

    /// Number of registered metrics (all kinds, counting each label set).
    pub fn len(&self) -> usize {
        self.inner.metrics.lock().unwrap().len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fold every metric of `other` into this registry: counters and
    /// gauges add, histograms merge bucket-wise, help text carries over.
    /// Addition is commutative, so merging per-shard registries yields
    /// the same fleet-wide registry regardless of shard order or count.
    pub fn merge_from(&self, other: &MetricRegistry) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return; // same underlying store: nothing to fold in
        }
        // Clone the other side's map first so the two locks are never
        // held at once (no lock-order deadlock between registries).
        let other_metrics: BTreeMap<MetricId, Metric> = other.inner.metrics.lock().unwrap().clone();
        let other_help: BTreeMap<String, String> = other.inner.help.lock().unwrap().clone();
        {
            let mut metrics = self.inner.metrics.lock().unwrap();
            for (id, metric) in other_metrics {
                match metrics.entry(id.clone()).or_insert_with(|| match &metric {
                    Metric::Counter(_) => Metric::Counter(Counter::new()),
                    Metric::Gauge(_) => Metric::Gauge(Gauge::new()),
                    Metric::Histogram(_) => Metric::Histogram(Histogram::new()),
                }) {
                    Metric::Counter(c) => match &metric {
                        Metric::Counter(o) => c.add(o.get()),
                        _ => panic!("metric {:?} merged with a different kind", id.name),
                    },
                    Metric::Gauge(g) => match &metric {
                        Metric::Gauge(o) => g.add(o.get()),
                        _ => panic!("metric {:?} merged with a different kind", id.name),
                    },
                    Metric::Histogram(h) => match &metric {
                        Metric::Histogram(o) => h.merge_from(o),
                        _ => panic!("metric {:?} merged with a different kind", id.name),
                    },
                }
            }
        }
        let mut help = self.inner.help.lock().unwrap();
        for (name, text) in other_help {
            help.entry(name).or_insert(text);
        }
    }

    /// A point-in-time copy of every metric, ordered by name then labels.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.inner.metrics.lock().unwrap();
        let mut snap = Snapshot::default();
        for (id, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push(CounterSample {
                    name: id.name.clone(),
                    labels: id.labels.clone(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: id.name.clone(),
                    labels: id.labels.clone(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => snap.histograms.push(HistogramSample {
                    name: id.name.clone(),
                    labels: id.labels.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    p50: h.p50(),
                    p90: h.p90(),
                    p99: h.p99(),
                    buckets: h.cumulative_buckets(),
                }),
            }
        }
        snap.help = self.inner.help.lock().unwrap().clone();
        snap
    }

    /// Render the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// Render a JSON snapshot (parseable by any JSON reader, including
    /// `serde_json`).
    pub fn render_json(&self) -> String {
        self.snapshot().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let mut last = 0usize;
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "v={v}");
            assert!(idx < NUM_BUCKETS);
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn bucket_bounds_tile_the_line() {
        // Consecutive buckets meet exactly: hi(i) + 1 == lo(i+1).
        for idx in 0..NUM_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (lo_next, _) = bucket_bounds(idx + 1);
            assert_eq!(hi + 1, lo_next, "idx={idx}");
        }
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
        assert_eq!(bucket_bounds(0).0, 0);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let r = MetricRegistry::new();
        let c = r.counter("hits_total", &[("kind", "a")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name+labels yields the same underlying counter.
        assert_eq!(r.counter("hits_total", &[("kind", "a")]).get(), 5);
        // Different labels are distinct.
        assert_eq!(r.counter("hits_total", &[("kind", "b")]).get(), 0);

        let g = r.gauge("open", &[]);
        g.set(3);
        g.dec();
        g.add(10);
        assert_eq!(g.get(), 12);
        assert_eq!(r.len(), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = MetricRegistry::new();
        r.counter("x", &[]);
        r.gauge("x", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_rejected() {
        let r = MetricRegistry::new();
        r.counter("bad name", &[]);
    }

    #[test]
    fn histogram_quantiles_exact_small_values() {
        // Values below 16 sit in width-1 buckets: quantiles are exact.
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 55);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        assert_eq!(h.p50(), 5);
        assert_eq!(h.p90(), 9);
        assert_eq!(h.p99(), 10);
        assert_eq!(h.quantile(1.0), 10);
    }

    #[test]
    fn histogram_quantile_within_one_bucket_width() {
        // Deterministic LCG samples across several octaves.
        let mut x = 0x2545f4914f6cdd1du64;
        let mut values = Vec::new();
        let h = Histogram::new();
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x >> 40; // up to ~16M
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = h.quantile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            assert!(
                est >= lo && est <= hi,
                "q={q} exact={exact} est={est} bucket=({lo},{hi})"
            );
        }
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn histogram_cumulative_buckets_increase() {
        let h = Histogram::new();
        for v in [3u64, 3, 20, 500, 500, 500, 1_000_000] {
            h.record(v);
        }
        let b = h.cumulative_buckets();
        assert_eq!(b.last().unwrap().1, 7);
        for w in b.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn histogram_merge_folds_samples() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 5, 100] {
            a.record(v);
        }
        for v in [3u64, 500, 1_000_000] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), 1 + 5 + 100 + 3 + 500 + 1_000_000);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.cumulative_buckets().last().unwrap().1, 6);
        // Merging an empty histogram is a no-op; merging a histogram with
        // itself is too (no self-doubling).
        a.merge_from(&Histogram::new());
        assert_eq!(a.count(), 6);
        let before = a.count();
        a.merge_from(&a.clone());
        assert_eq!(a.count(), before);
    }

    #[test]
    fn registry_merge_is_commutative() {
        let mk = |c1: u64, g1: i64, samples: &[u64]| {
            let r = MetricRegistry::new();
            r.counter("hits_total", &[("shard", "x")]).add(c1);
            r.counter("hits_total", &[]).add(c1 * 2);
            r.gauge("open", &[]).add(g1);
            let h = r.histogram("lat_us", &[]);
            for &s in samples {
                h.record(s);
            }
            r.describe("hits_total", "hits");
            r
        };
        let a = mk(3, 5, &[10, 20]);
        let b = mk(7, -2, &[1, 1000]);

        let ab = MetricRegistry::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let ba = MetricRegistry::new();
        ba.merge_from(&b);
        ba.merge_from(&a);

        assert_eq!(ab.render_prometheus(), ba.render_prometheus());
        assert_eq!(ab.counter("hits_total", &[("shard", "x")]).get(), 10);
        assert_eq!(ab.counter("hits_total", &[]).get(), 20);
        assert_eq!(ab.gauge("open", &[]).get(), 3);
        assert_eq!(ab.histogram("lat_us", &[]).count(), 4);
        // Sources are untouched, and merging did not alias their handles.
        ab.counter("hits_total", &[]).inc();
        assert_eq!(a.counter("hits_total", &[]).get(), 6);
        assert_eq!(b.counter("hits_total", &[]).get(), 14);
    }

    #[test]
    #[should_panic(expected = "merged with a different kind")]
    fn registry_merge_kind_mismatch_panics() {
        let a = MetricRegistry::new();
        a.counter("x", &[]);
        let b = MetricRegistry::new();
        b.gauge("x", &[]);
        a.merge_from(&b);
    }

    #[test]
    fn registry_merge_concurrent_stress() {
        // Shard threads folding into one registry concurrently — the
        // fleet collector pattern, but with every merge racing instead
        // of arriving in join order. Totals must come out exact.
        const THREADS: u64 = 8;
        const ROUNDS: u64 = 50;
        let target = MetricRegistry::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let target = &target;
                s.spawn(move || {
                    for round in 0..ROUNDS {
                        let src = MetricRegistry::new();
                        src.counter("decisions_total", &[]).add(3);
                        src.counter("decisions_total", &[("shard", "x")]).add(t);
                        src.gauge("open", &[]).add(1);
                        let h = src.histogram("lat_us", &[]);
                        h.record(t * 1000 + round + 1);
                        h.record(1);
                        target.merge_from(&src);
                    }
                });
            }
        });
        assert_eq!(
            target.counter("decisions_total", &[]).get(),
            3 * THREADS * ROUNDS
        );
        assert_eq!(
            target.counter("decisions_total", &[("shard", "x")]).get(),
            ROUNDS * (0..THREADS).sum::<u64>()
        );
        assert_eq!(target.gauge("open", &[]).get() as u64, THREADS * ROUNDS);
        let h = target.histogram("lat_us", &[]);
        assert_eq!(h.count(), 2 * THREADS * ROUNDS);
        let expected_sum: u64 = (0..THREADS)
            .flat_map(|t| (0..ROUNDS).map(move |r| t * 1000 + r + 2))
            .sum();
        assert_eq!(h.sum(), expected_sum);
        assert_eq!(h.max(), (THREADS - 1) * 1000 + ROUNDS);
        assert_eq!(h.min(), 1);
        assert_eq!(h.cumulative_buckets().last().unwrap().1, h.count());
    }

    #[test]
    fn histogram_merge_concurrent_stress() {
        // Many threads merging into the same histogram while it also
        // takes direct records; count/sum/min/max stay exact (buckets
        // are sharded atomics, merge adds per bucket).
        const THREADS: u64 = 8;
        const MERGES: u64 = 25;
        let target = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let target = target.clone();
                s.spawn(move || {
                    for m in 0..MERGES {
                        let src = Histogram::new();
                        src.record(t + 1);
                        src.record(10_000 + t * MERGES + m);
                        target.merge_from(&src);
                        target.record(5);
                    }
                });
            }
        });
        assert_eq!(target.count(), 3 * THREADS * MERGES);
        let merged_sum: u64 = (0..THREADS)
            .flat_map(|t| (0..MERGES).map(move |m| (t + 1) + 10_000 + t * MERGES + m))
            .sum();
        assert_eq!(target.sum(), merged_sum + 5 * THREADS * MERGES);
        assert_eq!(target.min(), 1);
        assert_eq!(target.max(), 10_000 + (THREADS - 1) * MERGES + MERGES - 1);
        assert_eq!(
            target.cumulative_buckets().last().unwrap().1,
            target.count()
        );
    }

    #[test]
    fn histogram_concurrent_records() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.max(), 3999);
    }
}
