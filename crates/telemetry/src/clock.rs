//! Pluggable time sources for span timing.
//!
//! The proxy runs in two worlds: real deployments measure stage latency
//! with the monotonic OS clock, while the deterministic experiments run
//! on simulated time. Both are expressed as "microseconds since an
//! arbitrary origin", so a single `u64`-returning trait covers them and
//! histograms never need to know which world produced a sample.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond clock.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since the clock's origin.
    fn now_micros(&self) -> u64;
}

/// Real wall time via [`std::time::Instant`], anchored at construction.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A manually driven clock for simulated time (`SimTime` maps 1:1 onto
/// its microsecond counter). Clones share the same underlying counter,
/// so one owner can advance time while spans observe it.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the absolute time in microseconds (monotonicity is the
    /// caller's contract; setting backwards yields zero-length spans
    /// rather than panics).
    pub fn set_micros(&self, us: u64) {
        self.micros.store(us, Ordering::Relaxed);
    }

    /// Advance the clock by `us` microseconds.
    pub fn advance_micros(&self, us: u64) {
        self.micros.fetch_add(us, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now_micros(&self) -> u64 {
        (**self).now_micros()
    }
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now_micros(&self) -> u64 {
        (**self).now_micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_shares_state_across_clones() {
        let c = ManualClock::new();
        let c2 = c.clone();
        c.set_micros(100);
        assert_eq!(c2.now_micros(), 100);
        c2.advance_micros(50);
        assert_eq!(c.now_micros(), 150);
    }

    #[test]
    fn clock_through_arc_and_ref() {
        let c: Arc<dyn Clock> = Arc::new(ManualClock::new());
        assert_eq!(c.now_micros(), 0);
        let w = WallClock::new();
        let r: &dyn Clock = &w;
        let _ = r.now_micros();
    }
}
