//! Sharded multi-home proxy runtime.
//!
//! The paper deploys one FIAT proxy per home; the ROADMAP north star is a
//! provider-scale service running millions of them. This crate
//! partitions H simulated homes across T worker threads ("shards"), each
//! shard owning the [`fiat_core::FiatProxy`] instances for the homes it
//! runs, then folds the per-home [`MetricRegistry`] snapshots and
//! [`ProxyStats`] into one fleet-wide view.
//!
//! Homes enter the fleet through the control plane: [`run_home`]
//! provisions each proxy with [`fiat_control::enroll_home`] (the mutual-
//! auth ceremony, device registration, and first session ticket), and
//! [`run_sharded_rebalancing`] exercises the control plane's home
//! migration mid-capture — snapshot, restore into a fresh registry,
//! resume — which must be invisible in the merged fleet view.
//!
//! Determinism is the design constraint: a sharded run must produce a
//! fleet view *identical* to a sequential reference run, or every
//! throughput/accuracy table built on it is suspect. Three choices make
//! that hold:
//!
//! - every home gets its **own** registry (gauges are `set()` last-writer
//!   -wins, so sharing one across homes would race); per-home registries
//!   are folded by *addition*, which is commutative and associative;
//! - each home's proxy is timed by a [`ManualClock`] that never advances,
//!   so stage-latency histograms record deterministic zero-length spans
//!   instead of wall-clock noise;
//! - work distribution never touches a home's *content*: the
//!   [`partition`] module plans a static cost-aware assignment and lets
//!   shards claim (and steal) homes through atomic cursors, so *which*
//!   shard runs a home is scheduling-dependent, but — because folding is
//!   additive — the merged view cannot be.
//!
//! PR 6's profiler showed the previous dispatch design (a feeder thread
//! round-robining homes into depth-4 `sync_channel`s) was the scaling
//! bug: one full queue stalled dispatch to **every** shard
//! (head-of-line blocking), leaving shards starved in `recv` while the
//! feeder sat blocked in `send`. Workloads are already materialized in
//! a slice, so the channels were pure overhead; the partition plan
//! replaces them with zero hand-off claims.
//!
//! [`run_sharded_probed`] is the *observed* twin of [`run_sharded`]: the
//! same plan/claim/decide/merge structure, plus per-stage time
//! accounting, steal counters, and an optional flight recorder wired
//! into the proxies through [`ProxyHook`]. It lives in separate code so
//! the unprobed runtime pays nothing — not even a branch in its claim
//! loop — when nobody is profiling.

use fiat_control::{enroll_home, restore_home, snapshot_home, DeviceSpec, HomeProvision};
use fiat_core::{
    EventClassifier, ProxyConfig, ProxyDecision, ProxyHook, ProxyStats, ProxyTelemetry,
};
use fiat_net::SimTime;
use fiat_probe::{
    AllocScope, FleetProfile, FlightRecorder, ProbeConfig, ShardProfile, ShardRecorder, Stage,
    TraceEvent, TraceKind, SEQ_ASSIGNED, SEQ_CLAIMED, SEQ_FINISHED, SEQ_FIRST_HOOK,
};
use fiat_sensors::HumannessValidator;
use fiat_telemetry::{ManualClock, MetricRegistry};
use fiat_trace::{Location, TestbedConfig, TestbedTrace};
use std::cell::Cell;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod partition;

pub use partition::{Claim, PartitionPlan};

/// Pairing secret shared by every simulated home's phone and proxy (the
/// fleet provisions every home through the real control-plane enrollment
/// ceremony, but all simulated ceremonies share one secret).
const SECRET: [u8; 32] = [0xF1; 32];

/// Nonce seed for the simulated enrollment ceremonies. Nonces never
/// influence packet decisions, so one fixed seed keeps provisioning
/// deterministic without threading per-home randomness through the
/// claim loop.
const ENROLL_SEED: u64 = 0xF1EE;

/// One simulated home: an id plus its generated capture.
pub struct HomeWorkload {
    /// Home id (dense, `0..homes`).
    pub home: u32,
    /// The home's labeled capture (trace, DNS, ground truth, devices).
    pub capture: TestbedTrace,
}

/// Estimated decide cost of one home, for the partition plan: packet
/// count is what the shard loop's work is linear in. Clamped to ≥ 1 so
/// degenerate empty homes stay claimable and countable.
pub fn home_cost(w: &HomeWorkload) -> u64 {
    (w.capture.trace.packets.len() as u64).max(1)
}

/// What one home's proxy produced.
pub struct HomeRun {
    /// Decision counters.
    pub stats: ProxyStats,
    /// The home's private metric registry.
    pub registry: MetricRegistry,
    /// Packets pushed through `on_packet`.
    pub packets: u64,
}

/// A shard's folded view of the homes it ran.
pub struct ShardOutcome {
    /// Shard index.
    pub shard: usize,
    /// Homes this shard processed (its static assignment plus steals —
    /// under load this split is scheduling-dependent; the fleet totals
    /// are not).
    pub homes: usize,
    /// Packets this shard decided.
    pub packets: u64,
    /// Folded decision counters.
    pub stats: ProxyStats,
    /// Folded metric registry.
    pub registry: MetricRegistry,
}

/// The fleet-wide merged view of a run.
pub struct FleetOutcome {
    /// Homes processed.
    pub homes: usize,
    /// Shards used (1 for the sequential reference).
    pub shards: usize,
    /// Total packets decided.
    pub packets: u64,
    /// Fleet-wide decision counters.
    pub stats: ProxyStats,
    /// Fleet-wide metric registry (per-home registries folded by
    /// addition).
    pub registry: MetricRegistry,
    /// Per-shard breakdown, in shard order.
    pub per_shard: Vec<ShardOutcome>,
}

/// Build `homes` independent home workloads. Each home gets its own
/// deterministic capture seeded from `seed` and its id, so workloads are
/// reproducible and distinct.
pub fn build_workloads(homes: usize, days: f64, seed: u64) -> Vec<HomeWorkload> {
    (0..homes)
        .map(|h| HomeWorkload {
            home: h as u32,
            capture: TestbedTrace::generate(TestbedConfig {
                location: Location::Us,
                days,
                seed: seed.wrapping_add((h as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                manual_per_day: 12.0,
                routines_per_day: 10.0,
                confusion_scale: 0.15,
            }),
        })
        .collect()
}

/// Simple-rule classifier for one device: classify by command size; ML
/// devices fall back to a size no packet carries (0), i.e. everything is
/// non-manual — cheap and deterministic, which is what a throughput
/// fleet needs.
fn fleet_classifier(capture: &TestbedTrace, device: u16) -> EventClassifier {
    let size = capture
        .devices
        .get(device as usize)
        .and_then(|d| d.simple_rule_size)
        .unwrap_or(0);
    EventClassifier::simple_rule(size)
}

/// The control-plane provisioning request for one simulated home.
fn provision(capture: &TestbedTrace) -> HomeProvision {
    HomeProvision {
        config: ProxyConfig::default(),
        ceremony_secret: SECRET,
        seed: ENROLL_SEED,
        dns: capture.trace.dns.clone(),
        devices: (0..capture.devices.len() as u16)
            .map(|i| DeviceSpec {
                device: i,
                classifier: fleet_classifier(capture, i),
                min_packets_to_complete: capture.devices[i as usize].min_packets_to_complete,
            })
            .collect(),
        start_at: SimTime::ZERO,
    }
}

/// Run one home's capture through a freshly enrolled proxy and return its
/// stats and private registry. Provisioning goes through the real
/// control-plane ceremony ([`fiat_control::enroll_home`]: mutual auth,
/// device registration, first session ticket). Deterministic: the proxy
/// is timed by a never-ticking [`ManualClock`], devices use their
/// scripted simple-rule classifiers, and no humanness evidence is
/// injected (unverified manual events drop, exactly as an unattended
/// home would behave).
pub fn run_home(capture: &TestbedTrace) -> HomeRun {
    run_home_with_hook(capture, None)
}

/// [`run_home`] with an optional decision-path observer installed on the
/// proxy (the flight recorder). The hook sees transitions; it never
/// touches the home's registry, so a hooked run produces the same
/// [`HomeRun`] as an unhooked one.
pub fn run_home_with_hook(capture: &TestbedTrace, hook: Option<Box<dyn ProxyHook>>) -> HomeRun {
    let registry = MetricRegistry::new();
    let telemetry = ProxyTelemetry::new(registry.clone(), Arc::new(ManualClock::new()));
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let enrolled = enroll_home(provision(capture), &SECRET, validator, telemetry, None)
        .expect("fleet enrollment: shared ceremony secret always verifies");
    let mut proxy = enrolled.proxy;
    if let Some(h) = hook {
        proxy.set_hook(h);
    }
    for pkt in &capture.trace.packets {
        proxy.on_packet(pkt);
    }
    HomeRun {
        stats: proxy.stats(),
        registry,
        packets: capture.trace.packets.len() as u64,
    }
}

/// Run one home's capture with a mid-run rebalance at packet index
/// `split_at`: decide the first `split_at` packets, snapshot the proxy
/// to serialized bytes ([`fiat_control::snapshot_home`]), restore it
/// into a **fresh** registry — exactly what a destination shard does
/// when a home migrates — and decide the rest on the restored proxy.
///
/// Restore is telemetry-silent and [`ProxyStats`] travel inside the
/// snapshot, so folding the pre-move and post-move registries by
/// addition yields a [`HomeRun`] byte-identical to an uninterrupted
/// [`run_home`] — the property the fleet rebalance tests pin at every
/// shard count.
pub fn run_home_rebalanced(capture: &TestbedTrace, split_at: usize) -> HomeRun {
    let registry_before = MetricRegistry::new();
    let telemetry = ProxyTelemetry::new(registry_before.clone(), Arc::new(ManualClock::new()));
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let enrolled = enroll_home(provision(capture), &SECRET, validator, telemetry, None)
        .expect("fleet enrollment: shared ceremony secret always verifies");
    let mut proxy = enrolled.proxy;
    let split_at = split_at.min(capture.trace.packets.len());
    for pkt in &capture.trace.packets[..split_at] {
        proxy.on_packet(pkt);
    }
    let bytes = snapshot_home(&proxy, None);
    let registry_after = MetricRegistry::new();
    proxy = restore_home(
        &bytes,
        ProxyConfig::default(),
        &SECRET,
        HumannessValidator::with_operating_point(1.0, 1.0, 0),
        ProxyTelemetry::new(registry_after.clone(), Arc::new(ManualClock::new())),
        |d| fleet_classifier(capture, d),
        None,
    )
    .expect("fleet rebalance: own snapshot always restores");
    for pkt in &capture.trace.packets[split_at..] {
        proxy.on_packet(pkt);
    }
    let registry = MetricRegistry::new();
    registry.merge_from(&registry_before);
    registry.merge_from(&registry_after);
    HomeRun {
        stats: proxy.stats(),
        registry,
        packets: capture.trace.packets.len() as u64,
    }
}

fn fold(outcomes: Vec<ShardOutcome>, shards: usize) -> FleetOutcome {
    let registry = MetricRegistry::new();
    let mut stats = ProxyStats::default();
    let mut packets = 0u64;
    let mut homes = 0usize;
    for o in &outcomes {
        registry.merge_from(&o.registry);
        stats += o.stats;
        packets += o.packets;
        homes += o.homes;
    }
    FleetOutcome {
        homes,
        shards,
        packets,
        stats,
        registry,
        per_shard: outcomes,
    }
}

/// Run the fleet across `shards` worker threads. The workload slice is
/// partitioned up front by estimated cost ([`PartitionPlan::build`],
/// greedy LPT on packet counts); each worker drains its own queue
/// through an atomic claim cursor and then steals from the queue with
/// the most remaining cost, so one pathologically expensive home cannot
/// serialize the fleet and no hand-off channel exists to block on.
/// Shard outcomes fold into the fleet view by addition, which is what
/// keeps the merged result byte-identical to [`run_sequential`] no
/// matter which shard ends up running which home.
pub fn run_sharded(workloads: &[HomeWorkload], shards: usize) -> FleetOutcome {
    run_sharded_with(workloads, shards, &|capture| run_home(capture))
}

/// [`run_sharded`] where every home is rebalanced mid-capture: each
/// proxy is snapshotted at its midpoint packet and restored into a fresh
/// registry before resuming ([`run_home_rebalanced`]). The merged view
/// must stay byte-identical to the uninterrupted [`run_sequential`]
/// reference at every shard count — the fleet-level proof that a
/// control-plane home migration is invisible in every counter.
pub fn run_sharded_rebalancing(workloads: &[HomeWorkload], shards: usize) -> FleetOutcome {
    run_sharded_with(workloads, shards, &|capture| {
        run_home_rebalanced(capture, capture.trace.packets.len() / 2)
    })
}

/// The shared plan/claim/decide/merge skeleton of the unprobed entry
/// points, generic over how one home is run.
fn run_sharded_with<F>(workloads: &[HomeWorkload], shards: usize, runner: &F) -> FleetOutcome
where
    F: Fn(&TestbedTrace) -> HomeRun + Sync,
{
    let shards = shards.clamp(1, workloads.len().max(1));
    let costs: Vec<u64> = workloads.iter().map(home_cost).collect();
    let plan = PartitionPlan::build(&costs, shards);
    let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(shards);
    std::thread::scope(|s| {
        let plan = &plan;
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                s.spawn(move || {
                    let registry = MetricRegistry::new();
                    let mut stats = ProxyStats::default();
                    let mut packets = 0u64;
                    let mut homes = 0usize;
                    while let Some(c) = plan.claim(shard) {
                        let run = runner(&workloads[c.home].capture);
                        registry.merge_from(&run.registry);
                        stats += run.stats;
                        packets += run.packets;
                        homes += 1;
                    }
                    ShardOutcome {
                        shard,
                        homes,
                        packets,
                        stats,
                        registry,
                    }
                })
            })
            .collect();
        outcomes = handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
    });
    fold(outcomes, shards)
}

/// Bridges the proxy's [`ProxyHook`] transitions into a shard's flight
/// recorder ring. One per home run; it stamps every event with the
/// home id and the home's own sequence counter, which is what lets the
/// recorder merge deterministically even though work stealing makes the
/// recording shard scheduling-dependent.
struct RecorderHook {
    home: u32,
    seq: Cell<u64>,
    ring: Arc<ShardRecorder>,
}

impl RecorderHook {
    fn new(home: u32, ring: Arc<ShardRecorder>) -> Self {
        RecorderHook {
            home,
            seq: Cell::new(SEQ_FIRST_HOOK),
            ring,
        }
    }

    fn record(&self, ts_us: u64, device: u16, kind: TraceKind, detail: &'static str, arg: u64) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        self.ring.record(TraceEvent {
            ts_us,
            home: self.home,
            seq,
            device,
            kind,
            detail,
            arg,
        });
    }
}

impl ProxyHook for RecorderHook {
    fn on_decision(&self, ts: SimTime, device: u16, decision: ProxyDecision) {
        self.record(
            ts.as_micros(),
            device,
            TraceKind::PacketDecided,
            decision.reason_str(),
            0,
        );
    }

    fn on_proof(&self, ts: SimTime, verified: bool) {
        let detail = if verified { "verified" } else { "rejected" };
        self.record(ts.as_micros(), 0, TraceKind::ProofArrival, detail, 0);
    }

    fn on_lockout(&self, ts: SimTime, device: u16) {
        self.record(ts.as_micros(), device, TraceKind::LockoutEntered, "", 0);
    }

    fn on_lockout_cleared(&self, device: u16) {
        // No simulated timestamp (a user action, not a packet): recorded
        // at the sim origin, ordered among its home's events by seq.
        self.record(0, device, TraceKind::LockoutCleared, "", 0);
    }

    fn on_quarantine_held(&self, ts: SimTime, device: u16) {
        self.record(ts.as_micros(), device, TraceKind::QuarantineHeld, "", 0);
    }

    fn on_quarantine_released(&self, ts: SimTime, device: u16, packets: u64) {
        self.record(
            ts.as_micros(),
            device,
            TraceKind::QuarantineReleased,
            "",
            packets,
        );
    }

    fn on_quarantine_expired(&self, ts: SimTime, device: u16, packets: u64) {
        self.record(
            ts.as_micros(),
            device,
            TraceKind::QuarantineExpired,
            "",
            packets,
        );
    }
}

/// First and last simulated packet timestamps of a capture, for home
/// lifecycle trace events.
fn sim_span(capture: &TestbedTrace) -> (u64, u64) {
    let first = capture
        .trace
        .packets
        .first()
        .map_or(0, |p| p.ts.as_micros());
    let last = capture
        .trace
        .packets
        .last()
        .map_or(first, |p| p.ts.as_micros());
    (first, last)
}

/// What a probed fleet run produced: the (unchanged) fleet view, the
/// per-shard stage accounting, and the flight recorder if one was on.
pub struct ProbedOutcome {
    /// The merged fleet view — identical to what [`run_sharded`] (and
    /// the sequential reference) produce for the same workloads.
    pub fleet: FleetOutcome,
    /// Per-shard / per-stage wall-time accounting, with the
    /// coordinator's plan and barrier-skew costs on their own row.
    pub profile: FleetProfile,
    /// The flight recorder, when `probes.recorder_capacity > 0`.
    pub recorder: Option<FlightRecorder>,
}

/// [`run_sharded`] with observability: per-shard stage accounting
/// (claim / decide / merge on the shard rows, partition planning and
/// join-barrier skew on the coordinator row), steal counters, per-stage
/// allocation attribution (when the binary installs
/// [`fiat_probe::CountingAllocator`]), and an optional flight recorder
/// hooked into every proxy's decision path.
///
/// The probes only *observe*: per-home proxies still run on the manual
/// clock and their registries still fold by addition, so the merged
/// `fleet` view stays byte-identical to [`run_sequential`].
pub fn run_sharded_probed(
    workloads: &[HomeWorkload],
    shards: usize,
    probes: &ProbeConfig,
) -> ProbedOutcome {
    let shards = shards.clamp(1, workloads.len().max(1));
    let run_start = Instant::now();
    let recorder = (probes.recorder_capacity > 0)
        .then(|| FlightRecorder::new(shards, probes.recorder_capacity));

    // Coordinator: build the plan, timed and alloc-attributed onto its
    // own row (never a shard's).
    let mut coordinator = ShardProfile::new(0);
    let plan_alloc = AllocScope::enter();
    let t = Instant::now();
    let costs: Vec<u64> = workloads.iter().map(home_cost).collect();
    let plan = PartitionPlan::build(&costs, shards);
    coordinator.add(Stage::Dispatch, t.elapsed());
    coordinator.add_allocs(Stage::Dispatch, plan_alloc.delta());

    if let Some(r) = &recorder {
        let ring = r.shard(r.coordinator_index());
        for w in workloads {
            ring.record(TraceEvent {
                ts_us: sim_span(&w.capture).0,
                home: w.home,
                seq: SEQ_ASSIGNED,
                device: 0,
                kind: TraceKind::HomeEnqueued,
                detail: "",
                arg: w.capture.trace.packets.len() as u64,
            });
        }
    }

    let mut results: Vec<(ShardOutcome, ShardProfile)> = Vec::with_capacity(shards);
    std::thread::scope(|s| {
        let plan = &plan;
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                let ring = recorder.as_ref().map(|r| r.shard(shard));
                s.spawn(move || {
                    let shard_start = Instant::now();
                    let mut profile = ShardProfile::new(shard);
                    profile.assigned = plan.assigned(shard) as u64;
                    let registry = MetricRegistry::new();
                    let mut stats = ProxyStats::default();
                    let mut packets = 0u64;
                    let mut homes = 0usize;
                    loop {
                        let t = Instant::now();
                        let claim = plan.claim(shard);
                        profile.add(Stage::Recv, t.elapsed());
                        let Some(c) = claim else { break };
                        if c.stolen {
                            profile.steals += 1;
                        }
                        let w = &workloads[c.home];
                        let (first_ts, last_ts) = sim_span(&w.capture);
                        if let Some(ring) = &ring {
                            ring.record(TraceEvent {
                                ts_us: first_ts,
                                home: w.home,
                                seq: SEQ_CLAIMED,
                                device: 0,
                                kind: TraceKind::HomeDequeued,
                                detail: "",
                                arg: 0,
                            });
                        }
                        let hook = ring.as_ref().map(|r| {
                            Box::new(RecorderHook::new(w.home, Arc::clone(r))) as Box<dyn ProxyHook>
                        });
                        let alloc = AllocScope::enter();
                        let t = Instant::now();
                        let run = run_home_with_hook(&w.capture, hook);
                        profile.add(Stage::Decide, t.elapsed());
                        profile.add_allocs(Stage::Decide, alloc.delta());
                        if let Some(ring) = &ring {
                            ring.record(TraceEvent {
                                ts_us: last_ts,
                                home: w.home,
                                seq: SEQ_FINISHED,
                                device: 0,
                                kind: TraceKind::HomeFinished,
                                detail: "",
                                arg: run.packets,
                            });
                        }
                        let alloc = AllocScope::enter();
                        let t = Instant::now();
                        registry.merge_from(&run.registry);
                        stats += run.stats;
                        packets += run.packets;
                        homes += 1;
                        profile.add(Stage::Merge, t.elapsed());
                        profile.add_allocs(Stage::Merge, alloc.delta());
                    }
                    profile.wall_nanos = shard_start.elapsed().as_nanos() as u64;
                    profile.homes = homes as u64;
                    profile.packets = packets;
                    (
                        ShardOutcome {
                            shard,
                            homes,
                            packets,
                            stats,
                            registry,
                        },
                        profile,
                    )
                })
            })
            .collect();
        results = handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
    });
    let mut outcomes = Vec::with_capacity(shards);
    let mut profiles = Vec::with_capacity(shards);
    for (outcome, profile) in results {
        outcomes.push(outcome);
        profiles.push(profile);
    }
    // Join-barrier skew: how much longer the slowest shard ran than the
    // fastest. With cost-aware partitioning plus stealing this should
    // be a sliver; a large value means the tail is not being stolen.
    let max_wall = profiles.iter().map(|p| p.wall_nanos).max().unwrap_or(0);
    let min_wall = profiles.iter().map(|p| p.wall_nanos).min().unwrap_or(0);
    coordinator.add(Stage::MergeWait, Duration::from_nanos(max_wall - min_wall));
    // The coordinator row covers exactly its own accounted work, so its
    // idle residual is zero and it can never read as a fleet-sized cost.
    coordinator.wall_nanos =
        coordinator.stage_nanos(Stage::Dispatch) + coordinator.stage_nanos(Stage::MergeWait);
    let t = Instant::now();
    let fleet = fold(outcomes, shards);
    let fold_nanos = t.elapsed().as_nanos() as u64;
    let profile = FleetProfile {
        shards: profiles,
        coordinator,
        wall_nanos: run_start.elapsed().as_nanos() as u64,
        fold_nanos,
        recorder_events: recorder.as_ref().map(|r| (r.total(), r.dropped())),
    };
    ProbedOutcome {
        fleet,
        profile,
        recorder,
    }
}

/// The sequential reference: every home in order on the calling thread,
/// no claim queues, no worker threads. [`run_sharded`] must merge to
/// exactly this outcome (stats equality and byte-identical registry
/// exposition).
pub fn run_sequential(workloads: &[HomeWorkload]) -> FleetOutcome {
    let registry = MetricRegistry::new();
    let mut stats = ProxyStats::default();
    let mut packets = 0u64;
    for w in workloads {
        let run = run_home(&w.capture);
        registry.merge_from(&run.registry);
        stats += run.stats;
        packets += run.packets;
    }
    let outcome = ShardOutcome {
        shard: 0,
        homes: workloads.len(),
        packets,
        stats,
        registry,
    };
    fold(vec![outcome], 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workloads() -> Vec<HomeWorkload> {
        build_workloads(4, 0.05, 42)
    }

    /// One pathologically expensive home (10x the capture length) among
    /// seven cheap ones — the dispatch-skew scenario from the old
    /// round-robin design's worst case.
    fn skewed_workloads() -> Vec<HomeWorkload> {
        let capture = |days: f64, seed: u64| {
            TestbedTrace::generate(TestbedConfig {
                location: Location::Us,
                days,
                seed,
                manual_per_day: 12.0,
                routines_per_day: 10.0,
                confusion_scale: 0.15,
            })
        };
        let mut v = vec![HomeWorkload {
            home: 0,
            capture: capture(0.5, 1999),
        }];
        for h in 1..8u32 {
            v.push(HomeWorkload {
                home: h,
                capture: capture(0.05, 1999 + h as u64),
            });
        }
        v
    }

    #[test]
    fn workloads_are_distinct_and_reproducible() {
        let a = small_workloads();
        let b = small_workloads();
        assert_eq!(a.len(), 4);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.capture.trace.len(), wb.capture.trace.len());
        }
        // Different homes see different traffic (different seeds).
        assert_ne!(
            a[0].capture.trace.packets.len(),
            0,
            "home 0 generated no traffic"
        );
        let ts0: Vec<_> = a[0].capture.trace.packets.iter().map(|p| p.ts).collect();
        let ts1: Vec<_> = a[1].capture.trace.packets.iter().map(|p| p.ts).collect();
        assert_ne!(ts0, ts1);
    }

    #[test]
    fn sharded_run_matches_sequential_reference() {
        let workloads = small_workloads();
        let reference = run_sequential(&workloads);
        for shards in [1, 2, 3, 4] {
            let fleet = run_sharded(&workloads, shards);
            assert_eq!(fleet.stats, reference.stats, "{shards} shards");
            assert_eq!(fleet.packets, reference.packets, "{shards} shards");
            assert_eq!(fleet.homes, reference.homes, "{shards} shards");
            // Byte-identical fleet-wide exposition: counters, gauges, and
            // histograms all merged to exactly the same values.
            assert_eq!(
                fleet.registry.render_prometheus(),
                reference.registry.render_prometheus(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn rebalanced_fleet_is_byte_identical_to_uninterrupted_sequential() {
        // The tentpole property: migrating every home mid-capture
        // (snapshot → restore into a fresh registry → resume) merges to
        // exactly the uninterrupted reference at every shard count.
        let workloads = small_workloads();
        let reference = run_sequential(&workloads);
        for shards in [1, 2, 3, 4] {
            let fleet = run_sharded_rebalancing(&workloads, shards);
            assert_eq!(fleet.stats, reference.stats, "{shards} shards");
            assert_eq!(fleet.packets, reference.packets, "{shards} shards");
            assert_eq!(fleet.homes, reference.homes, "{shards} shards");
            assert_eq!(
                fleet.registry.render_prometheus(),
                reference.registry.render_prometheus(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn rebalance_is_invisible_at_any_split_point() {
        let workloads = build_workloads(1, 0.05, 9);
        let capture = &workloads[0].capture;
        let n = capture.trace.packets.len();
        assert!(n > 3, "capture too small to split meaningfully");
        let plain = run_home(capture);
        // Before any packet, mid-stream, and after the last packet: a
        // snapshot/restore cycle never shows up in stats or exposition.
        for split in [0, 1, n / 3, n / 2, n] {
            let moved = run_home_rebalanced(capture, split);
            assert_eq!(moved.stats, plain.stats, "split {split}");
            assert_eq!(moved.packets, plain.packets, "split {split}");
            assert_eq!(
                moved.registry.render_prometheus(),
                plain.registry.render_prometheus(),
                "split {split}"
            );
        }
    }

    #[test]
    fn shards_partition_the_homes() {
        let workloads = small_workloads();
        // The static plan balances cost: 4 similar homes over 2 shards
        // is 2 + 2 before any stealing.
        let costs: Vec<u64> = workloads.iter().map(home_cost).collect();
        let plan = PartitionPlan::build(&costs, 2);
        assert_eq!(plan.assigned(0), 2);
        assert_eq!(plan.assigned(1), 2);
        // The run covers every home and packet exactly once, whatever
        // stealing did to the per-shard split.
        let fleet = run_sharded(&workloads, 2);
        assert_eq!(fleet.per_shard.len(), 2);
        assert_eq!(fleet.per_shard.iter().map(|s| s.homes).sum::<usize>(), 4);
        assert_eq!(
            fleet.per_shard.iter().map(|s| s.packets).sum::<u64>(),
            fleet.packets
        );
    }

    #[test]
    fn oversized_shard_count_is_clamped() {
        let workloads = build_workloads(2, 0.05, 7);
        let fleet = run_sharded(&workloads, 16);
        assert_eq!(fleet.shards, 2);
        assert_eq!(fleet.homes, 2);
    }

    #[test]
    fn empty_and_clamped_runs_agree_between_entry_points() {
        // Empty workload: both entry points clamp to one shard, decide
        // nothing, and merge to the same (empty) view.
        let empty: Vec<HomeWorkload> = Vec::new();
        let plain = run_sharded(&empty, 4);
        let probed = run_sharded_probed(&empty, 4, &ProbeConfig::default());
        assert_eq!(plain.shards, 1);
        assert_eq!(probed.fleet.shards, 1);
        assert_eq!(plain.homes, 0);
        assert_eq!(probed.fleet.homes, 0);
        assert_eq!(plain.packets, 0);
        assert_eq!(probed.fleet.packets, 0);
        assert_eq!(plain.stats, probed.fleet.stats);
        assert_eq!(
            plain.registry.render_prometheus(),
            probed.fleet.registry.render_prometheus()
        );
        // shards > homes clamps identically in both entry points.
        let two = build_workloads(2, 0.05, 7);
        let plain = run_sharded(&two, 16);
        let probed = run_sharded_probed(&two, 16, &ProbeConfig::profiling());
        assert_eq!(plain.shards, 2);
        assert_eq!(probed.fleet.shards, 2);
        assert_eq!(probed.profile.shards.len(), 2);
        assert_eq!(plain.stats, probed.fleet.stats);
        assert_eq!(
            plain.registry.render_prometheus(),
            probed.fleet.registry.render_prometheus()
        );
    }

    #[test]
    fn skewed_corpus_is_deterministic_and_isolates_the_expensive_home() {
        let workloads = skewed_workloads();
        let costs: Vec<u64> = workloads.iter().map(home_cost).collect();
        assert!(
            costs[0] > 3 * costs[1..].iter().copied().max().unwrap(),
            "corpus is not skewed enough to test anything: {costs:?}"
        );
        // The plan gives the expensive home a shard to itself, so the
        // cheap homes can proceed on the other shards from t=0 instead
        // of queueing behind it (the old design serialized here).
        let plan = PartitionPlan::build(&costs, 4);
        assert_eq!(plan.assigned_homes(0), &[0]);
        // Determinism holds under skew for both entry points at every
        // shard count.
        let reference = run_sequential(&workloads);
        for shards in [2, 4, 8] {
            let fleet = run_sharded(&workloads, shards);
            assert_eq!(fleet.stats, reference.stats, "{shards} shards");
            assert_eq!(
                fleet.registry.render_prometheus(),
                reference.registry.render_prometheus(),
                "{shards} shards"
            );
            let probed = run_sharded_probed(&workloads, shards, &ProbeConfig::profiling());
            assert_eq!(
                probed.fleet.stats, reference.stats,
                "{shards} shards probed"
            );
            assert_eq!(
                probed.fleet.registry.render_prometheus(),
                reference.registry.render_prometheus(),
                "{shards} shards probed"
            );
        }
    }

    #[test]
    fn skewed_corpus_speeds_up_when_cores_allow() {
        // The serialization regression proper: with one expensive home
        // among cheap ones, 4 shards must beat 1 shard. Wall-clock
        // speedup needs real cores, so the assertion only arms on hosts
        // with ≥ 4 (CI runners qualify; the structural guarantees are
        // covered above either way).
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores < 4 {
            eprintln!("skipping wall-clock speedup assertion: host has {cores} core(s)");
            return;
        }
        let workloads = skewed_workloads();
        let best_of = |shards: usize| {
            (0..2)
                .map(|_| {
                    let t = Instant::now();
                    let fleet = run_sharded(&workloads, shards);
                    assert!(fleet.packets > 0);
                    t.elapsed()
                })
                .min()
                .unwrap()
        };
        let t1 = best_of(1);
        let t4 = best_of(4);
        let speedup = t1.as_secs_f64() / t4.as_secs_f64().max(1e-9);
        assert!(
            speedup >= 1.2,
            "skewed 4-shard run must not serialize: speedup {speedup:.2}x (1 shard {t1:?}, 4 shards {t4:?})"
        );
    }

    #[test]
    fn probed_run_preserves_determinism() {
        // The whole point of the probe layer: observing the fleet must
        // not change what it computes. Probed runs (recorder on and off)
        // merge byte-identically to the sequential reference.
        let workloads = small_workloads();
        let reference = run_sequential(&workloads);
        for probes in [ProbeConfig::default(), ProbeConfig::profiling()] {
            for shards in [1, 2, 4] {
                let probed = run_sharded_probed(&workloads, shards, &probes);
                assert_eq!(probed.fleet.stats, reference.stats, "{shards} shards");
                assert_eq!(
                    probed.fleet.registry.render_prometheus(),
                    reference.registry.render_prometheus(),
                    "{shards} shards, recorder_capacity {}",
                    probes.recorder_capacity
                );
            }
        }
    }

    #[test]
    fn probed_run_accounts_its_wall_time() {
        let workloads = small_workloads();
        let probed = run_sharded_probed(&workloads, 2, &ProbeConfig::default());
        // The acceptance bar: the per-shard breakdown explains >= 95% of
        // each shard's measured wall time (100% by construction).
        assert!(probed.profile.coverage() >= 0.95);
        assert_eq!(probed.profile.shards.len(), 2);
        assert_eq!(
            probed.profile.shards.iter().map(|s| s.homes).sum::<u64>(),
            4
        );
        assert_eq!(
            probed
                .profile
                .shards
                .iter()
                .map(|s| s.assigned)
                .sum::<u64>(),
            4
        );
        assert_eq!(
            probed.profile.shards.iter().map(|s| s.packets).sum::<u64>(),
            probed.fleet.packets
        );
        // The fleet decided something, so decide time is non-zero (a
        // single shard may have had its whole queue stolen under a
        // hostile scheduler, so assert the total, not each row).
        assert!(probed.profile.stage_total(Stage::Decide) > 0);
        // Plan cost lives on the coordinator row, not a shard's.
        for sp in &probed.profile.shards {
            assert_eq!(sp.stage_nanos(Stage::Dispatch), 0, "shard {}", sp.shard);
            assert_eq!(sp.stage_nanos(Stage::MergeWait), 0, "shard {}", sp.shard);
        }
        assert!(!probed.profile.top_bottleneck().is_empty());
        // Probes off: no recorder was built.
        assert!(probed.recorder.is_none());
        assert!(probed.profile.recorder_events.is_none());
    }

    #[test]
    fn flight_recorder_timeline_is_reproducible() {
        let workloads = small_workloads();
        let run = || {
            // Rings sized to retain the whole run: a complete timeline
            // must be byte-identical across runs even though stealing
            // makes the recording shard scheduling-dependent.
            let probes = ProbeConfig {
                recorder_capacity: 1 << 15,
            };
            let probed = run_sharded_probed(&workloads, 2, &probes);
            let recorder = probed.recorder.expect("recorder on");
            assert_eq!(recorder.evicted_ratio(), 0.0, "ring too small for corpus");
            recorder.to_jsonl()
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty());
        assert_eq!(a, b, "merged trace must not depend on scheduling");
        // The timeline carries packet decisions and the full home
        // lifecycle.
        assert!(a.contains("\"kind\":\"packet_decided\""));
        assert!(a.contains("\"kind\":\"home_enqueued\""));
        assert!(a.contains("\"kind\":\"home_finished\""));
    }

    #[test]
    fn fleet_registry_aggregates_per_home_counts() {
        let workloads = small_workloads();
        let fleet = run_sequential(&workloads);
        // Every packet decision landed in the merged registry.
        let decide = fleet
            .registry
            .histogram("fiat_proxy_stage_us", &[("stage", "decide")]);
        assert_eq!(decide.count(), fleet.packets);
        assert_eq!(fleet.stats.total(), fleet.packets);
        // Device gauges sum across homes.
        let devices = fleet.registry.gauge("fiat_proxy_devices", &[]).get();
        let per_home = workloads[0].capture.devices.len() as i64;
        assert_eq!(devices, per_home * workloads.len() as i64);
    }
}
