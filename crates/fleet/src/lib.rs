//! Sharded multi-home proxy runtime.
//!
//! The paper deploys one FIAT proxy per home; the ROADMAP north star is a
//! provider-scale service running millions of them. This crate takes the
//! first step: partition H simulated homes across T worker threads
//! ("shards"), each shard owning the [`FiatProxy`] instances for its
//! homes, then fold the per-home [`MetricRegistry`] snapshots and
//! [`ProxyStats`] into one fleet-wide view.
//!
//! Determinism is the design constraint: a sharded run must produce a
//! fleet view *identical* to a sequential reference run, or every
//! throughput/accuracy table built on it is suspect. Three choices make
//! that hold:
//!
//! - every home gets its **own** registry (gauges are `set()` last-writer
//!   -wins, so sharing one across homes would race); per-home registries
//!   are folded by *addition*, which is commutative and associative;
//! - each home's proxy is timed by a [`ManualClock`] that never advances,
//!   so stage-latency histograms record deterministic zero-length spans
//!   instead of wall-clock noise;
//! - work is distributed home-by-home over bounded [`mpsc`] channels
//!   (`std` only, consistent with dropping crossbeam in PR 1), and shard
//!   outcomes are folded in shard order — though order cannot matter, by
//!   the first point.

use fiat_core::{EventClassifier, FiatProxy, ProxyConfig, ProxyStats, ProxyTelemetry};
use fiat_net::SimTime;
use fiat_sensors::HumannessValidator;
use fiat_telemetry::{ManualClock, MetricRegistry};
use fiat_trace::{Location, TestbedConfig, TestbedTrace};
use std::sync::mpsc;
use std::sync::Arc;

/// Pairing secret shared by every simulated home (the per-home ceremony
/// is out of scope for throughput runs).
const SECRET: [u8; 32] = [0xF1; 32];

/// Per-shard work-queue depth: small enough to bound memory, deep enough
/// that the feeder never stalls a shard that is draining.
const SHARD_QUEUE_DEPTH: usize = 4;

/// One simulated home: an id plus its generated capture.
pub struct HomeWorkload {
    /// Home id (dense, `0..homes`).
    pub home: u32,
    /// The home's labeled capture (trace, DNS, ground truth, devices).
    pub capture: TestbedTrace,
}

/// What one home's proxy produced.
pub struct HomeRun {
    /// Decision counters.
    pub stats: ProxyStats,
    /// The home's private metric registry.
    pub registry: MetricRegistry,
    /// Packets pushed through `on_packet`.
    pub packets: u64,
}

/// A shard's folded view of the homes it ran.
pub struct ShardOutcome {
    /// Shard index.
    pub shard: usize,
    /// Homes this shard processed.
    pub homes: usize,
    /// Packets this shard decided.
    pub packets: u64,
    /// Folded decision counters.
    pub stats: ProxyStats,
    /// Folded metric registry.
    pub registry: MetricRegistry,
}

/// The fleet-wide merged view of a run.
pub struct FleetOutcome {
    /// Homes processed.
    pub homes: usize,
    /// Shards used (1 for the sequential reference).
    pub shards: usize,
    /// Total packets decided.
    pub packets: u64,
    /// Fleet-wide decision counters.
    pub stats: ProxyStats,
    /// Fleet-wide metric registry (per-home registries folded by
    /// addition).
    pub registry: MetricRegistry,
    /// Per-shard breakdown, in shard order.
    pub per_shard: Vec<ShardOutcome>,
}

/// Build `homes` independent home workloads. Each home gets its own
/// deterministic capture seeded from `seed` and its id, so workloads are
/// reproducible and distinct.
pub fn build_workloads(homes: usize, days: f64, seed: u64) -> Vec<HomeWorkload> {
    (0..homes)
        .map(|h| HomeWorkload {
            home: h as u32,
            capture: TestbedTrace::generate(TestbedConfig {
                location: Location::Us,
                days,
                seed: seed.wrapping_add((h as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                manual_per_day: 12.0,
                routines_per_day: 10.0,
                confusion_scale: 0.15,
            }),
        })
        .collect()
}

/// Run one home's capture through a fresh proxy and return its stats and
/// private registry. Deterministic: the proxy is timed by a never-ticking
/// [`ManualClock`], devices use their scripted simple-rule classifiers,
/// and no humanness evidence is injected (unverified manual events drop,
/// exactly as an unattended home would behave).
pub fn run_home(capture: &TestbedTrace) -> HomeRun {
    let registry = MetricRegistry::new();
    let telemetry = ProxyTelemetry::new(registry.clone(), Arc::new(ManualClock::new()));
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let mut proxy =
        FiatProxy::with_telemetry(ProxyConfig::default(), &SECRET, validator, telemetry);
    proxy.set_dns(capture.trace.dns.clone());
    for (i, dev) in capture.devices.iter().enumerate() {
        // Simple-rule devices classify by their command size; ML devices
        // fall back to a size no packet carries (0), i.e. everything is
        // non-manual — cheap and deterministic, which is what a
        // throughput fleet needs.
        let classifier = EventClassifier::simple_rule(dev.simple_rule_size.unwrap_or(0));
        proxy.register_device(i as u16, classifier, dev.min_packets_to_complete);
    }
    proxy.start(SimTime::ZERO);
    for pkt in &capture.trace.packets {
        proxy.on_packet(pkt);
    }
    HomeRun {
        stats: proxy.stats(),
        registry,
        packets: capture.trace.packets.len() as u64,
    }
}

fn fold(outcomes: Vec<ShardOutcome>, shards: usize) -> FleetOutcome {
    let registry = MetricRegistry::new();
    let mut stats = ProxyStats::default();
    let mut packets = 0u64;
    let mut homes = 0usize;
    for o in &outcomes {
        registry.merge_from(&o.registry);
        stats += o.stats;
        packets += o.packets;
        homes += o.homes;
    }
    FleetOutcome {
        homes,
        shards,
        packets,
        stats,
        registry,
        per_shard: outcomes,
    }
}

/// Run the fleet across `shards` worker threads. Home `i` goes to shard
/// `i % shards` over a bounded channel; each worker folds its homes into
/// a [`ShardOutcome`], and shard outcomes fold into the fleet view.
pub fn run_sharded(workloads: &[HomeWorkload], shards: usize) -> FleetOutcome {
    let shards = shards.clamp(1, workloads.len().max(1));
    let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(shards);
    std::thread::scope(|s| {
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<&HomeWorkload>(SHARD_QUEUE_DEPTH);
            senders.push(tx);
            handles.push(s.spawn(move || {
                let registry = MetricRegistry::new();
                let mut stats = ProxyStats::default();
                let mut packets = 0u64;
                let mut homes = 0usize;
                while let Ok(w) = rx.recv() {
                    let run = run_home(&w.capture);
                    registry.merge_from(&run.registry);
                    stats += run.stats;
                    packets += run.packets;
                    homes += 1;
                }
                ShardOutcome {
                    shard,
                    homes,
                    packets,
                    stats,
                    registry,
                }
            }));
        }
        for (i, w) in workloads.iter().enumerate() {
            senders[i % shards].send(w).expect("shard worker alive");
        }
        drop(senders);
        outcomes = handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
    });
    fold(outcomes, shards)
}

/// The sequential reference: every home in order on the calling thread,
/// no channels, no worker threads. [`run_sharded`] must merge to exactly
/// this outcome (stats equality and byte-identical registry exposition).
pub fn run_sequential(workloads: &[HomeWorkload]) -> FleetOutcome {
    let registry = MetricRegistry::new();
    let mut stats = ProxyStats::default();
    let mut packets = 0u64;
    for w in workloads {
        let run = run_home(&w.capture);
        registry.merge_from(&run.registry);
        stats += run.stats;
        packets += run.packets;
    }
    let outcome = ShardOutcome {
        shard: 0,
        homes: workloads.len(),
        packets,
        stats,
        registry,
    };
    fold(vec![outcome], 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workloads() -> Vec<HomeWorkload> {
        build_workloads(4, 0.05, 42)
    }

    #[test]
    fn workloads_are_distinct_and_reproducible() {
        let a = small_workloads();
        let b = small_workloads();
        assert_eq!(a.len(), 4);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.capture.trace.len(), wb.capture.trace.len());
        }
        // Different homes see different traffic (different seeds).
        assert_ne!(
            a[0].capture.trace.packets.len(),
            0,
            "home 0 generated no traffic"
        );
        let ts0: Vec<_> = a[0].capture.trace.packets.iter().map(|p| p.ts).collect();
        let ts1: Vec<_> = a[1].capture.trace.packets.iter().map(|p| p.ts).collect();
        assert_ne!(ts0, ts1);
    }

    #[test]
    fn sharded_run_matches_sequential_reference() {
        let workloads = small_workloads();
        let reference = run_sequential(&workloads);
        for shards in [1, 2, 3, 4] {
            let fleet = run_sharded(&workloads, shards);
            assert_eq!(fleet.stats, reference.stats, "{shards} shards");
            assert_eq!(fleet.packets, reference.packets, "{shards} shards");
            assert_eq!(fleet.homes, reference.homes, "{shards} shards");
            // Byte-identical fleet-wide exposition: counters, gauges, and
            // histograms all merged to exactly the same values.
            assert_eq!(
                fleet.registry.render_prometheus(),
                reference.registry.render_prometheus(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn shards_partition_the_homes() {
        let workloads = small_workloads();
        let fleet = run_sharded(&workloads, 2);
        assert_eq!(fleet.per_shard.len(), 2);
        assert_eq!(fleet.per_shard.iter().map(|s| s.homes).sum::<usize>(), 4);
        assert_eq!(
            fleet.per_shard.iter().map(|s| s.packets).sum::<u64>(),
            fleet.packets
        );
        // Round-robin: 4 homes over 2 shards is 2 + 2.
        assert_eq!(fleet.per_shard[0].homes, 2);
        assert_eq!(fleet.per_shard[1].homes, 2);
    }

    #[test]
    fn oversized_shard_count_is_clamped() {
        let workloads = build_workloads(2, 0.05, 7);
        let fleet = run_sharded(&workloads, 16);
        assert_eq!(fleet.shards, 2);
        assert_eq!(fleet.homes, 2);
    }

    #[test]
    fn fleet_registry_aggregates_per_home_counts() {
        let workloads = small_workloads();
        let fleet = run_sequential(&workloads);
        // Every packet decision landed in the merged registry.
        let decide = fleet
            .registry
            .histogram("fiat_proxy_stage_us", &[("stage", "decide")]);
        assert_eq!(decide.count(), fleet.packets);
        assert_eq!(fleet.stats.total(), fleet.packets);
        // Device gauges sum across homes.
        let devices = fleet.registry.gauge("fiat_proxy_devices", &[]).get();
        let per_home = workloads[0].capture.devices.len() as i64;
        assert_eq!(devices, per_home * workloads.len() as i64);
    }
}
