//! Cost-aware static partitioning with a work-stealing tail.
//!
//! The PR-6 profile proved the old feeder+channel dispatch was the
//! scaling bug: one thread round-robining homes into depth-4
//! `sync_channel`s stalls *every* shard the moment *one* queue fills
//! (head-of-line blocking — ~880 ms of feeder "dispatch" and shards
//! idling in `recv` on the 1000-home corpus). Workloads are already
//! materialized in a slice, so no hand-off is needed at all: this module
//! plans the whole run up front and lets shards pull work themselves.
//!
//! Two layers:
//!
//! - **Static cost-aware partition** ([`PartitionPlan::build`]): homes
//!   are assigned to shards by greedy LPT (longest-processing-time)
//!   scheduling on an estimated cost (packet count) — sort homes by
//!   descending cost, give each to the currently lightest shard. Ties
//!   break on index and shard id, so the plan is a pure function of the
//!   cost vector: deterministic, and testable without running anything.
//! - **Work-stealing tail** ([`PartitionPlan::claim`]): each shard's
//!   queue is an immutable `Vec` of home indices plus an atomic claim
//!   cursor. The owning shard claims its own queue front-to-back; a
//!   shard that drains its queue steals from the victim with the most
//!   *remaining estimated cost* (precomputed suffix sums — O(1) per
//!   probe). Claims are `fetch_add` on the cursor, so every home is
//!   claimed exactly once no matter how owner and thieves race.
//!
//! Determinism of the merged fleet view does not depend on any of this:
//! per-home registries fold by addition (commutative, associative), so
//! *which* shard runs a home cannot change the merged outcome. What
//! stealing does make nondeterministic is the per-shard breakdown
//! (`ShardOutcome::homes` may differ run to run under load); the
//! fleet-level oracle is unaffected.

use std::sync::atomic::{AtomicUsize, Ordering};

/// One claimed unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim {
    /// Index into the workload slice the plan was built over.
    pub home: usize,
    /// Whether the claim came from another shard's queue.
    pub stolen: bool,
}

/// One shard's statically assigned queue: immutable items plus an
/// atomic claim cursor shared by the owner and any thieves.
#[derive(Debug)]
struct ShardQueue {
    /// Home indices in claim order (costliest first, from LPT).
    items: Vec<u32>,
    /// `suffix_cost[i]` = total estimated cost of `items[i..]`
    /// (`len + 1` entries, last is 0), so remaining cost is O(1).
    suffix_cost: Vec<u64>,
    /// Next unclaimed position. May run past `items.len()` when racing
    /// claimants overshoot a drained queue; that is harmless.
    next: AtomicUsize,
}

impl ShardQueue {
    fn new(items: Vec<u32>, costs: &[u64]) -> Self {
        let mut suffix_cost = vec![0u64; items.len() + 1];
        for i in (0..items.len()).rev() {
            suffix_cost[i] = suffix_cost[i + 1] + costs[items[i] as usize];
        }
        ShardQueue {
            items,
            suffix_cost,
            next: AtomicUsize::new(0),
        }
    }

    /// Claim the next unclaimed home, if any.
    fn claim(&self) -> Option<usize> {
        // The load is only an optimization: it keeps drained queues from
        // accumulating unbounded cursor overshoot under repeated probes.
        if self.next.load(Ordering::Relaxed) >= self.items.len() {
            return None;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        self.items.get(i).map(|&h| h as usize)
    }

    /// Estimated cost still unclaimed in this queue.
    fn remaining_cost(&self) -> u64 {
        let i = self.next.load(Ordering::Relaxed).min(self.items.len());
        self.suffix_cost[i]
    }
}

/// The full fleet plan: one claim queue per shard.
#[derive(Debug)]
pub struct PartitionPlan {
    queues: Vec<ShardQueue>,
}

impl PartitionPlan {
    /// Greedy LPT partition of `costs` (one entry per home, by index)
    /// into `shards` queues. Deterministic: a pure function of the cost
    /// vector — same costs, same plan.
    pub fn build(costs: &[u64], shards: usize) -> PartitionPlan {
        let shards = shards.max(1);
        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
        let mut loads = vec![0u64; shards];
        let mut items: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for i in order {
            let lightest = loads
                .iter()
                .enumerate()
                .min_by_key(|&(s, &l)| (l, s))
                .map(|(s, _)| s)
                .expect("shards >= 1");
            loads[lightest] += costs[i];
            items[lightest].push(i as u32);
        }
        PartitionPlan {
            queues: items
                .into_iter()
                .map(|v| ShardQueue::new(v, costs))
                .collect(),
        }
    }

    /// Shards the plan was built for.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Homes statically assigned to `shard` (before any stealing).
    pub fn assigned(&self, shard: usize) -> usize {
        self.queues[shard].items.len()
    }

    /// The home indices statically assigned to `shard`, in claim order.
    pub fn assigned_homes(&self, shard: usize) -> &[u32] {
        &self.queues[shard].items
    }

    /// Estimated cost statically assigned to `shard`.
    pub fn assigned_cost(&self, shard: usize) -> u64 {
        self.queues[shard].suffix_cost[0]
    }

    /// Claim the next home for `shard`: its own queue first, then steal
    /// from the victim with the most remaining estimated cost. Returns
    /// `None` only when every queue is drained.
    pub fn claim(&self, shard: usize) -> Option<Claim> {
        if let Some(home) = self.queues[shard].claim() {
            return Some(Claim {
                home,
                stolen: false,
            });
        }
        loop {
            let victim = (0..self.queues.len())
                .filter(|&v| v != shard)
                .map(|v| (self.queues[v].remaining_cost(), v))
                .filter(|&(rem, _)| rem > 0)
                .max_by_key(|&(rem, v)| (rem, std::cmp::Reverse(v)))
                .map(|(_, v)| v);
            let v = victim?;
            // The victim may drain between the probe and the claim
            // (another thief won the race); re-scan until a claim lands
            // or no victim has work left.
            if let Some(home) = self.queues[v].claim() {
                return Some(Claim { home, stolen: true });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_covers_every_home() {
        let costs = vec![7, 3, 9, 1, 4, 4, 2, 8];
        let a = PartitionPlan::build(&costs, 3);
        let b = PartitionPlan::build(&costs, 3);
        let mut seen: Vec<u32> = Vec::new();
        for s in 0..3 {
            assert_eq!(a.assigned_homes(s), b.assigned_homes(s), "shard {s}");
            seen.extend_from_slice(a.assigned_homes(s));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn lpt_balances_cost_not_count() {
        // One heavy home and six light ones over two shards: the heavy
        // home gets a shard to itself; the light ones share the other.
        let costs = vec![100, 5, 5, 5, 5, 5, 5];
        let plan = PartitionPlan::build(&costs, 2);
        assert_eq!(plan.assigned_homes(0), &[0]);
        assert_eq!(plan.assigned(1), 6);
        assert_eq!(plan.assigned_cost(0), 100);
        assert_eq!(plan.assigned_cost(1), 30);
    }

    #[test]
    fn near_equal_costs_split_evenly() {
        let costs = vec![10, 11, 9, 10];
        let plan = PartitionPlan::build(&costs, 2);
        assert_eq!(plan.assigned(0), 2);
        assert_eq!(plan.assigned(1), 2);
    }

    #[test]
    fn owner_claims_before_stealing_and_steals_from_the_heaviest_victim() {
        let costs = vec![50, 40, 1, 1];
        let plan = PartitionPlan::build(&costs, 3);
        // LPT: shard0={0}, shard1={1}, shard2={2,3}.
        let first = plan.claim(2).unwrap();
        assert!(!first.stolen);
        assert_eq!(plan.assigned_homes(2)[0] as usize, first.home);
        // Drain shard 2, then its next claim must steal from shard 0
        // (remaining cost 50 > 40).
        assert!(!plan.claim(2).unwrap().stolen);
        let stolen = plan.claim(2).unwrap();
        assert!(stolen.stolen);
        assert_eq!(stolen.home, 0);
    }

    #[test]
    fn empty_plan_claims_nothing() {
        let plan = PartitionPlan::build(&[], 4);
        for s in 0..4 {
            assert_eq!(plan.claim(s), None);
        }
    }

    #[test]
    fn concurrent_claims_take_every_home_exactly_once() {
        use std::sync::Mutex;
        let costs: Vec<u64> = (0..200).map(|i| 1 + (i % 13)).collect();
        for shards in [1usize, 2, 4, 7] {
            let plan = PartitionPlan::build(&costs, shards);
            let claimed = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for shard in 0..shards {
                    let plan = &plan;
                    let claimed = &claimed;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(c) = plan.claim(shard) {
                            mine.push(c.home);
                        }
                        claimed.lock().unwrap().extend(mine);
                    });
                }
            });
            let mut all = claimed.into_inner().unwrap();
            all.sort_unstable();
            assert_eq!(all, (0..costs.len()).collect::<Vec<_>>(), "{shards} shards");
        }
    }
}
