//! DNS name knowledge used by the PortLess flow definition.
//!
//! §2.1 of the paper replaces the destination IP with its domain name,
//! obtained either from DNS requests seen in the trace or via reverse DNS
//! lookups against a fixed recursive resolver. We model both: observed
//! forward mappings are authoritative; reverse lookups may return a
//! canonical alias (e.g. CDN PTR names), which the paper notes can reduce
//! accuracy versus in-trace DNS.
//!
//! Every distinct domain string is interned to a dense `u32` id at
//! observation time, so the per-packet rule-match path can bucket flows by
//! [`RemoteId`](crate::flow::RemoteId) without ever materializing a
//! `String`. Ids are local to one table (and preserved by [`DnsTable::merge`]
//! only for domains already interned on the receiving side).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How a domain mapping was learned; forward (in-trace DNS) beats reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsSource {
    /// Observed an actual DNS response in the trace.
    Forward,
    /// Obtained via reverse (PTR) lookup; may be an alias.
    Reverse,
}

#[derive(Debug, Clone)]
struct Entry {
    domain: u32,
    source: DnsSource,
}

/// IP → domain-name table with a built-in domain interner.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "DnsTableRepr", into = "DnsTableRepr")]
pub struct DnsTable {
    entries: HashMap<Ipv4Addr, Entry>,
    domains: Vec<String>,
    index: HashMap<String, u32>,
}

/// Serialized form: the flat entry list (ids are rebuilt on load, so the
/// wire format is independent of interner state).
#[derive(Serialize, Deserialize)]
struct DnsTableRepr {
    entries: Vec<(Ipv4Addr, String, DnsSource)>,
}

impl From<DnsTableRepr> for DnsTable {
    fn from(repr: DnsTableRepr) -> Self {
        let mut t = DnsTable::new();
        for (ip, domain, source) in repr.entries {
            match source {
                DnsSource::Forward => t.observe_forward(ip, domain),
                DnsSource::Reverse => t.observe_reverse(ip, domain),
            }
        }
        t
    }
}

impl From<DnsTable> for DnsTableRepr {
    fn from(t: DnsTable) -> Self {
        DnsTableRepr {
            entries: t
                .entries_sorted()
                .into_iter()
                .map(|(ip, name, source)| (ip, name.to_string(), source))
                .collect(),
        }
    }
}

impl DnsTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a domain string, returning its dense id (stable for the
    /// lifetime of this table).
    pub fn intern_domain(&mut self, domain: &str) -> u32 {
        if let Some(&id) = self.index.get(domain) {
            return id;
        }
        let id = self.domains.len() as u32;
        self.domains.push(domain.to_string());
        self.index.insert(domain.to_string(), id);
        id
    }

    /// Id of an already-interned domain.
    pub fn domain_id(&self, domain: &str) -> Option<u32> {
        self.index.get(domain).copied()
    }

    /// The domain string behind an interned id.
    pub fn domain_str(&self, id: u32) -> &str {
        &self.domains[id as usize]
    }

    /// Record a mapping observed from an in-trace DNS response. Forward
    /// mappings always overwrite reverse ones.
    pub fn observe_forward(&mut self, ip: Ipv4Addr, domain: impl Into<String>) {
        let domain = self.intern_domain(&domain.into());
        self.entries.insert(
            ip,
            Entry {
                domain,
                source: DnsSource::Forward,
            },
        );
    }

    /// Record a mapping obtained via reverse lookup. Does not overwrite an
    /// existing forward mapping.
    pub fn observe_reverse(&mut self, ip: Ipv4Addr, domain: impl Into<String>) {
        let domain = self.intern_domain(&domain.into());
        let e = self.entries.entry(ip).or_insert(Entry {
            domain,
            source: DnsSource::Reverse,
        });
        if e.source == DnsSource::Reverse {
            e.domain = domain;
        }
    }

    /// Resolve an IP to the best-known name. Unknown IPs fall back to the
    /// dotted-quad string, which keeps PortLess at least as accurate as
    /// using raw IPs (§2.1 footnote 1).
    pub fn name_of(&self, ip: Ipv4Addr) -> String {
        self.entries
            .get(&ip)
            .map(|e| self.domains[e.domain as usize].clone())
            .unwrap_or_else(|| ip.to_string())
    }

    /// Resolve an IP to its interned remote id without allocating: known
    /// IPs yield their domain id, unknown IPs carry the address itself.
    /// This is the per-packet hot-path counterpart of [`DnsTable::name_of`].
    pub fn remote_id(&self, ip: Ipv4Addr) -> crate::flow::RemoteId {
        match self.entries.get(&ip) {
            Some(e) => crate::flow::RemoteId::Domain(e.domain),
            None => crate::flow::RemoteId::Ip(ip),
        }
    }

    /// Whether the table knows this IP.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        self.entries.contains_key(&ip)
    }

    /// How the mapping for `ip` was learned, if known.
    pub fn source_of(&self, ip: Ipv4Addr) -> Option<DnsSource> {
        self.entries.get(&ip).map(|e| e.source)
    }

    /// Number of known IPs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries as (ip, name, source), sorted by IP for deterministic
    /// serialization.
    pub fn entries_sorted(&self) -> Vec<(Ipv4Addr, &str, DnsSource)> {
        let mut out: Vec<(Ipv4Addr, &str, DnsSource)> = self
            .entries
            .iter()
            .map(|(ip, e)| (*ip, self.domains[e.domain as usize].as_str(), e.source))
            .collect();
        out.sort_by_key(|(ip, _, _)| u32::from(*ip));
        out
    }

    /// Merge another table into this one, respecting forward-beats-reverse.
    pub fn merge(&mut self, other: &DnsTable) {
        for (ip, e) in &other.entries {
            let domain = other.domains[e.domain as usize].clone();
            match e.source {
                DnsSource::Forward => self.observe_forward(*ip, domain),
                DnsSource::Reverse => self.observe_reverse(*ip, domain),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::RemoteId;

    const IP: Ipv4Addr = Ipv4Addr::new(142, 250, 80, 46);

    #[test]
    fn unknown_ip_falls_back_to_dotted_quad() {
        let t = DnsTable::new();
        assert_eq!(t.name_of(IP), "142.250.80.46");
        assert!(!t.contains(IP));
        assert_eq!(t.remote_id(IP), RemoteId::Ip(IP));
    }

    #[test]
    fn forward_mapping_wins_over_reverse() {
        let mut t = DnsTable::new();
        t.observe_reverse(IP, "lga34s32-in-f14.1e100.net");
        assert_eq!(t.name_of(IP), "lga34s32-in-f14.1e100.net");
        t.observe_forward(IP, "google.com");
        assert_eq!(t.name_of(IP), "google.com");
        // Reverse cannot displace forward.
        t.observe_reverse(IP, "alias.example");
        assert_eq!(t.name_of(IP), "google.com");
        assert_eq!(t.source_of(IP), Some(DnsSource::Forward));
    }

    #[test]
    fn reverse_updates_reverse() {
        let mut t = DnsTable::new();
        t.observe_reverse(IP, "a.example");
        t.observe_reverse(IP, "b.example");
        assert_eq!(t.name_of(IP), "b.example");
    }

    #[test]
    fn merge_respects_priority() {
        let mut a = DnsTable::new();
        a.observe_reverse(IP, "reverse.example");
        let mut b = DnsTable::new();
        b.observe_forward(IP, "forward.example");
        a.merge(&b);
        assert_eq!(a.name_of(IP), "forward.example");
        // Merging a reverse-only table cannot displace it.
        let mut c = DnsTable::new();
        c.observe_reverse(IP, "other.example");
        a.merge(&c);
        assert_eq!(a.name_of(IP), "forward.example");
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn interning_is_stable_and_shared() {
        let mut t = DnsTable::new();
        let a = t.intern_domain("iot.vendor.example");
        let b = t.intern_domain("iot.vendor.example");
        assert_eq!(a, b);
        assert_eq!(t.domain_str(a), "iot.vendor.example");
        t.observe_forward(IP, "iot.vendor.example");
        assert_eq!(t.remote_id(IP), RemoteId::Domain(a));
        assert_eq!(t.domain_id("iot.vendor.example"), Some(a));
        assert_eq!(t.domain_id("missing.example"), None);
    }

    #[test]
    fn two_ips_same_domain_share_remote_id() {
        let mut t = DnsTable::new();
        let other = Ipv4Addr::new(99, 9, 9, 9);
        t.observe_forward(IP, "cdn.example");
        t.observe_forward(other, "cdn.example");
        assert_eq!(t.remote_id(IP), t.remote_id(other));
        let unknown_a = Ipv4Addr::new(10, 0, 0, 1);
        let unknown_b = Ipv4Addr::new(10, 0, 0, 2);
        assert_ne!(t.remote_id(unknown_a), t.remote_id(unknown_b));
    }
}
