//! DNS name knowledge used by the PortLess flow definition.
//!
//! §2.1 of the paper replaces the destination IP with its domain name,
//! obtained either from DNS requests seen in the trace or via reverse DNS
//! lookups against a fixed recursive resolver. We model both: observed
//! forward mappings are authoritative; reverse lookups may return a
//! canonical alias (e.g. CDN PTR names), which the paper notes can reduce
//! accuracy versus in-trace DNS.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How a domain mapping was learned; forward (in-trace DNS) beats reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsSource {
    /// Observed an actual DNS response in the trace.
    Forward,
    /// Obtained via reverse (PTR) lookup; may be an alias.
    Reverse,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    domain: String,
    source: DnsSource,
}

/// IP → domain-name table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DnsTable {
    entries: HashMap<Ipv4Addr, Entry>,
}

impl DnsTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a mapping observed from an in-trace DNS response. Forward
    /// mappings always overwrite reverse ones.
    pub fn observe_forward(&mut self, ip: Ipv4Addr, domain: impl Into<String>) {
        self.entries.insert(
            ip,
            Entry {
                domain: domain.into(),
                source: DnsSource::Forward,
            },
        );
    }

    /// Record a mapping obtained via reverse lookup. Does not overwrite an
    /// existing forward mapping.
    pub fn observe_reverse(&mut self, ip: Ipv4Addr, domain: impl Into<String>) {
        let e = self.entries.entry(ip).or_insert(Entry {
            domain: String::new(),
            source: DnsSource::Reverse,
        });
        if e.source == DnsSource::Reverse {
            e.domain = domain.into();
        }
    }

    /// Resolve an IP to the best-known name. Unknown IPs fall back to the
    /// dotted-quad string, which keeps PortLess at least as accurate as
    /// using raw IPs (§2.1 footnote 1).
    pub fn name_of(&self, ip: Ipv4Addr) -> String {
        self.entries
            .get(&ip)
            .map(|e| e.domain.clone())
            .unwrap_or_else(|| ip.to_string())
    }

    /// Whether the table knows this IP.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        self.entries.contains_key(&ip)
    }

    /// How the mapping for `ip` was learned, if known.
    pub fn source_of(&self, ip: Ipv4Addr) -> Option<DnsSource> {
        self.entries.get(&ip).map(|e| e.source)
    }

    /// Number of known IPs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries as (ip, name, source), sorted by IP for deterministic
    /// serialization.
    pub fn entries_sorted(&self) -> Vec<(Ipv4Addr, &str, DnsSource)> {
        let mut out: Vec<(Ipv4Addr, &str, DnsSource)> = self
            .entries
            .iter()
            .map(|(ip, e)| (*ip, e.domain.as_str(), e.source))
            .collect();
        out.sort_by_key(|(ip, _, _)| u32::from(*ip));
        out
    }

    /// Merge another table into this one, respecting forward-beats-reverse.
    pub fn merge(&mut self, other: &DnsTable) {
        for (ip, e) in &other.entries {
            match e.source {
                DnsSource::Forward => self.observe_forward(*ip, e.domain.clone()),
                DnsSource::Reverse => self.observe_reverse(*ip, e.domain.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP: Ipv4Addr = Ipv4Addr::new(142, 250, 80, 46);

    #[test]
    fn unknown_ip_falls_back_to_dotted_quad() {
        let t = DnsTable::new();
        assert_eq!(t.name_of(IP), "142.250.80.46");
        assert!(!t.contains(IP));
    }

    #[test]
    fn forward_mapping_wins_over_reverse() {
        let mut t = DnsTable::new();
        t.observe_reverse(IP, "lga34s32-in-f14.1e100.net");
        assert_eq!(t.name_of(IP), "lga34s32-in-f14.1e100.net");
        t.observe_forward(IP, "google.com");
        assert_eq!(t.name_of(IP), "google.com");
        // Reverse cannot displace forward.
        t.observe_reverse(IP, "alias.example");
        assert_eq!(t.name_of(IP), "google.com");
        assert_eq!(t.source_of(IP), Some(DnsSource::Forward));
    }

    #[test]
    fn reverse_updates_reverse() {
        let mut t = DnsTable::new();
        t.observe_reverse(IP, "a.example");
        t.observe_reverse(IP, "b.example");
        assert_eq!(t.name_of(IP), "b.example");
    }

    #[test]
    fn merge_respects_priority() {
        let mut a = DnsTable::new();
        a.observe_reverse(IP, "reverse.example");
        let mut b = DnsTable::new();
        b.observe_forward(IP, "forward.example");
        a.merge(&b);
        assert_eq!(a.name_of(IP), "forward.example");
        // Merging a reverse-only table cannot displace it.
        let mut c = DnsTable::new();
        c.observe_reverse(IP, "other.example");
        a.merge(&c);
        assert_eq!(a.name_of(IP), "forward.example");
        assert_eq!(a.len(), 1);
    }
}
