//! Compact binary trace serialization ("fpcap").
//!
//! JSON traces are convenient but ~20× larger than needed; a two-week
//! testbed capture is hundreds of thousands of packets. This module
//! defines a small, versioned, length-prefixed binary container for
//! [`Trace`] with a magic header, so captures can be archived and shared
//! like pcap files. The DNS table rides along (the PortLess definition is
//! meaningless without it).
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! magic "FPC1" | u32 dns_count | dns entries | u64 pkt_count | packets
//! dns entry: u32 ip | u8 source | u16 name_len | name bytes
//! packet:    u64 ts_us | u16 device | u8 dir | u32 local_ip | u32 remote_ip
//!            | u16 lport | u16 rport | u8 proto | u8 flags | u8 tls
//!            | u16 size | u8 label
//! ```

use crate::dns::{DnsSource, DnsTable};
use crate::packet::{Direction, PacketRecord, TcpFlags, TlsVersion, TrafficClass, Transport};
use crate::time::SimTime;
use crate::trace::Trace;
use std::net::Ipv4Addr;

const MAGIC: &[u8; 4] = b"FPC1";

/// Errors from decoding an fpcap blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// Missing or wrong magic header.
    BadMagic,
    /// Blob ended before the declared contents.
    Truncated,
    /// A field held an invalid enum code.
    BadField(&'static str),
    /// A DNS name was not valid UTF-8.
    BadName,
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::BadMagic => write!(f, "not an fpcap blob"),
            PcapError::Truncated => write!(f, "fpcap blob truncated"),
            PcapError::BadField(what) => write!(f, "invalid {what} code"),
            PcapError::BadName => write!(f, "DNS name is not UTF-8"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Serialize a trace into the fpcap format.
pub fn encode(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + trace.len() * 34);
    out.extend_from_slice(MAGIC);

    let entries = trace.dns.entries_sorted();
    out.extend_from_slice(&(entries.len() as u32).to_be_bytes());
    for (ip, name, source) in entries {
        out.extend_from_slice(&u32::from(ip).to_be_bytes());
        out.push(match source {
            DnsSource::Forward => 0,
            DnsSource::Reverse => 1,
        });
        out.extend_from_slice(&(name.len() as u16).to_be_bytes());
        out.extend_from_slice(name.as_bytes());
    }

    out.extend_from_slice(&(trace.len() as u64).to_be_bytes());
    for p in &trace.packets {
        out.extend_from_slice(&p.ts.as_micros().to_be_bytes());
        out.extend_from_slice(&p.device.to_be_bytes());
        out.push(match p.direction {
            Direction::FromDevice => 0,
            Direction::ToDevice => 1,
        });
        out.extend_from_slice(&u32::from(p.local_ip).to_be_bytes());
        out.extend_from_slice(&u32::from(p.remote_ip).to_be_bytes());
        out.extend_from_slice(&p.local_port.to_be_bytes());
        out.extend_from_slice(&p.remote_port.to_be_bytes());
        out.push(p.transport.proto_number());
        out.push(p.tcp_flags.0);
        out.push(match p.tls {
            TlsVersion::None => 0,
            TlsVersion::Tls10 => 1,
            TlsVersion::Tls12 => 2,
            TlsVersion::Tls13 => 3,
        });
        out.extend_from_slice(&p.size.to_be_bytes());
        out.push(match p.label {
            TrafficClass::Control => 0,
            TrafficClass::Automated => 1,
            TrafficClass::Manual => 2,
        });
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PcapError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or(PcapError::Truncated)?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PcapError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, PcapError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, PcapError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PcapError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Deserialize an fpcap blob.
pub fn decode(bytes: &[u8]) -> Result<Trace, PcapError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(PcapError::BadMagic);
    }

    let mut dns = DnsTable::new();
    let n_dns = r.u32()? as usize;
    for _ in 0..n_dns {
        let ip = Ipv4Addr::from(r.u32()?);
        let source = r.u8()?;
        let name_len = r.u16()? as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec()).map_err(|_| PcapError::BadName)?;
        match source {
            0 => dns.observe_forward(ip, name),
            1 => dns.observe_reverse(ip, name),
            _ => return Err(PcapError::BadField("dns source")),
        }
    }

    let n_pkts = r.u64()? as usize;
    let mut packets = Vec::with_capacity(n_pkts.min(1 << 24));
    for _ in 0..n_pkts {
        let ts = SimTime::from_micros(r.u64()?);
        let device = r.u16()?;
        let direction = match r.u8()? {
            0 => Direction::FromDevice,
            1 => Direction::ToDevice,
            _ => return Err(PcapError::BadField("direction")),
        };
        let local_ip = Ipv4Addr::from(r.u32()?);
        let remote_ip = Ipv4Addr::from(r.u32()?);
        let local_port = r.u16()?;
        let remote_port = r.u16()?;
        let transport = match r.u8()? {
            6 => Transport::Tcp,
            17 => Transport::Udp,
            _ => return Err(PcapError::BadField("transport")),
        };
        let tcp_flags = TcpFlags(r.u8()?);
        let tls = match r.u8()? {
            0 => TlsVersion::None,
            1 => TlsVersion::Tls10,
            2 => TlsVersion::Tls12,
            3 => TlsVersion::Tls13,
            _ => return Err(PcapError::BadField("tls")),
        };
        let size = r.u16()?;
        let label = match r.u8()? {
            0 => TrafficClass::Control,
            1 => TrafficClass::Automated,
            2 => TrafficClass::Manual,
            _ => return Err(PcapError::BadField("label")),
        };
        packets.push(PacketRecord {
            ts,
            device,
            direction,
            local_ip,
            remote_ip,
            local_port,
            remote_port,
            transport,
            tcp_flags,
            tls,
            size,
            label,
        });
    }
    if r.pos != bytes.len() {
        return Err(PcapError::Truncated); // trailing garbage
    }
    Ok(Trace { packets, dns })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.dns
            .observe_forward(Ipv4Addr::new(34, 1, 2, 3), "a.vendor.example");
        t.dns
            .observe_reverse(Ipv4Addr::new(99, 9, 9, 9), "ptr.example");
        for i in 0..50u64 {
            t.push(PacketRecord {
                ts: SimTime::from_millis(i * 137),
                device: (i % 3) as u16,
                direction: if i % 2 == 0 {
                    Direction::FromDevice
                } else {
                    Direction::ToDevice
                },
                local_ip: Ipv4Addr::new(192, 168, 1, 10),
                remote_ip: Ipv4Addr::new(34, 1, 2, 3),
                local_port: 40000 + i as u16,
                remote_port: 443,
                transport: if i % 5 == 0 {
                    Transport::Udp
                } else {
                    Transport::Tcp
                },
                tcp_flags: TcpFlags((i % 32) as u8),
                tls: match i % 4 {
                    0 => TlsVersion::None,
                    1 => TlsVersion::Tls10,
                    2 => TlsVersion::Tls12,
                    _ => TlsVersion::Tls13,
                },
                size: 60 + (i * 13 % 1400) as u16,
                label: match i % 3 {
                    0 => TrafficClass::Control,
                    1 => TrafficClass::Automated,
                    _ => TrafficClass::Manual,
                },
            });
        }
        t.finish();
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample_trace();
        let blob = encode(&t);
        let back = decode(&blob).unwrap();
        assert_eq!(back.packets, t.packets);
        assert_eq!(
            back.dns.name_of(Ipv4Addr::new(34, 1, 2, 3)),
            "a.vendor.example"
        );
        assert_eq!(back.dns.name_of(Ipv4Addr::new(99, 9, 9, 9)), "ptr.example");
        assert_eq!(back.dns.len(), 2);
    }

    #[test]
    fn much_smaller_than_json() {
        let t = sample_trace();
        let blob = encode(&t);
        let json = serde_json::to_vec(&t).unwrap();
        assert!(
            blob.len() * 3 < json.len(),
            "fpcap {} vs json {}",
            blob.len(),
            json.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE").unwrap_err(), PcapError::BadMagic);
        assert_eq!(decode(b"").unwrap_err(), PcapError::Truncated);
    }

    #[test]
    fn truncation_detected_everywhere() {
        let blob = encode(&sample_trace());
        for cut in [4usize, 8, 20, blob.len() / 2, blob.len() - 1] {
            assert!(decode(&blob[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut blob = encode(&sample_trace());
        blob.push(0);
        assert_eq!(decode(&blob).unwrap_err(), PcapError::Truncated);
    }

    #[test]
    fn corrupt_enum_codes_rejected() {
        let t = sample_trace();
        let mut blob = encode(&t);
        // Corrupt the first packet's direction byte: header is
        // 4 (magic) + 4 (dns count) + dns entries + 8 (pkt count), then
        // ts (8) + device (2), direction next.
        let dns_bytes: usize = t
            .dns
            .entries_sorted()
            .iter()
            .map(|(_, name, _)| 4 + 1 + 2 + name.len())
            .sum();
        let dir_off = 4 + 4 + dns_bytes + 8 + 8 + 2;
        blob[dir_off] = 9;
        assert_eq!(decode(&blob).unwrap_err(), PcapError::BadField("direction"));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let back = decode(&encode(&t)).unwrap();
        assert!(back.is_empty());
        assert!(back.dns.is_empty());
    }
}
