//! Packet and flow model for FIAT.
//!
//! FIAT is a passive system: everything it learns, it learns from packet
//! *metadata* — sizes, endpoints, ports, protocol, TCP flags, TLS version,
//! and timing. This crate defines:
//!
//! - [`time`]: simulated time (`SimTime`, `SimDuration`) used everywhere;
//!   deterministic, microsecond resolution, no wall clock.
//! - [`packet`]: the packet metadata record ([`PacketRecord`]) and its
//!   vocabulary (direction, transport, TCP flags, TLS version, labels).
//! - [`headers`]: Ethernet II / IPv4 / TCP / UDP wire-format synthesis and
//!   parsing with real checksums, so traces can round-trip through bytes
//!   exactly as a capture tool would see them.
//! - [`flow`]: the paper's two flow definitions — "Classic" 6-tuple and
//!   "PortLess" (ports dropped, destination IP replaced by domain name).
//! - [`dns`]: the DNS table used for the PortLess mapping, including
//!   reverse lookups and domain aliases (§2.1 footnote 1).
//! - [`tls`]: passive ClientHello sniffing — how the proxy derives the
//!   TLS-version event feature from record bytes (incl. the
//!   supported_versions extension for TLS 1.3).
//! - [`trace`]: a labeled trace container with serde support.
//! - [`pcap`]: a compact, versioned binary trace format ("fpcap") for
//!   archiving and sharing captures.

pub mod dns;
pub mod flow;
pub mod headers;
pub mod packet;
pub mod pcap;
pub mod time;
pub mod tls;
pub mod trace;

pub use dns::DnsTable;
pub use flow::{FlowDef, FlowKey, InternedFlowKey, RemoteId};
pub use packet::{Direction, PacketRecord, TcpFlags, TlsVersion, TrafficClass, Transport};
pub use time::{SimDuration, SimTime};
pub use trace::Trace;
