//! Packet metadata records — the unit of observation for FIAT.
//!
//! The proxy never inspects payloads (they are encrypted anyway); a packet
//! is fully described for FIAT's purposes by the fields of [`PacketRecord`],
//! which mirror what §2.1 of the paper records per packet: arrival
//! timestamp, size, endpoints, transport protocol and ports, plus the TCP
//! flags and TLS version used by the §4 event features.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol.
    Udp,
}

impl Transport {
    /// IANA protocol number (6 = TCP, 17 = UDP).
    pub fn proto_number(self) -> u8 {
        match self {
            Transport::Tcp => 6,
            Transport::Udp => 17,
        }
    }
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transport::Tcp => write!(f, "TCP"),
            Transport::Udp => write!(f, "UDP"),
        }
    }
}

/// TCP header flags, stored as the low 8 bits of the flags field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag bit.
    pub const FIN: u8 = 0x01;
    /// SYN flag bit.
    pub const SYN: u8 = 0x02;
    /// RST flag bit.
    pub const RST: u8 = 0x04;
    /// PSH flag bit.
    pub const PSH: u8 = 0x08;
    /// ACK flag bit.
    pub const ACK: u8 = 0x10;

    /// Plain ACK (data or pure ack).
    pub fn ack() -> Self {
        TcpFlags(Self::ACK)
    }

    /// SYN (connection open).
    pub fn syn() -> Self {
        TcpFlags(Self::SYN)
    }

    /// SYN+ACK (connection accept).
    pub fn syn_ack() -> Self {
        TcpFlags(Self::SYN | Self::ACK)
    }

    /// PSH+ACK (data push).
    pub fn psh_ack() -> Self {
        TcpFlags(Self::PSH | Self::ACK)
    }

    /// FIN+ACK (close).
    pub fn fin_ack() -> Self {
        TcpFlags(Self::FIN | Self::ACK)
    }

    /// Whether a given flag bit is set.
    pub fn has(self, bit: u8) -> bool {
        self.0 & bit != 0
    }
}

/// TLS protocol version observed in a ClientHello/record header, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TlsVersion {
    /// No TLS observed on this packet.
    None,
    /// TLS 1.0 (0x0301).
    Tls10,
    /// TLS 1.2 (0x0303).
    Tls12,
    /// TLS 1.3 (negotiated via supported_versions).
    Tls13,
}

impl TlsVersion {
    /// Numeric code used as an ML feature (0 = none).
    pub fn feature_code(self) -> f64 {
        match self {
            TlsVersion::None => 0.0,
            TlsVersion::Tls10 => 1.0,
            TlsVersion::Tls12 => 2.0,
            TlsVersion::Tls13 => 3.0,
        }
    }
}

/// Direction of a packet relative to the IoT device it concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Sent by the IoT device toward the cloud/phone.
    FromDevice,
    /// Received by the IoT device.
    ToDevice,
}

impl Direction {
    /// Numeric code used as an ML feature.
    pub fn feature_code(self) -> f64 {
        match self {
            Direction::FromDevice => 0.0,
            Direction::ToDevice => 1.0,
        }
    }
}

/// Ground-truth label of the traffic class (§2): control traffic keeps the
/// device operating, automated traffic is triggered by routines (IFTTT,
/// schedules), manual traffic by a human in a companion app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Device housekeeping: keep-alives, telemetry, NTP, DNS.
    Control,
    /// Routine-triggered commands ("turn on the heat at 6pm").
    Automated,
    /// Human-triggered commands via the companion app.
    Manual,
}

impl TrafficClass {
    /// All classes in a fixed order.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::Control,
        TrafficClass::Automated,
        TrafficClass::Manual,
    ];
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficClass::Control => write!(f, "control"),
            TrafficClass::Automated => write!(f, "automated"),
            TrafficClass::Manual => write!(f, "manual"),
        }
    }
}

/// One observed packet, as recorded by the capture point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Arrival timestamp at the capture point.
    pub ts: SimTime,
    /// Index of the IoT device this packet belongs to (capture is per
    /// device MAC, as in the testbed).
    pub device: u16,
    /// Direction relative to the IoT device.
    pub direction: Direction,
    /// Local (device-side) IPv4 address.
    pub local_ip: Ipv4Addr,
    /// Remote (cloud/phone-side) IPv4 address.
    pub remote_ip: Ipv4Addr,
    /// Local port.
    pub local_port: u16,
    /// Remote port.
    pub remote_port: u16,
    /// Transport protocol.
    pub transport: Transport,
    /// TCP flags (zeroed for UDP).
    pub tcp_flags: TcpFlags,
    /// TLS version if the packet carries a TLS record, else `None`.
    pub tls: TlsVersion,
    /// Total packet size in bytes (as on the wire).
    pub size: u16,
    /// Ground-truth label (available in testbed traces; the proxy does not
    /// see this).
    pub label: TrafficClass,
}

impl PacketRecord {
    /// Source IP as seen on the wire.
    pub fn src_ip(&self) -> Ipv4Addr {
        match self.direction {
            Direction::FromDevice => self.local_ip,
            Direction::ToDevice => self.remote_ip,
        }
    }

    /// Destination IP as seen on the wire.
    pub fn dst_ip(&self) -> Ipv4Addr {
        match self.direction {
            Direction::FromDevice => self.remote_ip,
            Direction::ToDevice => self.local_ip,
        }
    }

    /// Source port as seen on the wire.
    pub fn src_port(&self) -> u16 {
        match self.direction {
            Direction::FromDevice => self.local_port,
            Direction::ToDevice => self.remote_port,
        }
    }

    /// Destination port as seen on the wire.
    pub fn dst_port(&self) -> u16 {
        match self.direction {
            Direction::FromDevice => self.remote_port,
            Direction::ToDevice => self.local_port,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(direction: Direction) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_secs(1),
            device: 0,
            direction,
            local_ip: Ipv4Addr::new(192, 168, 1, 10),
            remote_ip: Ipv4Addr::new(34, 1, 2, 3),
            local_port: 50000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::psh_ack(),
            tls: TlsVersion::Tls12,
            size: 235,
            label: TrafficClass::Control,
        }
    }

    #[test]
    fn wire_view_from_device() {
        let p = pkt(Direction::FromDevice);
        assert_eq!(p.src_ip(), Ipv4Addr::new(192, 168, 1, 10));
        assert_eq!(p.dst_ip(), Ipv4Addr::new(34, 1, 2, 3));
        assert_eq!(p.src_port(), 50000);
        assert_eq!(p.dst_port(), 443);
    }

    #[test]
    fn wire_view_to_device() {
        let p = pkt(Direction::ToDevice);
        assert_eq!(p.src_ip(), Ipv4Addr::new(34, 1, 2, 3));
        assert_eq!(p.dst_ip(), Ipv4Addr::new(192, 168, 1, 10));
        assert_eq!(p.src_port(), 443);
        assert_eq!(p.dst_port(), 50000);
    }

    #[test]
    fn tcp_flags_bits() {
        assert!(TcpFlags::syn_ack().has(TcpFlags::SYN));
        assert!(TcpFlags::syn_ack().has(TcpFlags::ACK));
        assert!(!TcpFlags::syn().has(TcpFlags::ACK));
        assert!(TcpFlags::fin_ack().has(TcpFlags::FIN));
        assert!(!TcpFlags::ack().has(TcpFlags::RST));
    }

    #[test]
    fn feature_codes_distinct() {
        let codes = [
            TlsVersion::None.feature_code(),
            TlsVersion::Tls10.feature_code(),
            TlsVersion::Tls12.feature_code(),
            TlsVersion::Tls13.feature_code(),
        ];
        for i in 0..codes.len() {
            for j in i + 1..codes.len() {
                assert_ne!(codes[i], codes[j]);
            }
        }
        assert_ne!(
            Direction::FromDevice.feature_code(),
            Direction::ToDevice.feature_code()
        );
    }

    #[test]
    fn proto_numbers() {
        assert_eq!(Transport::Tcp.proto_number(), 6);
        assert_eq!(Transport::Udp.proto_number(), 17);
    }
}
