//! Deterministic simulated time.
//!
//! All FIAT components run on simulated time so that every experiment is
//! reproducible bit-for-bit. `SimTime` is an absolute instant, `SimDuration`
//! a span; both are microsecond-resolution and wrap 64-bit counters.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant in simulated time (microseconds since sim start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since sim start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since sim start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since sim start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`; saturates to zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Microseconds in the span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in the span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in the span as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds in the span as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Absolute difference between two spans.
    pub fn abs_diff(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.abs_diff(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Saturating difference: `earlier - later` is zero, never a panic or
    /// a wrap. Consumers comparing against a gap/window threshold thus
    /// read any backwards-in-time instant as "gap zero" — which means
    /// state that tracks a *latest-seen* instant (an event's `end`, the
    /// lockout episode times) must be maintained as a high-water mark
    /// (`max`), or a reordered packet silently rewinds it. Use
    /// [`SimTime::checked_sub`] where "in the past" must be distinguished
    /// from "now".
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_mins(2).as_micros(), 120_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 10_500);
        assert_eq!((t - SimTime::from_secs(10)).as_millis(), 500);
        // Saturating: earlier - later = 0.
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(5),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_secs(3).abs_diff(SimDuration::from_secs(5)),
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn display() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }
}
