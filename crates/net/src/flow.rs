//! The paper's two flow definitions (§2.1).
//!
//! Packets are assigned to buckets; predictability is judged per bucket.
//!
//! - **Classic**: the 6-tuple `<ip_src, ip_dst, port_src, port_dst, proto,
//!   size>`.
//! - **PortLess**: drops both ports and replaces the destination IP with
//!   its domain name, because many IoT devices talk to the same endpoint
//!   from ever-changing ephemeral ports. The bucket becomes
//!   `<device-side endpoint, remote domain, proto, size>` — we keep packet
//!   direction in the key so that a request and its same-sized response do
//!   not alias.

use crate::dns::DnsTable;
use crate::packet::PacketRecord;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Which flow definition to bucket with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowDef {
    /// 6-tuple with ports and raw IPs.
    Classic,
    /// Ports dropped, remote IP replaced by its domain name.
    PortLess,
}

impl FlowDef {
    /// Both definitions, for sweeps.
    pub const ALL: [FlowDef; 2] = [FlowDef::Classic, FlowDef::PortLess];
}

impl std::fmt::Display for FlowDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowDef::Classic => write!(f, "Classic"),
            FlowDef::PortLess => write!(f, "PortLess"),
        }
    }
}

/// A bucket key under one of the two flow definitions.
///
/// Ordered (derive order: variant, then fields lexicographically) so rule
/// sets can be exported in a canonical sort for deterministic snapshots.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FlowKey {
    /// Classic 6-tuple.
    Classic {
        /// Source IP as on the wire.
        src_ip: Ipv4Addr,
        /// Destination IP as on the wire.
        dst_ip: Ipv4Addr,
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// IANA protocol number.
        proto: u8,
        /// Packet size.
        size: u16,
    },
    /// PortLess 4-tuple (plus direction to avoid request/response aliasing).
    PortLess {
        /// Remote endpoint domain name (or dotted quad if unknown).
        remote: String,
        /// IANA protocol number.
        proto: u8,
        /// Packet size.
        size: u16,
        /// Direction code (0 = from device, 1 = to device).
        dir: u8,
    },
}

impl FlowKey {
    /// Bucket a packet under the given flow definition.
    ///
    /// Allocates a `String` for the PortLess remote name; per-packet code
    /// (rule matching, predictability bucketing) should use
    /// [`InternedFlowKey::of`] instead, which is allocation-free.
    pub fn of(def: FlowDef, pkt: &PacketRecord, dns: &DnsTable) -> FlowKey {
        match def {
            FlowDef::Classic => FlowKey::Classic {
                src_ip: pkt.src_ip(),
                dst_ip: pkt.dst_ip(),
                src_port: pkt.src_port(),
                dst_port: pkt.dst_port(),
                proto: pkt.transport.proto_number(),
                size: pkt.size,
            },
            FlowDef::PortLess => FlowKey::PortLess {
                remote: dns.name_of(pkt.remote_ip),
                proto: pkt.transport.proto_number(),
                size: pkt.size,
                dir: pkt.direction.feature_code() as u8,
            },
        }
    }

    /// Convert to the interned form, registering the PortLess remote name
    /// in `dns`'s interner. A remote string that parses as a dotted quad
    /// and is not a known domain is treated as the IP fallback, matching
    /// [`DnsTable::name_of`]'s unknown-IP behavior.
    pub fn intern(&self, dns: &mut DnsTable) -> InternedFlowKey {
        match self {
            FlowKey::Classic {
                src_ip,
                dst_ip,
                src_port,
                dst_port,
                proto,
                size,
            } => InternedFlowKey::Classic {
                src_ip: *src_ip,
                dst_ip: *dst_ip,
                src_port: *src_port,
                dst_port: *dst_port,
                proto: *proto,
                size: *size,
            },
            FlowKey::PortLess {
                remote,
                proto,
                size,
                dir,
            } => {
                let remote = match (dns.domain_id(remote), remote.parse::<Ipv4Addr>()) {
                    (Some(id), _) => RemoteId::Domain(id),
                    (None, Ok(ip)) => RemoteId::Ip(ip),
                    (None, Err(_)) => RemoteId::Domain(dns.intern_domain(remote)),
                };
                InternedFlowKey::PortLess {
                    remote,
                    proto: *proto,
                    size: *size,
                    dir: *dir,
                }
            }
        }
    }
}

/// An interned remote endpoint: the dense id of a known domain (from the
/// [`DnsTable`] interner), or the raw address for IPs the table has never
/// resolved. `Copy`, so flow keys built from it never touch the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RemoteId {
    /// Interned domain id (resolve with [`DnsTable::domain_str`]).
    Domain(u32),
    /// Unresolved IP fallback (distinct IPs stay distinct, exactly like
    /// the dotted-quad fallback of [`DnsTable::name_of`]).
    Ip(Ipv4Addr),
}

/// The allocation-free (interned) form of [`FlowKey`], used on the
/// per-packet hot path: rule-table lookups and predictability bucketing.
/// Ids are only meaningful relative to the [`DnsTable`] that produced
/// them; [`FlowKey`] remains the stable stringly-keyed form for
/// serialization, audit encoding, and cross-table comparison. Ordered
/// (derive order) so table-wide operations — LRU stamp assignment at
/// learn time, eviction tie-breaks — can iterate deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InternedFlowKey {
    /// Classic 6-tuple (identical to [`FlowKey::Classic`]).
    Classic {
        /// Source IP as on the wire.
        src_ip: Ipv4Addr,
        /// Destination IP as on the wire.
        dst_ip: Ipv4Addr,
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// IANA protocol number.
        proto: u8,
        /// Packet size.
        size: u16,
    },
    /// PortLess 4-tuple with the remote interned.
    PortLess {
        /// Interned remote endpoint.
        remote: RemoteId,
        /// IANA protocol number.
        proto: u8,
        /// Packet size.
        size: u16,
        /// Direction code (0 = from device, 1 = to device).
        dir: u8,
    },
}

impl InternedFlowKey {
    /// Bucket a packet under the given flow definition without heap
    /// allocation (the interned counterpart of [`FlowKey::of`]).
    #[inline]
    pub fn of(def: FlowDef, pkt: &PacketRecord, dns: &DnsTable) -> InternedFlowKey {
        match def {
            FlowDef::Classic => InternedFlowKey::Classic {
                src_ip: pkt.src_ip(),
                dst_ip: pkt.dst_ip(),
                src_port: pkt.src_port(),
                dst_port: pkt.dst_port(),
                proto: pkt.transport.proto_number(),
                size: pkt.size,
            },
            FlowDef::PortLess => InternedFlowKey::PortLess {
                remote: dns.remote_id(pkt.remote_ip),
                proto: pkt.transport.proto_number(),
                size: pkt.size,
                dir: pkt.direction.feature_code() as u8,
            },
        }
    }

    /// Resolve back to the stringly-keyed [`FlowKey`] (allocates; for
    /// display and audit paths only).
    pub fn resolve(&self, dns: &DnsTable) -> FlowKey {
        match self {
            InternedFlowKey::Classic {
                src_ip,
                dst_ip,
                src_port,
                dst_port,
                proto,
                size,
            } => FlowKey::Classic {
                src_ip: *src_ip,
                dst_ip: *dst_ip,
                src_port: *src_port,
                dst_port: *dst_port,
                proto: *proto,
                size: *size,
            },
            InternedFlowKey::PortLess {
                remote,
                proto,
                size,
                dir,
            } => FlowKey::PortLess {
                remote: match remote {
                    RemoteId::Domain(id) => dns.domain_str(*id).to_string(),
                    RemoteId::Ip(ip) => ip.to_string(),
                },
                proto: *proto,
                size: *size,
                dir: *dir,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Direction, TcpFlags, TlsVersion, TrafficClass, Transport};
    use crate::time::SimTime;

    fn pkt(remote_port: u16, size: u16, direction: Direction) -> PacketRecord {
        PacketRecord {
            ts: SimTime::ZERO,
            device: 0,
            direction,
            local_ip: Ipv4Addr::new(192, 168, 1, 20),
            remote_ip: Ipv4Addr::new(52, 84, 1, 1),
            local_port: 49152,
            remote_port,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::ack(),
            tls: TlsVersion::Tls12,
            size,
            label: TrafficClass::Control,
        }
    }

    #[test]
    fn classic_distinguishes_ports() {
        let dns = DnsTable::new();
        let a = FlowKey::of(
            FlowDef::Classic,
            &pkt(443, 100, Direction::FromDevice),
            &dns,
        );
        let b = FlowKey::of(
            FlowDef::Classic,
            &pkt(8443, 100, Direction::FromDevice),
            &dns,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn portless_ignores_ports() {
        let dns = DnsTable::new();
        let a = FlowKey::of(
            FlowDef::PortLess,
            &pkt(443, 100, Direction::FromDevice),
            &dns,
        );
        let b = FlowKey::of(
            FlowDef::PortLess,
            &pkt(8443, 100, Direction::FromDevice),
            &dns,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn portless_uses_domain_name() {
        let mut dns = DnsTable::new();
        dns.observe_forward(Ipv4Addr::new(52, 84, 1, 1), "iot.vendor.example");
        let k = FlowKey::of(
            FlowDef::PortLess,
            &pkt(443, 100, Direction::FromDevice),
            &dns,
        );
        match k {
            FlowKey::PortLess { remote, .. } => assert_eq!(remote, "iot.vendor.example"),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn portless_same_domain_different_ip_aliases_together() {
        // A device switching between two CDN IPs of the same service keeps
        // one PortLess bucket — the motivating case for the definition.
        let mut dns = DnsTable::new();
        dns.observe_forward(Ipv4Addr::new(52, 84, 1, 1), "iot.vendor.example");
        dns.observe_forward(Ipv4Addr::new(99, 9, 9, 9), "iot.vendor.example");
        let mut p2 = pkt(443, 100, Direction::FromDevice);
        p2.remote_ip = Ipv4Addr::new(99, 9, 9, 9);
        let a = FlowKey::of(
            FlowDef::PortLess,
            &pkt(443, 100, Direction::FromDevice),
            &dns,
        );
        let b = FlowKey::of(FlowDef::PortLess, &p2, &dns);
        assert_eq!(a, b);
        // Classic keeps them apart.
        let ca = FlowKey::of(
            FlowDef::Classic,
            &pkt(443, 100, Direction::FromDevice),
            &dns,
        );
        let cb = FlowKey::of(FlowDef::Classic, &p2, &dns);
        assert_ne!(ca, cb);
    }

    #[test]
    fn size_always_distinguishes() {
        let dns = DnsTable::new();
        for def in FlowDef::ALL {
            let a = FlowKey::of(def, &pkt(443, 100, Direction::FromDevice), &dns);
            let b = FlowKey::of(def, &pkt(443, 101, Direction::FromDevice), &dns);
            assert_ne!(a, b, "{def}");
        }
    }

    #[test]
    fn direction_distinguishes_portless() {
        let dns = DnsTable::new();
        let a = FlowKey::of(
            FlowDef::PortLess,
            &pkt(443, 100, Direction::FromDevice),
            &dns,
        );
        let b = FlowKey::of(FlowDef::PortLess, &pkt(443, 100, Direction::ToDevice), &dns);
        assert_ne!(a, b);
    }
}
