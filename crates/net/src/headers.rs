//! Wire-format synthesis and parsing for Ethernet II / IPv4 / TCP / UDP.
//!
//! The simulator moves [`crate::packet::PacketRecord`]s, but the capture
//! path (ARP-spoof intercept, NFQUEUE model) operates on real bytes. These
//! builders produce frames that parse back exactly, with valid IPv4 and
//! TCP/UDP checksums, so the interception layer exercises the same parsing
//! logic a deployment on live traffic would.

use crate::packet::{TcpFlags, Transport};
use bytes::{BufMut, BytesMut};
use std::net::Ipv4Addr;

/// Ethernet II header length.
pub const ETH_HDR_LEN: usize = 14;
/// Minimal IPv4 header length (no options).
pub const IPV4_HDR_LEN: usize = 20;
/// Minimal TCP header length (no options).
pub const TCP_HDR_LEN: usize = 20;
/// UDP header length.
pub const UDP_HDR_LEN: usize = 8;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for ARP.
pub const ETHERTYPE_ARP: u16 = 0x0806;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// Broadcast address ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Deterministic locally-administered MAC for a device index.
    pub fn for_device(idx: u16) -> MacAddr {
        let [hi, lo] = idx.to_be_bytes();
        MacAddr([0x02, 0xf1, 0xa7, 0x00, hi, lo])
    }
}

/// Errors from frame parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Frame shorter than the headers it claims.
    Truncated,
    /// EtherType is not IPv4.
    NotIpv4,
    /// IPv4 version field is not 4 or header length invalid.
    BadIpHeader,
    /// IPv4 header checksum mismatch.
    BadIpChecksum,
    /// Transport protocol is neither TCP nor UDP.
    UnsupportedProtocol(u8),
    /// TCP/UDP checksum mismatch.
    BadTransportChecksum,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "frame truncated"),
            ParseError::NotIpv4 => write!(f, "not an IPv4 frame"),
            ParseError::BadIpHeader => write!(f, "malformed IPv4 header"),
            ParseError::BadIpChecksum => write!(f, "IPv4 header checksum mismatch"),
            ParseError::UnsupportedProtocol(p) => write!(f, "unsupported IP protocol {p}"),
            ParseError::BadTransportChecksum => write!(f, "TCP/UDP checksum mismatch"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed frame: everything FIAT's capture point needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFrame {
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Destination MAC.
    pub dst_mac: MacAddr,
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Transport protocol.
    pub transport: Transport,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// TCP flags (zero for UDP).
    pub tcp_flags: TcpFlags,
    /// Payload byte length.
    pub payload_len: usize,
    /// Total frame length.
    pub frame_len: usize,
}

/// RFC 1071 internet checksum over `data`, with an initial partial sum.
fn checksum(data: &[u8], initial: u32) -> u16 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, len: u16) -> u32 {
    let s = src.octets();
    let d = dst.octets();
    u16::from_be_bytes([s[0], s[1]]) as u32
        + u16::from_be_bytes([s[2], s[3]]) as u32
        + u16::from_be_bytes([d[0], d[1]]) as u32
        + u16::from_be_bytes([d[2], d[3]]) as u32
        + proto as u32
        + len as u32
}

/// Parameters for synthesizing one frame.
#[derive(Debug, Clone)]
pub struct FrameSpec {
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Destination MAC.
    pub dst_mac: MacAddr,
    /// Source IPv4.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4.
    pub dst_ip: Ipv4Addr,
    /// Transport protocol.
    pub transport: Transport,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// TCP flags (ignored for UDP).
    pub tcp_flags: TcpFlags,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// IPv4 TTL.
    pub ttl: u8,
}

impl FrameSpec {
    /// Total on-wire frame length this spec will produce.
    pub fn frame_len(&self) -> usize {
        let transport_hdr = match self.transport {
            Transport::Tcp => TCP_HDR_LEN,
            Transport::Udp => UDP_HDR_LEN,
        };
        ETH_HDR_LEN + IPV4_HDR_LEN + transport_hdr + self.payload.len()
    }
}

/// Build a complete Ethernet II frame with valid checksums.
pub fn build_frame(spec: &FrameSpec) -> Vec<u8> {
    let transport_hdr = match spec.transport {
        Transport::Tcp => TCP_HDR_LEN,
        Transport::Udp => UDP_HDR_LEN,
    };
    let ip_total_len = (IPV4_HDR_LEN + transport_hdr + spec.payload.len()) as u16;
    let mut buf = BytesMut::with_capacity(ETH_HDR_LEN + ip_total_len as usize);

    // Ethernet II.
    buf.put_slice(&spec.dst_mac.0);
    buf.put_slice(&spec.src_mac.0);
    buf.put_u16(ETHERTYPE_IPV4);

    // IPv4 header.
    let ip_start = buf.len();
    buf.put_u8(0x45); // version 4, IHL 5
    buf.put_u8(0); // DSCP/ECN
    buf.put_u16(ip_total_len);
    buf.put_u16(0); // identification
    buf.put_u16(0x4000); // flags: DF
    buf.put_u8(spec.ttl);
    buf.put_u8(spec.transport.proto_number());
    buf.put_u16(0); // checksum placeholder
    buf.put_slice(&spec.src_ip.octets());
    buf.put_slice(&spec.dst_ip.octets());
    let ip_csum = checksum(&buf[ip_start..ip_start + IPV4_HDR_LEN], 0);
    buf[ip_start + 10..ip_start + 12].copy_from_slice(&ip_csum.to_be_bytes());

    // Transport header + payload.
    let t_start = buf.len();
    let t_len = (transport_hdr + spec.payload.len()) as u16;
    match spec.transport {
        Transport::Tcp => {
            buf.put_u16(spec.src_port);
            buf.put_u16(spec.dst_port);
            buf.put_u32(1); // seq
            buf.put_u32(1); // ack
            buf.put_u8(0x50); // data offset 5
            buf.put_u8(spec.tcp_flags.0);
            buf.put_u16(0xffff); // window
            buf.put_u16(0); // checksum placeholder
            buf.put_u16(0); // urgent
            buf.put_slice(&spec.payload);
            let csum = checksum(
                &buf[t_start..],
                pseudo_header_sum(spec.src_ip, spec.dst_ip, 6, t_len),
            );
            buf[t_start + 16..t_start + 18].copy_from_slice(&csum.to_be_bytes());
        }
        Transport::Udp => {
            buf.put_u16(spec.src_port);
            buf.put_u16(spec.dst_port);
            buf.put_u16(t_len);
            buf.put_u16(0); // checksum placeholder
            buf.put_slice(&spec.payload);
            let mut csum = checksum(
                &buf[t_start..],
                pseudo_header_sum(spec.src_ip, spec.dst_ip, 17, t_len),
            );
            if csum == 0 {
                csum = 0xffff; // RFC 768: transmitted as all-ones
            }
            buf[t_start + 6..t_start + 8].copy_from_slice(&csum.to_be_bytes());
        }
    }
    buf.to_vec()
}

/// Parse an Ethernet II frame built by [`build_frame`] (or any plain
/// IPv4/TCP/UDP frame without IP options), verifying checksums.
pub fn parse_frame(frame: &[u8]) -> Result<ParsedFrame, ParseError> {
    if frame.len() < ETH_HDR_LEN + IPV4_HDR_LEN {
        return Err(ParseError::Truncated);
    }
    let mut dst_mac = [0u8; 6];
    let mut src_mac = [0u8; 6];
    dst_mac.copy_from_slice(&frame[0..6]);
    src_mac.copy_from_slice(&frame[6..12]);
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != ETHERTYPE_IPV4 {
        return Err(ParseError::NotIpv4);
    }
    let ip = &frame[ETH_HDR_LEN..];
    if ip[0] >> 4 != 4 {
        return Err(ParseError::BadIpHeader);
    }
    let ihl = ((ip[0] & 0x0f) as usize) * 4;
    if ihl < IPV4_HDR_LEN || ip.len() < ihl {
        return Err(ParseError::BadIpHeader);
    }
    if checksum(&ip[..ihl], 0) != 0 {
        return Err(ParseError::BadIpChecksum);
    }
    let total_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    if ip.len() < total_len || total_len < ihl {
        return Err(ParseError::Truncated);
    }
    let proto = ip[9];
    let src_ip = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
    let dst_ip = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);
    let transport_bytes = &ip[ihl..total_len];
    let t_len = transport_bytes.len() as u16;

    let (transport, src_port, dst_port, tcp_flags, payload_len) = match proto {
        6 => {
            if transport_bytes.len() < TCP_HDR_LEN {
                return Err(ParseError::Truncated);
            }
            if checksum(transport_bytes, pseudo_header_sum(src_ip, dst_ip, 6, t_len)) != 0 {
                return Err(ParseError::BadTransportChecksum);
            }
            let data_off = ((transport_bytes[12] >> 4) as usize) * 4;
            if data_off < TCP_HDR_LEN || transport_bytes.len() < data_off {
                return Err(ParseError::Truncated);
            }
            (
                Transport::Tcp,
                u16::from_be_bytes([transport_bytes[0], transport_bytes[1]]),
                u16::from_be_bytes([transport_bytes[2], transport_bytes[3]]),
                TcpFlags(transport_bytes[13]),
                transport_bytes.len() - data_off,
            )
        }
        17 => {
            if transport_bytes.len() < UDP_HDR_LEN {
                return Err(ParseError::Truncated);
            }
            let stored = u16::from_be_bytes([transport_bytes[6], transport_bytes[7]]);
            if stored != 0
                && checksum(
                    transport_bytes,
                    pseudo_header_sum(src_ip, dst_ip, 17, t_len),
                ) != 0
            {
                return Err(ParseError::BadTransportChecksum);
            }
            (
                Transport::Udp,
                u16::from_be_bytes([transport_bytes[0], transport_bytes[1]]),
                u16::from_be_bytes([transport_bytes[2], transport_bytes[3]]),
                TcpFlags::default(),
                transport_bytes.len() - UDP_HDR_LEN,
            )
        }
        other => return Err(ParseError::UnsupportedProtocol(other)),
    };

    Ok(ParsedFrame {
        src_mac: MacAddr(src_mac),
        dst_mac: MacAddr(dst_mac),
        src_ip,
        dst_ip,
        transport,
        src_port,
        dst_port,
        tcp_flags,
        payload_len,
        frame_len: ETH_HDR_LEN + total_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(transport: Transport, payload: Vec<u8>) -> FrameSpec {
        FrameSpec {
            src_mac: MacAddr::for_device(1),
            dst_mac: MacAddr::for_device(2),
            src_ip: Ipv4Addr::new(192, 168, 1, 10),
            dst_ip: Ipv4Addr::new(34, 120, 5, 6),
            transport,
            src_port: 50123,
            dst_port: 443,
            tcp_flags: TcpFlags::psh_ack(),
            payload,
            ttl: 64,
        }
    }

    #[test]
    fn tcp_roundtrip() {
        let s = spec(Transport::Tcp, b"hello iot".to_vec());
        let frame = build_frame(&s);
        assert_eq!(frame.len(), s.frame_len());
        let p = parse_frame(&frame).unwrap();
        assert_eq!(p.src_ip, s.src_ip);
        assert_eq!(p.dst_ip, s.dst_ip);
        assert_eq!(p.src_port, 50123);
        assert_eq!(p.dst_port, 443);
        assert_eq!(p.transport, Transport::Tcp);
        assert_eq!(p.tcp_flags, TcpFlags::psh_ack());
        assert_eq!(p.payload_len, 9);
        assert_eq!(p.frame_len, frame.len());
    }

    #[test]
    fn udp_roundtrip() {
        let s = spec(Transport::Udp, vec![0xab; 100]);
        let frame = build_frame(&s);
        let p = parse_frame(&frame).unwrap();
        assert_eq!(p.transport, Transport::Udp);
        assert_eq!(p.payload_len, 100);
        assert_eq!(p.tcp_flags, TcpFlags::default());
    }

    #[test]
    fn empty_payload() {
        for t in [Transport::Tcp, Transport::Udp] {
            let s = spec(t, vec![]);
            let p = parse_frame(&build_frame(&s)).unwrap();
            assert_eq!(p.payload_len, 0);
        }
    }

    #[test]
    fn ip_checksum_corruption_detected() {
        let mut frame = build_frame(&spec(Transport::Tcp, b"x".to_vec()));
        frame[ETH_HDR_LEN + 8] ^= 0xff; // flip TTL
        assert_eq!(parse_frame(&frame), Err(ParseError::BadIpChecksum));
    }

    #[test]
    fn tcp_checksum_corruption_detected() {
        let mut frame = build_frame(&spec(Transport::Tcp, b"payload".to_vec()));
        let n = frame.len();
        frame[n - 1] ^= 0x01; // flip last payload byte
        assert_eq!(parse_frame(&frame), Err(ParseError::BadTransportChecksum));
    }

    #[test]
    fn udp_checksum_corruption_detected() {
        let mut frame = build_frame(&spec(Transport::Udp, b"payload".to_vec()));
        let n = frame.len();
        frame[n - 1] ^= 0x01;
        assert_eq!(parse_frame(&frame), Err(ParseError::BadTransportChecksum));
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut frame = build_frame(&spec(Transport::Tcp, vec![]));
        frame[12..14].copy_from_slice(&ETHERTYPE_ARP.to_be_bytes());
        assert_eq!(parse_frame(&frame), Err(ParseError::NotIpv4));
    }

    #[test]
    fn truncated_rejected() {
        let frame = build_frame(&spec(Transport::Tcp, vec![]));
        assert_eq!(parse_frame(&frame[..10]), Err(ParseError::Truncated));
        // Cutting into the TCP header invalidates the IP total length.
        assert_eq!(
            parse_frame(&frame[..ETH_HDR_LEN + IPV4_HDR_LEN + 4]),
            Err(ParseError::Truncated)
        );
    }

    #[test]
    fn device_macs_are_unique() {
        let a = MacAddr::for_device(1);
        let b = MacAddr::for_device(2);
        let c = MacAddr::for_device(256);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn checksum_rfc1071_example() {
        // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data, 0), 0x220d);
    }
}
