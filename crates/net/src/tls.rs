//! Passive TLS sniffing: extract the version feature from record bytes.
//!
//! The §4.1 event features include the TLS version, which a passive proxy
//! reads from the record layer and the ClientHello's
//! `supported_versions` extension (TLS 1.3 negotiates 1.3 while the
//! record/legacy fields still say 1.2). This module synthesizes and
//! parses just enough of RFC 8446/5246 framing for that: record header,
//! handshake header, and the ClientHello fields up to its extensions.

use crate::packet::TlsVersion;

/// TLS record content types we care about.
const CONTENT_HANDSHAKE: u8 = 22;
/// Handshake message type: ClientHello.
const HS_CLIENT_HELLO: u8 = 1;
/// Extension number: supported_versions (RFC 8446).
const EXT_SUPPORTED_VERSIONS: u16 = 43;

fn version_code(v: TlsVersion) -> [u8; 2] {
    match v {
        TlsVersion::Tls10 => [0x03, 0x01],
        TlsVersion::Tls12 => [0x03, 0x03],
        // TLS 1.3 uses 0x0303 in legacy fields; the true version rides
        // the supported_versions extension.
        TlsVersion::Tls13 => [0x03, 0x03],
        TlsVersion::None => [0x00, 0x00],
    }
}

/// Build a minimal ClientHello record negotiating `version`.
///
/// Fields beyond what version sniffing needs (random, session id, one
/// cipher suite, null compression) are fixed; for TLS 1.3 a
/// supported_versions extension carrying 0x0304 is appended.
pub fn build_client_hello(version: TlsVersion) -> Vec<u8> {
    assert!(version != TlsVersion::None, "cannot build a no-TLS hello");
    let legacy = version_code(version);

    // --- ClientHello body ---
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&legacy); // client_version (legacy)
    body.extend_from_slice(&[0x5a; 32]); // random
    body.push(0); // session_id length
    body.extend_from_slice(&[0x00, 0x02, 0x13, 0x01]); // one cipher suite
    body.extend_from_slice(&[0x01, 0x00]); // null compression
                                           // Extensions.
    let mut exts = Vec::new();
    if version == TlsVersion::Tls13 {
        exts.extend_from_slice(&EXT_SUPPORTED_VERSIONS.to_be_bytes());
        exts.extend_from_slice(&[0x00, 0x03]); // extension length
        exts.extend_from_slice(&[0x02, 0x03, 0x04]); // list: [0x0304]
    }
    body.extend_from_slice(&(exts.len() as u16).to_be_bytes());
    body.extend_from_slice(&exts);

    // --- Handshake header ---
    let mut hs = Vec::with_capacity(4 + body.len());
    hs.push(HS_CLIENT_HELLO);
    let len = body.len() as u32;
    hs.extend_from_slice(&len.to_be_bytes()[1..]); // 24-bit length
    hs.extend_from_slice(&body);

    // --- Record header ---
    let mut rec = Vec::with_capacity(5 + hs.len());
    rec.push(CONTENT_HANDSHAKE);
    rec.extend_from_slice(&[0x03, 0x01]); // record legacy version
    rec.extend_from_slice(&(hs.len() as u16).to_be_bytes());
    rec.extend_from_slice(&hs);
    rec
}

/// Sniff the negotiated TLS version from the first bytes of a flow.
/// Returns [`TlsVersion::None`] for anything that is not a plausible
/// ClientHello record.
pub fn sniff_version(bytes: &[u8]) -> TlsVersion {
    // Record header: type(1) version(2) length(2).
    if bytes.len() < 5 + 4 + 2 + 32 + 1 {
        return TlsVersion::None;
    }
    if bytes[0] != CONTENT_HANDSHAKE || bytes[1] != 0x03 {
        return TlsVersion::None;
    }
    let rec_len = u16::from_be_bytes([bytes[3], bytes[4]]) as usize;
    let Some(hs) = bytes.get(5..5 + rec_len) else {
        return TlsVersion::None;
    };
    if hs.len() < 4 || hs[0] != HS_CLIENT_HELLO {
        return TlsVersion::None;
    }
    let body = &hs[4..];
    if body.len() < 2 + 32 + 1 {
        return TlsVersion::None;
    }
    let legacy = [body[0], body[1]];
    let mut i = 2 + 32; // skip version + random
    let sid_len = body[i] as usize;
    i += 1 + sid_len;
    // Cipher suites.
    let Some(cs_len_bytes) = body.get(i..i + 2) else {
        return legacy_only(legacy);
    };
    let cs_len = u16::from_be_bytes([cs_len_bytes[0], cs_len_bytes[1]]) as usize;
    i += 2 + cs_len;
    // Compression methods.
    let Some(&comp_len) = body.get(i) else {
        return legacy_only(legacy);
    };
    i += 1 + comp_len as usize;
    // Extensions.
    let Some(ext_len_bytes) = body.get(i..i + 2) else {
        return legacy_only(legacy);
    };
    let ext_total = u16::from_be_bytes([ext_len_bytes[0], ext_len_bytes[1]]) as usize;
    i += 2;
    let Some(mut exts) = body.get(i..i + ext_total) else {
        return legacy_only(legacy);
    };
    while exts.len() >= 4 {
        let ext_type = u16::from_be_bytes([exts[0], exts[1]]);
        let ext_len = u16::from_be_bytes([exts[2], exts[3]]) as usize;
        let Some(data) = exts.get(4..4 + ext_len) else {
            break;
        };
        if ext_type == EXT_SUPPORTED_VERSIONS && !data.is_empty() {
            let list_len = data[0] as usize;
            let mut versions = data.get(1..1 + list_len).unwrap_or(&[]);
            while versions.len() >= 2 {
                if versions[0] == 0x03 && versions[1] == 0x04 {
                    return TlsVersion::Tls13;
                }
                versions = &versions[2..];
            }
        }
        exts = &exts[4 + ext_len..];
    }
    legacy_only(legacy)
}

fn legacy_only(legacy: [u8; 2]) -> TlsVersion {
    match legacy {
        [0x03, 0x01] => TlsVersion::Tls10,
        [0x03, 0x03] => TlsVersion::Tls12,
        _ => TlsVersion::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_versions() {
        for v in [TlsVersion::Tls10, TlsVersion::Tls12, TlsVersion::Tls13] {
            let hello = build_client_hello(v);
            assert_eq!(sniff_version(&hello), v, "{v:?}");
        }
    }

    #[test]
    fn tls13_detected_via_supported_versions_not_legacy() {
        // The 1.3 hello carries 0x0303 in both legacy fields.
        let hello = build_client_hello(TlsVersion::Tls13);
        assert_eq!(&hello[1..3], &[0x03, 0x01]); // record version
        let body_version_off = 5 + 4;
        assert_eq!(
            &hello[body_version_off..body_version_off + 2],
            &[0x03, 0x03]
        );
        assert_eq!(sniff_version(&hello), TlsVersion::Tls13);
    }

    #[test]
    fn non_tls_bytes_yield_none() {
        assert_eq!(sniff_version(b""), TlsVersion::None);
        assert_eq!(sniff_version(&[0u8; 100]), TlsVersion::None);
        assert_eq!(
            sniff_version(b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\npadpadpad"),
            TlsVersion::None
        );
        // Application-data record type is not a hello.
        let mut app = build_client_hello(TlsVersion::Tls12);
        app[0] = 23;
        assert_eq!(sniff_version(&app), TlsVersion::None);
    }

    #[test]
    fn truncated_hello_degrades_gracefully() {
        let hello = build_client_hello(TlsVersion::Tls13);
        for cut in [0, 4, 10, 40, hello.len() - 1] {
            // Must never panic; short prefixes are None or a legacy guess.
            let _ = sniff_version(&hello[..cut]);
        }
        // Cutting off only the extensions leaves the 1.2 legacy answer.
        let no_ext = &hello[..hello.len() - 7];
        assert_ne!(sniff_version(no_ext), TlsVersion::Tls13);
    }

    #[test]
    #[should_panic(expected = "cannot build a no-TLS hello")]
    fn building_none_rejected() {
        let _ = build_client_hello(TlsVersion::None);
    }
}
