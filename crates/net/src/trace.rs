//! Labeled packet trace container.
//!
//! A [`Trace`] is a time-ordered sequence of [`PacketRecord`]s plus the DNS
//! knowledge collected alongside (as a capture of DNS responses would
//! provide). It is what dataset generators emit and what the predictability
//! analysis and the proxy consume.

use crate::dns::DnsTable;
use crate::packet::{PacketRecord, TrafficClass};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A labeled, time-ordered packet trace for one or more devices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Packets in non-decreasing timestamp order.
    pub packets: Vec<PacketRecord>,
    /// DNS mappings observed during the capture.
    pub dns: DnsTable,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a packet, keeping time order. Packets may be pushed slightly
    /// out of order by independent generators; they are re-sorted on
    /// [`Trace::finish`].
    pub fn push(&mut self, pkt: PacketRecord) {
        self.packets.push(pkt);
    }

    /// Stable-sort packets by timestamp. Call once after generation.
    pub fn finish(&mut self) {
        self.packets.sort_by_key(|p| p.ts);
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total bytes across all packets.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.size as u64).sum()
    }

    /// Duration from first to last packet.
    pub fn duration(&self) -> SimDuration {
        match (self.packets.first(), self.packets.last()) {
            (Some(f), Some(l)) => l.ts - f.ts,
            _ => SimDuration::ZERO,
        }
    }

    /// Iterator over packets of one device.
    pub fn device_packets(&self, device: u16) -> impl Iterator<Item = &PacketRecord> {
        self.packets.iter().filter(move |p| p.device == device)
    }

    /// Distinct device ids present, sorted.
    pub fn devices(&self) -> Vec<u16> {
        let mut ids: Vec<u16> = self.packets.iter().map(|p| p.device).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Count packets with a given label for a device.
    pub fn count_labeled(&self, device: u16, label: TrafficClass) -> usize {
        self.device_packets(device)
            .filter(|p| p.label == label)
            .count()
    }

    /// Sub-trace restricted to a time window `[from, to)`. DNS is shared.
    pub fn window(&self, from: SimTime, to: SimTime) -> Trace {
        Trace {
            packets: self
                .packets
                .iter()
                .filter(|p| p.ts >= from && p.ts < to)
                .cloned()
                .collect(),
            dns: self.dns.clone(),
        }
    }

    /// Merge another trace into this one (re-sorts, merges DNS).
    pub fn merge(&mut self, other: Trace) {
        self.packets.extend(other.packets);
        self.dns.merge(&other.dns);
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Direction, TcpFlags, TlsVersion, Transport};
    use std::net::Ipv4Addr;

    fn pkt(ts_s: u64, device: u16, label: TrafficClass) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_secs(ts_s),
            device,
            direction: Direction::FromDevice,
            local_ip: Ipv4Addr::new(192, 168, 1, 10),
            remote_ip: Ipv4Addr::new(1, 2, 3, 4),
            local_port: 40000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::ack(),
            tls: TlsVersion::None,
            size: 100,
            label,
        }
    }

    #[test]
    fn finish_sorts_by_time() {
        let mut t = Trace::new();
        t.push(pkt(5, 0, TrafficClass::Control));
        t.push(pkt(1, 0, TrafficClass::Control));
        t.push(pkt(3, 0, TrafficClass::Control));
        t.finish();
        let ts: Vec<u64> = t.packets.iter().map(|p| p.ts.as_micros()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn accounting() {
        let mut t = Trace::new();
        t.push(pkt(0, 0, TrafficClass::Control));
        t.push(pkt(10, 1, TrafficClass::Manual));
        t.push(pkt(20, 0, TrafficClass::Manual));
        t.finish();
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_bytes(), 300);
        assert_eq!(t.duration(), SimDuration::from_secs(20));
        assert_eq!(t.devices(), vec![0, 1]);
        assert_eq!(t.count_labeled(0, TrafficClass::Manual), 1);
        assert_eq!(t.count_labeled(0, TrafficClass::Control), 1);
        assert_eq!(t.device_packets(1).count(), 1);
    }

    #[test]
    fn window_is_half_open() {
        let mut t = Trace::new();
        for s in 0..10 {
            t.push(pkt(s, 0, TrafficClass::Control));
        }
        t.finish();
        let w = t.window(SimTime::from_secs(2), SimTime::from_secs(5));
        assert_eq!(w.len(), 3); // seconds 2, 3, 4
    }

    #[test]
    fn merge_combines_and_sorts() {
        let mut a = Trace::new();
        a.push(pkt(10, 0, TrafficClass::Control));
        let mut b = Trace::new();
        b.push(pkt(5, 1, TrafficClass::Control));
        b.dns
            .observe_forward(Ipv4Addr::new(1, 2, 3, 4), "x.example");
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.packets[0].device, 1);
        assert_eq!(a.dns.name_of(Ipv4Addr::new(1, 2, 3, 4)), "x.example");
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = Trace::new();
        t.push(pkt(1, 0, TrafficClass::Automated));
        t.dns
            .observe_forward(Ipv4Addr::new(1, 2, 3, 4), "a.example");
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.packets[0], t.packets[0]);
        assert_eq!(back.dns.name_of(Ipv4Addr::new(1, 2, 3, 4)), "a.example");
    }
}
