//! Property tests for wire formats and trace serialization.

use fiat_net::headers::{build_frame, parse_frame, FrameSpec, MacAddr};
use fiat_net::pcap;
use fiat_net::tls::{build_client_hello, sniff_version};
use fiat_net::{
    Direction, PacketRecord, SimTime, TcpFlags, TlsVersion, Trace, TrafficClass, Transport,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_transport() -> impl Strategy<Value = Transport> {
    prop_oneof![Just(Transport::Tcp), Just(Transport::Udp)]
}

fn arb_tls() -> impl Strategy<Value = TlsVersion> {
    prop_oneof![
        Just(TlsVersion::None),
        Just(TlsVersion::Tls10),
        Just(TlsVersion::Tls12),
        Just(TlsVersion::Tls13),
    ]
}

fn arb_packet() -> impl Strategy<Value = PacketRecord> {
    (
        0u64..1u64 << 40,
        any::<u16>(),
        any::<bool>(),
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        arb_transport(),
        any::<u8>(),
        arb_tls(),
        40u16..1500,
        0u8..3,
    )
        .prop_map(
            |(ts, device, dir, lip, rip, lp, rp, transport, flags, tls, size, label)| {
                PacketRecord {
                    ts: SimTime::from_micros(ts),
                    device,
                    direction: if dir {
                        Direction::FromDevice
                    } else {
                        Direction::ToDevice
                    },
                    local_ip: Ipv4Addr::from(lip),
                    remote_ip: Ipv4Addr::from(rip),
                    local_port: lp,
                    remote_port: rp,
                    transport,
                    tcp_flags: TcpFlags(flags),
                    tls,
                    size,
                    label: match label {
                        0 => TrafficClass::Control,
                        1 => TrafficClass::Automated,
                        _ => TrafficClass::Manual,
                    },
                }
            },
        )
}

proptest! {
    /// Ethernet/IP/TCP/UDP frames round-trip for arbitrary endpoints and
    /// payload sizes, with checksums verifying.
    #[test]
    fn frame_roundtrip(
        src_ip in any::<u32>(),
        dst_ip in any::<u32>(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        transport in arb_transport(),
        flags in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
        ttl in 1u8..255,
    ) {
        let spec = FrameSpec {
            src_mac: MacAddr::for_device(1),
            dst_mac: MacAddr::for_device(2),
            src_ip: Ipv4Addr::from(src_ip),
            dst_ip: Ipv4Addr::from(dst_ip),
            transport,
            src_port,
            dst_port,
            tcp_flags: TcpFlags(flags),
            payload: payload.clone(),
            ttl,
        };
        let frame = build_frame(&spec);
        let parsed = parse_frame(&frame).unwrap();
        prop_assert_eq!(parsed.src_ip, spec.src_ip);
        prop_assert_eq!(parsed.dst_ip, spec.dst_ip);
        prop_assert_eq!(parsed.src_port, src_port);
        prop_assert_eq!(parsed.dst_port, dst_port);
        prop_assert_eq!(parsed.transport, transport);
        prop_assert_eq!(parsed.payload_len, payload.len());
        if transport == Transport::Tcp {
            prop_assert_eq!(parsed.tcp_flags, TcpFlags(flags));
        }
    }

    /// Any single-byte corruption of a frame is detected (checksum or
    /// structural failure) or leaves the parsed metadata intact (MAC
    /// bytes, which carry no checksum).
    #[test]
    fn frame_corruption_detected_or_harmless(
        payload in prop::collection::vec(any::<u8>(), 0..64),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let spec = FrameSpec {
            src_mac: MacAddr::for_device(1),
            dst_mac: MacAddr::for_device(2),
            src_ip: Ipv4Addr::new(192, 168, 1, 9),
            dst_ip: Ipv4Addr::new(34, 4, 4, 4),
            transport: Transport::Tcp,
            src_port: 50000,
            dst_port: 443,
            tcp_flags: TcpFlags::psh_ack(),
            payload,
            ttl: 64,
        };
        let frame = build_frame(&spec);
        let mut bad = frame.clone();
        let i = flip_at % bad.len();
        bad[i] ^= 1 << flip_bit;
        if parse_frame(&bad).is_ok() {
            // MAC bytes (0..12) are unprotected; anything else detected.
            prop_assert!(i < 12, "undetected corruption at {}", i);
        }
    }

    /// fpcap round-trips arbitrary traces exactly.
    #[test]
    fn pcap_roundtrip(packets in prop::collection::vec(arb_packet(), 0..60)) {
        let mut t = Trace::new();
        for p in packets {
            t.push(p);
        }
        t.finish();
        t.dns.observe_forward(Ipv4Addr::new(1, 2, 3, 4), "x.example");
        let blob = pcap::encode(&t);
        let back = pcap::decode(&blob).unwrap();
        prop_assert_eq!(back.packets, t.packets);
        prop_assert_eq!(back.dns.len(), t.dns.len());
    }

    /// fpcap never panics on arbitrary bytes.
    #[test]
    fn pcap_decode_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = pcap::decode(&bytes);
    }

    /// Truncating a valid blob at any point either still decodes (the
    /// cut fell on a record boundary past the header) or fails with a
    /// PcapError — never a panic.
    #[test]
    fn pcap_decode_truncated_total(
        packets in prop::collection::vec(arb_packet(), 0..20),
        cut in any::<usize>(),
    ) {
        let mut t = Trace::new();
        for p in packets {
            t.push(p);
        }
        t.finish();
        let blob = pcap::encode(&t);
        let cut = cut % (blob.len() + 1);
        // A PcapError is the only sanctioned failure mode.
        if let Ok(back) = pcap::decode(&blob[..cut]) {
            prop_assert!(back.packets.len() <= t.packets.len());
        }
    }

    /// Flipping any single bit of a valid blob either still decodes or
    /// fails with a PcapError — never a panic. (fpcap has no integrity
    /// check, so some flips decode to a different but well-formed trace.)
    #[test]
    fn pcap_decode_bitflip_total(
        packets in prop::collection::vec(arb_packet(), 1..20),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let mut t = Trace::new();
        for p in packets {
            t.push(p);
        }
        t.finish();
        let mut blob = pcap::encode(&t);
        let i = flip_at % blob.len();
        blob[i] ^= 1 << flip_bit;
        let _ = pcap::decode(&blob);
    }

    /// TLS sniffing never panics on arbitrary bytes and correctly
    /// round-trips synthesized hellos.
    #[test]
    fn tls_sniff_total(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = sniff_version(&bytes);
    }

    #[test]
    fn tls_hello_roundtrip(version in prop_oneof![
        Just(TlsVersion::Tls10),
        Just(TlsVersion::Tls12),
        Just(TlsVersion::Tls13),
    ]) {
        prop_assert_eq!(sniff_version(&build_client_hello(version)), version);
    }
}
