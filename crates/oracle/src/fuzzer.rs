//! Seeded differential fuzzer: drive the real `FiatProxy` and the naive
//! [`ReferenceProxy`](crate::ReferenceProxy) op-by-op over
//! timestamp-chaos traces and report the first point they disagree.
//!
//! A scenario is testbed traffic (the paper's 10-device matrix) put
//! through seeded chaos mutations — adjacent swaps, long-range
//! backwards moves, duplicates, segment clock skew, boundary-exact
//! event-gap and bootstrap-edge probes — interleaved with humanness
//! proofs, `flush` calls (including back-to-back flushes and
//! flush-then-older-packet), and lockout clears. Both proxies run the
//! identical op list; the oracle compares every per-packet decision,
//! the final [`ProxyStats`], the audit trail entry-by-entry, and the
//! real proxy's hash chain. On divergence, a greedy chunk-removal
//! shrinker minimizes the op list before reporting.

use crate::reference::ReferenceProxy;
use fiat_core::audit::AuditEntry;
use fiat_core::{EventClassifier, FiatApp, FiatProxy, ProxyConfig, ProxyDecision, ProxyStats};
use fiat_fingerprint::{FingerprintEngine, MatcherConfig, SignatureSet};
use fiat_net::{
    Direction, DnsTable, PacketRecord, SimDuration, SimTime, TcpFlags, TlsVersion, TrafficClass,
    Transport,
};
use fiat_sensors::{HumannessValidator, ImuTrace, MotionKind};
use fiat_trace::{
    class_trace, fingerprint_corpus, spoofed_trace, testbed_devices, TestbedConfig, TestbedTrace,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Pairing-ceremony secret shared by the fuzzer's proxy and app.
const SECRET: [u8; 32] = [0x5a; 32];

/// One step of a differential run. Ops are plain data so any subset of
/// a scenario's op list is itself a valid (shrunk) scenario.
#[derive(Debug, Clone)]
pub enum Op {
    /// Decide one packet on both sides and compare the verdicts.
    Packet(PacketRecord),
    /// A genuine humanness proof lands at this time (0-RTT on the real
    /// side, a window refresh on the reference).
    VerifyHuman(SimTime),
    /// Close stale events on both sides.
    Flush(SimTime),
    /// The user manually verifies a locked-out device.
    ClearLockout(u16),
}

/// Fingerprint-gate setup shared by both sides of a scenario: the seed
/// the labeled training corpus derives from, plus the matcher numbers.
/// The real side runs a `FingerprintEngine` over the learned signatures;
/// the reference side runs the naive mirror over the *same* signatures
/// (shared data, independent arithmetic — like the event classifier).
#[derive(Debug, Clone)]
pub struct FingerprintSetup {
    /// Seed for [`fiat_trace::fingerprint_corpus`].
    pub corpus_seed: u64,
    /// Evidence-window and matcher parameters.
    pub matcher: MatcherConfig,
}

/// A complete differential scenario: shared configuration, the device
/// matrix, the interaction DAG, DNS knowledge, and the op list.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Shared proxy configuration (both sides run exactly this).
    pub config: ProxyConfig,
    /// `(device id, simple-rule manual size, N)` registrations.
    pub devices: Vec<(u16, u16, usize)>,
    /// Interaction DAG edges (`trigger → target`, acyclic).
    pub edges: Vec<(u16, u16)>,
    /// Cascade window for the DAG.
    pub cascade_window: SimDuration,
    /// DNS observed during the capture.
    pub dns: DnsTable,
    /// Fingerprint gate trained on both sides (`None` leaves the
    /// legacy unknown-device fail-open in force).
    pub fingerprint: Option<FingerprintSetup>,
    /// The op list, in execution order.
    pub ops: Vec<Op>,
}

impl Scenario {
    /// Number of packet ops.
    pub fn packet_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Packet(_)))
            .count()
    }
}

/// Chaos applied while building a scenario, for the report.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosStats {
    /// Adjacent packet swaps (single-step reordering).
    pub swaps: u64,
    /// Long-range backwards moves (a packet delivered early).
    pub moves: u64,
    /// Duplicated packets.
    pub dups: u64,
    /// Packets whose timestamp was skewed by a segment clock shift.
    pub skewed: u64,
    /// Injected boundary-exact probes (event gap, bootstrap edge).
    pub boundary_probes: u64,
    /// Injected quarantine probes (held-then-released and
    /// held-then-expired manual bursts).
    pub quarantine_probes: u64,
    /// Injected unknown-device fingerprint packets (genuine, spoofed,
    /// unclassifiable, and FIFO-flood traffic).
    pub fingerprint_probes: u64,
    /// Interleaved humanness proofs.
    pub verify_ops: u64,
    /// Interleaved flush calls.
    pub flush_ops: u64,
    /// Interleaved lockout clears.
    pub clear_ops: u64,
}

impl std::ops::AddAssign for ChaosStats {
    fn add_assign(&mut self, rhs: ChaosStats) {
        self.swaps += rhs.swaps;
        self.moves += rhs.moves;
        self.dups += rhs.dups;
        self.skewed += rhs.skewed;
        self.boundary_probes += rhs.boundary_probes;
        self.quarantine_probes += rhs.quarantine_probes;
        self.fingerprint_probes += rhs.fingerprint_probes;
        self.verify_ops += rhs.verify_ops;
        self.flush_ops += rhs.flush_ops;
        self.clear_ops += rhs.clear_ops;
    }
}

/// Where and how the two implementations disagreed.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // error-path only; ProxyStats inline keeps reporting simple
pub enum DivergenceKind {
    /// Per-packet verdicts differ.
    Decision {
        /// The real proxy's verdict.
        real: ProxyDecision,
        /// The reference's verdict.
        reference: ProxyDecision,
        /// Device the packet belongs to.
        device: u16,
        /// Packet timestamp.
        ts: SimTime,
    },
    /// End-of-run decision counters differ.
    Stats {
        /// The real proxy's counters.
        real: ProxyStats,
        /// The reference's counters.
        reference: ProxyStats,
    },
    /// Audit trails differ in length.
    AuditLength {
        /// Real entry count.
        real: usize,
        /// Reference entry count.
        reference: usize,
    },
    /// Audit trails differ at an entry.
    AuditEntry {
        /// Index of the first differing entry.
        index: usize,
        /// The real proxy's entry.
        real: AuditEntry,
        /// The reference's entry.
        reference: AuditEntry,
    },
    /// The real proxy's own hash chain failed to verify.
    AuditChain,
}

impl DivergenceKind {
    /// Stable label for metrics/grouping: `decision`, `stats`, or
    /// `audit`.
    pub fn label(&self) -> &'static str {
        match self {
            DivergenceKind::Decision { .. } => "decision",
            DivergenceKind::Stats { .. } => "stats",
            DivergenceKind::AuditLength { .. }
            | DivergenceKind::AuditEntry { .. }
            | DivergenceKind::AuditChain => "audit",
        }
    }
}

/// First point of disagreement in a scenario run.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index into [`Scenario::ops`] (ops.len() for end-state checks).
    pub op_index: usize,
    /// What disagreed.
    pub kind: DivergenceKind,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            DivergenceKind::Decision {
                real,
                reference,
                device,
                ts,
            } => write!(
                f,
                "op {}: decision mismatch on device {} at {} µs: real {:?} vs reference {:?}",
                self.op_index,
                device,
                ts.as_micros(),
                real,
                reference
            ),
            DivergenceKind::Stats { real, reference } => write!(
                f,
                "end state: stats mismatch: real {real:?} vs reference {reference:?}"
            ),
            DivergenceKind::AuditLength { real, reference } => write!(
                f,
                "end state: audit length mismatch: real {real} vs reference {reference}"
            ),
            DivergenceKind::AuditEntry {
                index,
                real,
                reference,
            } => write!(
                f,
                "end state: audit entry {index} mismatch: real {real:?} vs reference {reference:?}"
            ),
            DivergenceKind::AuditChain => {
                write!(f, "end state: real proxy audit hash chain failed to verify")
            }
        }
    }
}

/// Build the real proxy for a scenario: perfect humanness validator (so
/// proofs depend only on timing, not validator noise), simple-rule
/// classifiers (shared with the reference — the oracle checks the
/// decision path, not the model), and the scenario's interaction DAG.
fn build_real(sc: &Scenario) -> FiatProxy {
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let mut proxy = FiatProxy::new(sc.config.clone(), &SECRET, validator);
    for &(id, size, n) in &sc.devices {
        proxy.register_device(id, EventClassifier::simple_rule(size), n);
    }
    if !sc.edges.is_empty() {
        let mut g = fiat_core::InteractionGraph::new(sc.cascade_window);
        for &(a, b) in &sc.edges {
            g.add_edge(a, b).expect("scenario edges are acyclic");
        }
        proxy.set_interactions(g);
    }
    proxy.set_dns(sc.dns.clone());
    if let Some(fp) = &sc.fingerprint {
        let sigs = learn_signatures(fp);
        proxy.set_fingerprinter(Box::new(FingerprintEngine::new(sigs, fp.matcher)));
    }
    proxy.start(SimTime::ZERO);
    proxy
}

fn build_reference(sc: &Scenario, config: &ProxyConfig) -> ReferenceProxy {
    let mut reference = ReferenceProxy::new(config.clone());
    for &(id, size, n) in &sc.devices {
        reference.register_device(id, EventClassifier::simple_rule(size), n);
    }
    if !sc.edges.is_empty() {
        reference.set_interactions(sc.cascade_window, &sc.edges);
    }
    reference.set_dns(sc.dns.clone());
    if let Some(fp) = &sc.fingerprint {
        let sigs = learn_signatures(fp);
        reference.set_fingerprint(sigs.signatures().to_vec(), fp.matcher);
    }
    reference.start(SimTime::ZERO);
    reference
}

/// Train the signature set a setup describes (shared by both sides —
/// training is an *input* to the decision path, like the classifier; the
/// differential check covers the online matching, not learning).
fn learn_signatures(fp: &FingerprintSetup) -> SignatureSet {
    let corpus = fingerprint_corpus(fp.corpus_seed);
    SignatureSet::learn(&corpus, fp.matcher.evidence_window)
}

/// Run one scenario differentially; `None` means full agreement.
pub fn run_scenario(sc: &Scenario) -> Option<Divergence> {
    run_scenario_with_real_config(sc, &sc.config)
}

/// [`run_scenario`], but the real proxy gets its own configuration.
/// With `real_config == sc.config` this is the oracle proper; with a
/// deliberately perturbed config it is a self-test that the oracle
/// actually detects semantic drift (used in tests and CI).
pub fn run_scenario_with_real_config(
    sc: &Scenario,
    real_config: &ProxyConfig,
) -> Option<Divergence> {
    let sc_real = Scenario {
        config: real_config.clone(),
        ..sc.clone()
    };
    run_pair(build_real(&sc_real), build_reference(sc, &sc.config), sc)
}

/// [`run_scenario`], but the real side's fingerprint engine gets its own
/// matcher numbers while the naive mirror keeps the scenario's. With a
/// perturbed matcher this is the fingerprint drift self-test: a silent
/// change to a threshold or the evidence window must surface as a
/// divergence.
pub fn run_scenario_with_real_matcher(
    sc: &Scenario,
    real_matcher: MatcherConfig,
) -> Option<Divergence> {
    let fp = sc
        .fingerprint
        .clone()
        .expect("scenario has no fingerprint setup to perturb");
    let sc_real = Scenario {
        fingerprint: Some(FingerprintSetup {
            matcher: real_matcher,
            ..fp
        }),
        ..sc.clone()
    };
    run_pair(build_real(&sc_real), build_reference(sc, &sc.config), sc)
}

/// Drive one prebuilt real/reference pair through a scenario's op list
/// and compare decisions, stats, audit trail, and the hash chain.
fn run_pair(
    mut real: FiatProxy,
    mut reference: ReferenceProxy,
    sc: &Scenario,
) -> Option<Divergence> {
    // One handshake up front; each VerifyHuman op reuses the ticket
    // with a fresh 0-RTT nonce.
    let mut app = FiatApp::new(&SECRET, 1);
    let ch = app.handshake_request();
    let sh = real.accept_handshake(&ch);
    app.complete_handshake(&sh).expect("fuzzer handshake");
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 7);

    for (i, op) in sc.ops.iter().enumerate() {
        match op {
            Op::Packet(pkt) => {
                let a = real.on_packet(pkt);
                let b = reference.on_packet(pkt);
                if a != b {
                    return Some(Divergence {
                        op_index: i,
                        kind: DivergenceKind::Decision {
                            real: a,
                            reference: b,
                            device: pkt.device,
                            ts: pkt.ts,
                        },
                    });
                }
            }
            Op::VerifyHuman(at) => {
                let z = app
                    .authorize_zero_rtt("iot.app", &imu, MotionKind::HumanTouch, at.as_micros())
                    .expect("0-RTT seal");
                let ok = real.on_auth_zero_rtt(&z, *at).expect("genuine evidence");
                assert!(ok, "perfect validator must verify genuine evidence");
                reference.verify_human(*at);
            }
            Op::Flush(at) => {
                real.flush(*at);
                reference.flush(*at);
            }
            Op::ClearLockout(device) => {
                real.clear_lockout(*device);
                reference.clear_lockout(*device);
            }
        }
    }

    let end = sc.ops.len();
    let (rs, fs) = (real.stats(), reference.stats());
    if rs != fs {
        return Some(Divergence {
            op_index: end,
            kind: DivergenceKind::Stats {
                real: rs,
                reference: fs,
            },
        });
    }
    let ra = real.audit().entries();
    let fa = reference.audit_entries();
    if ra.len() != fa.len() {
        return Some(Divergence {
            op_index: end,
            kind: DivergenceKind::AuditLength {
                real: ra.len(),
                reference: fa.len(),
            },
        });
    }
    for (idx, (a, b)) in ra.iter().zip(fa).enumerate() {
        if a != b {
            return Some(Divergence {
                op_index: end,
                kind: DivergenceKind::AuditEntry {
                    index: idx,
                    real: a.clone(),
                    reference: b.clone(),
                },
            });
        }
    }
    if !real.audit().verify() {
        return Some(Divergence {
            op_index: end,
            kind: DivergenceKind::AuditChain,
        });
    }
    None
}

/// Generate one chaos scenario over the 10-device testbed matrix.
///
/// The shared config shortens bootstrap to 10 minutes so most of the
/// capture exercises the post-bootstrap decision path, and raises the
/// manual-event rate so humanness gating, lockouts, and retro closures
/// all fire. `quick` scales the capture down for smoke tests.
pub fn build_scenario(seed: u64, quick: bool) -> (Scenario, ChaosStats) {
    let days = if quick { 0.022 } else { 0.06 };
    let tb = TestbedTrace::generate(TestbedConfig {
        days,
        manual_per_day: 60.0,
        routines_per_day: 30.0,
        seed,
        ..Default::default()
    });
    // An aggressive lockout (one tolerated episode in a 30-minute
    // window) makes the lockout/clear/retro-lock interplay actually
    // fire on a short capture; both sides share the knob, so the oracle
    // still compares like with like.
    // Quarantine is on (3 s proof deadline) so every scenario also
    // exercises the hold/release/expire state machine differentially.
    let config = ProxyConfig {
        bootstrap: SimDuration::from_mins(10),
        lockout_threshold: 1,
        lockout_window: SimDuration::from_mins(30),
        proof_deadline: Some(SimDuration::from_secs(3)),
        fingerprint_unknown: true,
        ..Default::default()
    };
    // Tight FIFO caps so the tracked-window and sealed-verdict eviction
    // paths actually fire on a short capture; thresholds stay at their
    // defaults so the genuine/spoofed/unclassifiable probes land their
    // intended verdicts.
    let matcher = MatcherConfig {
        max_tracked: 48,
        max_sealed: 4,
        ..MatcherConfig::default()
    };
    let devices: Vec<(u16, u16, usize)> = tb
        .devices
        .iter()
        .enumerate()
        .map(|(i, d)| {
            // Simple-rule classifier for every device: the rule size for
            // simple-rule devices, else the device's first manual palette
            // size so manual events still classify as manual. Shared
            // verbatim with the reference side.
            let size = d
                .simple_rule_size
                .or_else(|| d.manual.as_ref().map(|m| m.sizes[0]))
                .unwrap_or(0);
            (i as u16, size, d.min_packets_to_complete)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut stats = ChaosStats::default();
    let mut packets = tb.trace.packets.clone();
    let mut dns = tb.trace.dns.clone();
    inject_fingerprint_traffic(&mut packets, &mut dns, &config, seed, &mut stats);
    mutate_packets(&mut packets, &mut rng, &config, &mut stats);
    inject_manual_fragments(&mut packets, &devices, &mut rng, &config, &mut stats);
    let mut forced_proofs = inject_cascade_probes(&mut packets, &devices, &mut rng, &config);
    forced_proofs.extend(inject_quarantine_probes(
        &mut packets,
        &devices,
        &mut rng,
        &config,
        &mut stats,
    ));
    forced_proofs.sort_unstable();
    let mut next_forced = 0usize;

    // Ground-truth manual event starts, for targeted humanness proofs.
    let mut manual_starts: Vec<SimTime> = tb
        .events
        .iter()
        .filter(|e| e.class == fiat_net::TrafficClass::Manual)
        .map(|e| e.start)
        .collect();
    manual_starts.sort_unstable();
    let mut next_manual = 0usize;

    let end = packets.last().map_or(SimTime::ZERO, |p| p.ts);
    let gap = config.event_gap;
    let mut ops: Vec<Op> = Vec::with_capacity(packets.len() + 64);
    for p in packets {
        // Proofs the cascade probes depend on land unconditionally.
        while next_forced < forced_proofs.len() && forced_proofs[next_forced] <= p.ts {
            ops.push(Op::VerifyHuman(forced_proofs[next_forced]));
            stats.verify_ops += 1;
            next_forced += 1;
        }
        // A humanness proof shortly before roughly half the genuine
        // manual events, so verified-manual (and its absence) both
        // occur; occasionally the proof lands exactly one validity
        // window early — the `now <= human_valid_until` boundary.
        while next_manual < manual_starts.len() && manual_starts[next_manual] <= p.ts {
            let start = manual_starts[next_manual];
            next_manual += 1;
            if rng.gen_range(0..2u32) == 0 {
                let at = if rng.gen_range(0..6u32) == 0 {
                    SimTime::from_micros(
                        start
                            .as_micros()
                            .saturating_sub(config.human_valid_window.as_micros()),
                    )
                } else {
                    SimTime::from_micros(
                        start
                            .as_micros()
                            .saturating_sub(rng.gen_range(0..3_000_000)),
                    )
                };
                ops.push(Op::VerifyHuman(at));
                stats.verify_ops += 1;
            }
        }
        // Sprinkle non-packet ops between packets.
        if rng.gen_range(0..400u32) == 0 {
            let at =
                SimTime::from_micros(p.ts.as_micros().saturating_sub(rng.gen_range(0..2_000_000)));
            ops.push(Op::VerifyHuman(at));
            stats.verify_ops += 1;
        }
        if rng.gen_range(0..600u32) == 0 {
            let at = p.ts + SimDuration::from_micros(rng.gen_range(0..=gap.as_micros() * 2));
            ops.push(Op::Flush(at));
            stats.flush_ops += 1;
        }
        if rng.gen_range(0..500u32) == 0 {
            ops.push(Op::ClearLockout(rng.gen_range(0..10) as u16));
            stats.clear_ops += 1;
        }
        // Stranger in the house: the same packet also shows up under an
        // unregistered device id (fail-open path, audited once).
        if rng.gen_range(0..800u32) == 0 {
            let mut stranger = p.clone();
            stranger.device = 240 + rng.gen_range(0..3) as u16;
            ops.push(Op::Packet(stranger));
        }
        ops.push(Op::Packet(p));
    }

    // Forced proofs landing after the last packet still matter: a
    // quarantine-release probe near the end of the capture depends on
    // its proof arriving before the trailing flushes expire the record.
    while next_forced < forced_proofs.len() {
        ops.push(Op::VerifyHuman(forced_proofs[next_forced]));
        stats.verify_ops += 1;
        next_forced += 1;
    }

    // Trailing probes: double flush (idempotence), then an older packet
    // after the flush (must start a fresh event, not resurrect the
    // flushed one), then a final flush to close it.
    let final_flush = end + gap + gap;
    ops.push(Op::Flush(final_flush));
    ops.push(Op::Flush(final_flush));
    stats.flush_ops += 2;
    let older = ops.iter().rev().find_map(|o| match o {
        Op::Packet(p) => Some(p.clone()),
        _ => None,
    });
    if let Some(mut p) = older {
        p.ts = SimTime::from_micros(p.ts.as_micros().saturating_sub(gap.as_micros()));
        ops.push(Op::Packet(p));
        ops.push(Op::Flush(final_flush + gap + gap));
        stats.flush_ops += 1;
    }

    (
        Scenario {
            config,
            devices,
            // A small DAG over the matrix: voice assistants vouch for
            // the plugs/thermostat they command (§7's Alexa → light).
            // The window is wide enough that a cascade can outlive the
            // 30 s humanness window — the regime where the cascade path
            // is actually the deciding branch.
            edges: vec![(0, 3), (0, 5), (4, 9)],
            cascade_window: SimDuration::from_secs(120),
            dns,
            fingerprint: Some(FingerprintSetup {
                corpus_seed: seed ^ 0xf1f1,
                matcher,
            }),
            ops,
        },
        stats,
    )
}

/// Inject unknown-MAC traffic for the fingerprint gate, post-bootstrap
/// so it reaches the behavioral path instead of the bootstrap buffer:
///
/// - device 200: a genuine (but unregistered) camera — should match;
/// - device 201: a plug-claiming device with camera wire behavior — the
///   spoof path, including the two-window confirmation restart;
/// - device 202: constant-size machine-gun chatter matching no trained
///   class — the explicit no-match;
/// - devices 300..: one-window-short visitors that overflow the tracked
///   FIFO, exercising open-window eviction and re-tracking.
///
/// Each probe trace's DNS is merged into the capture's table so claimed
/// classes resolve on both sides.
fn inject_fingerprint_traffic(
    packets: &mut Vec<PacketRecord>,
    dns: &mut DnsTable,
    config: &ProxyConfig,
    seed: u64,
    stats: &mut ChaosStats,
) {
    let devices = testbed_devices();
    let start = SimTime::ZERO + config.bootstrap + SimDuration::from_secs(60);

    let mut add = |trace: fiat_net::Trace, cap: usize, stats: &mut ChaosStats| {
        dns.merge(&trace.dns);
        for pkt in trace.packets.iter().take(cap) {
            let mut p = pkt.clone();
            p.ts = SimTime::from_micros(start.as_micros() + pkt.ts.as_micros());
            insert_sorted(packets, p);
            stats.fingerprint_probes += 1;
        }
    };
    // WyzeCam is testbed index 2 (trained class 1), SP10 plug index 3
    // (trained class 2).
    add(class_trace(&devices[2], 200, seed ^ 0xa1), 60, stats);
    add(
        spoofed_trace(
            &devices[3],
            &devices[2],
            201,
            SimDuration::from_secs(7200),
            seed ^ 0xa2,
        ),
        110,
        stats,
    );

    let synth = |ts: SimTime, device: u16, size: u16| PacketRecord {
        ts,
        device,
        direction: Direction::FromDevice,
        local_ip: std::net::Ipv4Addr::new(192, 168, 9, (device % 250) as u8),
        remote_ip: std::net::Ipv4Addr::new(198, 51, 100, 7),
        local_port: 40_000,
        remote_port: 443,
        transport: Transport::Tcp,
        tcp_flags: TcpFlags::psh_ack(),
        tls: TlsVersion::Tls13,
        size,
        label: TrafficClass::Control,
    };
    for i in 0..40u64 {
        let ts = SimTime::from_micros(start.as_micros() + 10_000_000 + i * 123_000);
        insert_sorted(packets, synth(ts, 202, 999));
        stats.fingerprint_probes += 1;
    }
    for id in 0..60u64 {
        for j in 0..2u64 {
            let ts = SimTime::from_micros(start.as_micros() + id * 977_000 + j * 500_000);
            insert_sorted(packets, synth(ts, 300 + id as u16, 100 + (id % 7) as u16));
            stats.fingerprint_probes += 1;
        }
    }
}

/// Apply the timestamp-chaos mutations in place.
fn mutate_packets(
    packets: &mut Vec<PacketRecord>,
    rng: &mut StdRng,
    config: &ProxyConfig,
    stats: &mut ChaosStats,
) {
    let n = packets.len();
    if n < 32 {
        return;
    }

    // Adjacent swaps: one-step reordering across the whole capture.
    for _ in 0..n / 40 {
        let i = rng.gen_range(0..n - 1);
        packets.swap(i, i + 1);
        stats.swaps += 1;
    }

    // Long-range backwards moves: a late packet delivered early (its
    // timestamp still reads "future" relative to its neighbours).
    for _ in 0..n / 120 {
        let j = rng.gen_range(8..packets.len());
        let k = j - rng.gen_range(2..8);
        let p = packets.remove(j);
        packets.insert(k, p);
        stats.moves += 1;
    }

    // Duplicates: the same packet observed twice, possibly far apart.
    for _ in 0..n / 150 {
        let i = rng.gen_range(0..packets.len());
        let p = packets[i].clone();
        let at = rng.gen_range(i..=packets.len().min(i + 200));
        packets.insert(at.min(packets.len()), p);
        stats.dups += 1;
    }

    // Segment clock skew: a contiguous run shifted up to ±2 s, leaving
    // its packets out of order relative to both neighbours.
    for _ in 0..6 {
        let a = rng.gen_range(0..packets.len());
        let len = rng.gen_range(5..60).min(packets.len() - a);
        let delta = rng.gen_range(-2_000_000i64..=2_000_000);
        for p in &mut packets[a..a + len] {
            let us = (p.ts.as_micros() as i64 + delta).max(0);
            p.ts = SimTime::from_micros(us as u64);
            stats.skewed += 1;
        }
    }

    // Boundary-exact probes. Event gap: a cloned packet exactly at, and
    // 1 µs inside, the gap after its template — the strict `>= gap`
    // closure edge. Bootstrap: clones straddling `start + bootstrap` by
    // exactly 0 and 1 µs — the strict `< bootstrap` learning edge.
    for _ in 0..8 {
        let i = rng.gen_range(0..packets.len());
        let mut at_gap = packets[i].clone();
        at_gap.ts = packets[i].ts + config.event_gap;
        let mut inside_gap = packets[i].clone();
        inside_gap.ts = packets[i].ts + (config.event_gap - SimDuration::from_micros(1));
        let pos = (i + 1).min(packets.len());
        packets.insert(pos, at_gap);
        packets.insert(pos, inside_gap);
        stats.boundary_probes += 2;
    }
    let boot = SimTime::ZERO + config.bootstrap;
    for (k, probe_ts) in [
        (0usize, boot),
        (1, SimTime::from_micros(boot.as_micros() - 1)),
    ] {
        let template = packets[k * 7 % packets.len()].clone();
        let mut p = template;
        p.ts = probe_ts;
        let pos = packets
            .iter()
            .position(|q| q.ts >= probe_ts)
            .unwrap_or(packets.len());
        packets.insert(pos, p);
        stats.boundary_probes += 1;
    }
}

/// Inject cascade probes: a proof-covered 5-packet manual burst on a
/// trigger device (authorizing it in the interaction graph), then a
/// single manual-size packet on its target 40 s later — after the 30 s
/// humanness window has expired but inside the cascade window, so only
/// the cascade branch can allow it. Returns the proof times the op
/// builder must emit unconditionally.
fn inject_cascade_probes(
    packets: &mut Vec<PacketRecord>,
    devices: &[(u16, u16, usize)],
    rng: &mut StdRng,
    config: &ProxyConfig,
) -> Vec<SimTime> {
    let mut proofs = Vec::new();
    if packets.len() < 64 {
        return proofs;
    }
    // Mirrors the scenario's DAG below: 0 → 3 and 4 → 9.
    for &(trigger, target) in &[(0u16, 3u16), (4, 9)] {
        let (Some(&(_, tr_size, _)), Some(&(_, tg_size, _))) = (
            devices.iter().find(|d| d.0 == trigger),
            devices.iter().find(|d| d.0 == target),
        ) else {
            continue;
        };
        let (Some(tr_tpl), Some(tg_tpl)) = (
            packets.iter().find(|p| p.device == trigger).cloned(),
            packets.iter().find(|p| p.device == target).cloned(),
        ) else {
            continue;
        };
        let anchor = packets[rng.gen_range(packets.len() / 2..packets.len())].ts;
        let t0 = anchor + config.event_gap * 4;
        proofs.push(SimTime::from_micros(
            t0.as_micros().saturating_sub(1_000_000),
        ));
        for k in 0..5u64 {
            let mut p = tr_tpl.clone();
            p.size = tr_size;
            p.ts = t0 + SimDuration::from_micros(k * 200_000);
            insert_sorted(packets, p);
        }
        let mut p = tg_tpl.clone();
        p.size = tg_size;
        p.ts = t0 + SimDuration::from_secs(40);
        insert_sorted(packets, p);
    }
    proofs
}

/// Inject quarantine probes: manual bursts long enough to reach their
/// classification point in quiet time (so they classify unproven and the
/// proxy must *hold* them), one followed by a humanness proof 1 s after
/// the burst — inside the 3 s deadline, so the record must release —
/// and one left alone, so the next packet or flush past the deadline
/// must expire it. Returns the proof times the op builder emits
/// unconditionally.
fn inject_quarantine_probes(
    packets: &mut Vec<PacketRecord>,
    devices: &[(u16, u16, usize)],
    rng: &mut StdRng,
    config: &ProxyConfig,
    stats: &mut ChaosStats,
) -> Vec<SimTime> {
    let mut proofs = Vec::new();
    if config.proof_deadline.is_none() || packets.len() < 64 {
        return proofs;
    }
    let candidates: Vec<(u16, u16, usize)> = devices
        .iter()
        .filter(|&&(_, size, n)| size > 0 && n.min(config.classify_at_cap) >= 2)
        .copied()
        .collect();
    for (k, release) in [(0usize, true), (1, false)] {
        let Some(&(id, size, n)) = candidates.get(k * 2 % candidates.len().max(1)) else {
            continue;
        };
        let Some(tpl) = packets.iter().find(|p| p.device == id).cloned() else {
            continue;
        };
        let anchor = packets[rng.gen_range(packets.len() / 3..packets.len())].ts;
        let t0 = anchor + config.event_gap * 5;
        let burst = n.min(config.classify_at_cap).max(1) as u64 + 2;
        for j in 0..burst {
            let mut p = tpl.clone();
            p.size = size;
            p.ts = t0 + SimDuration::from_micros(j * 150_000);
            insert_sorted(packets, p);
            stats.quarantine_probes += 1;
        }
        if release {
            let last = t0 + SimDuration::from_micros((burst - 1) * 150_000);
            proofs.push(last + SimDuration::from_secs(1));
        }
    }
    proofs
}

fn insert_sorted(packets: &mut Vec<PacketRecord>, p: PacketRecord) {
    let pos = packets
        .iter()
        .position(|q| q.ts >= p.ts)
        .unwrap_or(packets.len());
    packets.insert(pos, p);
}

/// Inject short unverified-manual fragments: pairs of manual-size
/// packets 150 ms apart for devices whose first-N window is at least 3,
/// parked in quiet time 3 event gaps after a random anchor. The pair
/// closes below its classification point, so its verdict must come from
/// the retrospective path (and, unproven, count toward the lockout) —
/// the fragment-and-pause evasion the retro path exists to defeat.
fn inject_manual_fragments(
    packets: &mut Vec<PacketRecord>,
    devices: &[(u16, u16, usize)],
    rng: &mut StdRng,
    config: &ProxyConfig,
    stats: &mut ChaosStats,
) {
    let frag_devices: Vec<(u16, u16)> = devices
        .iter()
        .filter(|&&(_, _, n)| n.min(config.classify_at_cap) >= 3)
        .map(|&(id, size, _)| (id, size))
        .collect();
    if frag_devices.is_empty() || packets.len() < 64 {
        return;
    }
    for _ in 0..8 {
        let (id, size) = frag_devices[rng.gen_range(0..frag_devices.len())];
        let Some(template) = packets.iter().find(|p| p.device == id).cloned() else {
            continue;
        };
        let anchor = packets[rng.gen_range(packets.len() / 2..packets.len())].ts;
        for dt in [0u64, 150_000] {
            let mut frag = template.clone();
            frag.size = size;
            frag.ts = anchor + config.event_gap * 3 + SimDuration::from_micros(dt);
            let pos = packets
                .iter()
                .position(|q| q.ts >= frag.ts)
                .unwrap_or(packets.len());
            packets.insert(pos, frag);
            stats.boundary_probes += 1;
        }
    }
}

/// Greedily shrink a divergent scenario by chunk removal: drop halves,
/// then quarters, … then single ops, keeping any removal that still
/// diverges under `real_config` on the real side (pass `&sc.config` for
/// the oracle proper). `budget` bounds the number of replays.
pub fn shrink(sc: &Scenario, real_config: &ProxyConfig, budget: usize) -> Scenario {
    let mut ops = sc.ops.clone();
    let mut replays = 0usize;
    let mut chunk = (ops.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i + chunk <= ops.len() && replays < budget {
            let mut candidate = ops.clone();
            candidate.drain(i..i + chunk);
            let trial = Scenario {
                ops: candidate.clone(),
                ..sc.clone()
            };
            replays += 1;
            if run_scenario_with_real_config(&trial, real_config).is_some() {
                ops = candidate;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 || replays >= budget {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    Scenario { ops, ..sc.clone() }
}

/// One confirmed divergence, shrunk and rendered for the report (and
/// for the DESIGN.md known-divergence ledger, should it ever be
/// deliberate).
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Seed of the scenario that exposed it.
    pub scenario_seed: u64,
    /// Op index within the *shrunk* scenario.
    pub op_index: usize,
    /// Stable kind label (`decision` / `stats` / `audit`).
    pub kind: &'static str,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// Op count of the original scenario.
    pub original_ops: usize,
    /// Op count after shrinking.
    pub shrunk_ops: usize,
}

/// Aggregate result of a differential run.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Master seed.
    pub seed: u64,
    /// Scenarios executed.
    pub scenarios: usize,
    /// Total packet ops driven through both proxies.
    pub packets: u64,
    /// Total ops of any kind.
    pub ops: u64,
    /// Chaos applied across all scenarios.
    pub chaos: ChaosStats,
    /// Divergences found (empty = the implementations agree).
    pub divergences: Vec<DivergenceReport>,
}

impl OracleReport {
    /// Whether the run found no divergence.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Run the differential oracle: seeded scenarios over the 10-device
/// matrix until at least `target_packets` packet ops have been driven
/// through both implementations. Every divergence is shrunk (bounded
/// replays) and reported; the run continues to the next scenario so one
/// bug does not mask another.
pub fn run_differential(seed: u64, quick: bool, target_packets: u64) -> OracleReport {
    let mut report = OracleReport {
        seed,
        scenarios: 0,
        packets: 0,
        ops: 0,
        chaos: ChaosStats::default(),
        divergences: Vec::new(),
    };
    let mut si = 0u64;
    while report.packets < target_packets {
        let scenario_seed = seed
            .wrapping_mul(1_000_003)
            .wrapping_add(si.wrapping_shl(32));
        let (sc, chaos) = build_scenario(scenario_seed, quick);
        report.scenarios += 1;
        report.packets += sc.packet_count() as u64;
        report.ops += sc.ops.len() as u64;
        report.chaos += chaos;
        if run_scenario(&sc).is_some() {
            let shrunk = shrink(&sc, &sc.config, 160);
            let d = run_scenario(&shrunk).expect("shrink preserves divergence");
            report.divergences.push(DivergenceReport {
                scenario_seed,
                op_index: d.op_index,
                kind: d.kind.label(),
                detail: d.to_string(),
                original_ops: sc.ops.len(),
                shrunk_ops: shrunk.ops.len(),
            });
        }
        si += 1;
    }
    report
}

/// Render a report as the `experiments oracle` text artifact.
pub fn render_report(report: &OracleReport) -> String {
    let mut out = String::new();
    writeln!(out, "# Differential decision oracle").unwrap();
    writeln!(
        out,
        "seed: {}  scenarios: {}  packets: {}  ops: {}",
        report.seed, report.scenarios, report.packets, report.ops
    )
    .unwrap();
    let c = &report.chaos;
    writeln!(
        out,
        "chaos: {} swaps, {} moves, {} dups, {} skewed, {} boundary probes, {} quarantine probes, {} fingerprint probes",
        c.swaps,
        c.moves,
        c.dups,
        c.skewed,
        c.boundary_probes,
        c.quarantine_probes,
        c.fingerprint_probes
    )
    .unwrap();
    writeln!(
        out,
        "interleaved: {} humanness proofs, {} flushes, {} lockout clears",
        c.verify_ops, c.flush_ops, c.clear_ops
    )
    .unwrap();
    writeln!(out).unwrap();
    if report.divergences.is_empty() {
        writeln!(
            out,
            "no divergence: the naive reference and the real proxy agree on every \
             decision, counter, and audit entry"
        )
        .unwrap();
        writeln!(out, "(known-divergence ledger in DESIGN.md: empty)").unwrap();
    } else {
        for d in &report.divergences {
            writeln!(
                out,
                "DIVERGENCE seed={} op={} ({} ops, shrunk from {}):\n  {}",
                d.scenario_seed, d.op_index, d.shrunk_ops, d.original_ops, d.detail
            )
            .unwrap();
        }
        writeln!(
            out,
            "\nEvery divergence above must be fixed in fiat-core or recorded in \
             DESIGN.md's known-divergence ledger."
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nverdict: {}",
        if report.passed() {
            "PASS"
        } else {
            "DIVERGENCE"
        }
    )
    .unwrap();
    out
}
