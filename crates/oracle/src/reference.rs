//! A deliberately naive reference implementation of the FIAT decision
//! path, written straight from the paper and DESIGN.md.
//!
//! [`ReferenceProxy`] mirrors every *documented* behaviour of
//! `fiat_core::FiatProxy` — bootstrap, rule learning, rule matching,
//! event grouping, classify-at-N, humanness gating, interaction
//! cascades, brute-force lockout, retrospective closure, `flush` — but
//! shares none of its machinery:
//!
//! - no interned flow keys: every packet allocates a stringly
//!   [`FlowKey`], and the rule "table" is a linear `Vec` scan kept in
//!   LRU order (least recently matched at the front) — the bounded-mode
//!   eviction and ghost re-learn policies (DESIGN §18) are re-derived
//!   here over plain `Vec`s, not imported;
//! - no rule-table type: learning is an O(n²) bucket-and-scan rewrite
//!   of the §2.1 heuristic, with its own hard-coded 1 s minimum rule
//!   interval (deliberately *not* imported from `fiat_core::predict`,
//!   so a silent change to the constant shows up as a divergence);
//! - no `VecDeque` lockout window: a plain `Vec` re-filtered on every
//!   drop;
//! - no hash chain: the audit trail is a bare `Vec<AuditEntry>` the
//!   fuzzer compares entry-by-entry against the real log, truncated
//!   from the front under `max_audit_entries` exactly like the real
//!   log's checkpointed truncation (keep half, count the dropped);
//! - no interaction-graph type: cascades recurse over a flat edge list.
//!
//! The only components shared with the real proxy are *inputs and
//! vocabulary*: `PacketRecord`, `DnsTable`, `ProxyConfig`,
//! `ProxyDecision`/`ProxyStats`, `AuditEntry`, and the
//! [`EventClassifier`] itself — the oracle checks the decision *path*,
//! not the classifier's ML, so both sides must consult the identical
//! classifier or every comparison would drown in model noise.
//!
//! Keep this file boring. When it disagrees with `FiatProxy`, the bug is
//! decided by reading DESIGN.md, not by making this file cleverer.

use fiat_core::audit::{AuditEntry, AuditVerdict};
use fiat_core::classifier::EventClass;
use fiat_core::{
    AllowReason, DropReason, EventClassifier, FingerprintVerdict, ProxyConfig, ProxyDecision,
    ProxyStats, UnpredictableEvent,
};
use fiat_fingerprint::{ClassSignature, MatcherConfig, FEATURE_COUNT, MAX_CLAIM_DOMAINS};
use fiat_net::{DnsTable, FlowKey, PacketRecord, SimDuration, SimTime};
use std::collections::BTreeMap;

/// §2.1: a repeating interval must be at least this long to be a rule
/// (shorter repeats are bursts, not schedules). Redeclared here on
/// purpose — see the module docs.
const MIN_RULE_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// What the rest of an open event's packets get once it is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    AllowRest(AllowReason),
    DropRest(DropReason),
    /// Verdict pending: further packets join the quarantine record.
    Quarantine,
}

/// A manual event held pending its humanness proof (DESIGN §14): at most
/// one per device, resolved lazily — released by a proof arriving at or
/// before `deadline`, expired by the first operation observing
/// `now > deadline` (with the episode backdated to the deadline).
#[derive(Debug, Clone)]
struct RefQuarantine {
    /// Held-packet count (the reference never forwards, so the packets
    /// themselves are not needed — only their accounting).
    held: u64,
    class: EventClass,
    deadline: SimTime,
}

#[derive(Debug, Clone)]
struct RefEvent {
    packets: Vec<PacketRecord>,
    /// High-water mark of observed timestamps, never rewound: a
    /// backwards (reordered) packet joins the event — its saturating
    /// gap reads as zero — but must not shrink the gap the next
    /// in-order packet measures.
    last: SimTime,
    fate: Option<Fate>,
}

struct RefDevice {
    classifier: EventClassifier,
    classify_at: usize,
    open: Option<RefEvent>,
    /// Unverified-manual episode times inside the sliding lockout
    /// window, clamped to a monotone high-water mark exactly like the
    /// real proxy's deque (`SimTime` subtraction saturates, so a
    /// non-monotone history would never expire).
    drops: Vec<SimTime>,
    locked: bool,
    quarantine: Option<RefQuarantine>,
}

/// An evicted rule's re-learn state: the flow re-promotes once it
/// repeats a qualifying interval (two consecutive inter-arrivals in the
/// same tolerance bin, at least [`MIN_RULE_INTERVAL`] long) — the same
/// evidence bootstrap learning demanded.
#[derive(Debug, Clone)]
struct RefGhost {
    device: u16,
    key: FlowKey,
    last_ts: Option<SimTime>,
    last_bin: Option<u64>,
}

/// One unknown device's open fingerprint evidence, kept naive: the raw
/// packets are stored whole and the histogram is recomputed from scratch
/// at seal time (the real engine folds incrementally into a fixed
/// array). Claimed domains are plain strings, not interned ids.
#[derive(Debug, Clone, Default)]
struct RefEvidence {
    /// `(timestamp µs, wire size, from_device, udp)` per packet, in
    /// arrival order.
    packets: Vec<(u64, u16, bool, bool)>,
    claims: Vec<String>,
    /// Wrong class a previous full window confidently matched. While
    /// armed the device's traffic reads `NoMatch` (dropped); a second
    /// window confidently matching *any* wrong class seals `Spoof` —
    /// exactly one restart, no re-arming.
    candidate: Option<u16>,
}

/// Naive mirror of the `fiat-fingerprint` evidence engine (DESIGN §19).
///
/// Shares only *data* with the real engine — the learned
/// [`ClassSignature`] exemplars/domains and the [`MatcherConfig`]
/// numbers, the same way the oracle shares the event classifier — but
/// none of the arithmetic: bucket ladders are independent hard-coded
/// `if` chains, per-mille normalization and L1 distances are recomputed
/// from raw stored packets at seal time, and claimed-class resolution is
/// a linear string scan instead of interned-id binary search. A silent
/// change to a threshold constant or to the window/FIFO/two-window
/// semantics in `fiat-fingerprint` therefore shows up as a divergence.
struct RefFingerprint {
    sigs: Vec<ClassSignature>,
    cfg: MatcherConfig,
    tracked: Vec<(u16, RefEvidence)>,
    sealed: Vec<(u16, FingerprintVerdict)>,
}

impl RefFingerprint {
    fn new(sigs: Vec<ClassSignature>, mut cfg: MatcherConfig) -> RefFingerprint {
        // The same clamps the real engine applies at construction.
        cfg.claim_domains = cfg.claim_domains.min(MAX_CLAIM_DOMAINS);
        cfg.evidence_window = cfg.evidence_window.max(1);
        cfg.max_tracked = cfg.max_tracked.max(1);
        cfg.max_sealed = cfg.max_sealed.max(1);
        RefFingerprint {
            sigs,
            cfg,
            tracked: Vec::new(),
            sealed: Vec::new(),
        }
    }

    /// Redeclared feature layout: 16 size buckets × 2 directions, 8
    /// inter-arrival buckets, 8 size-delta buckets, 2 transport counts.
    /// The literal ladders below are *not* imported from
    /// `fiat_fingerprint::features` — that is the point.
    fn ref_size_bucket(size: u16) -> usize {
        if size <= 64 {
            0
        } else if size <= 80 {
            1
        } else if size <= 96 {
            2
        } else if size <= 112 {
            3
        } else if size <= 128 {
            4
        } else if size <= 160 {
            5
        } else if size <= 192 {
            6
        } else if size <= 224 {
            7
        } else if size <= 256 {
            8
        } else if size <= 320 {
            9
        } else if size <= 384 {
            10
        } else if size <= 512 {
            11
        } else if size <= 768 {
            12
        } else if size <= 1024 {
            13
        } else if size <= 2048 {
            14
        } else {
            15
        }
    }

    fn ref_iat_bucket(ms: u64) -> usize {
        if ms <= 16 {
            0
        } else if ms <= 256 {
            1
        } else if ms <= 4_096 {
            2
        } else if ms <= 30_000 {
            3
        } else if ms <= 60_000 {
            4
        } else if ms <= 90_000 {
            5
        } else if ms <= 240_000 {
            6
        } else {
            7
        }
    }

    fn ref_delta_bucket(delta: u16) -> usize {
        if delta == 0 {
            0
        } else if delta <= 4 {
            1
        } else if delta <= 8 {
            2
        } else if delta <= 16 {
            3
        } else if delta <= 32 {
            4
        } else if delta <= 64 {
            5
        } else if delta <= 256 {
            6
        } else {
            7
        }
    }

    /// Recompute the per-mille window profile from the raw packets —
    /// histogram, then per-group normalization over the literal group
    /// bounds (size 0..32, IAT 32..40, delta 40..48, transport 48..50).
    fn ref_profile(packets: &[(u64, u16, bool, bool)]) -> [u16; FEATURE_COUNT] {
        let mut hist = [0u64; FEATURE_COUNT];
        let mut prev: Option<(u64, u16)> = None;
        for &(ts_us, size, from_device, udp) in packets {
            let base = if from_device { 0 } else { 16 };
            hist[base + Self::ref_size_bucket(size)] += 1;
            if let Some((prev_us, prev_size)) = prev {
                let gap_ms = ts_us.saturating_sub(prev_us) / 1_000;
                hist[32 + Self::ref_iat_bucket(gap_ms)] += 1;
                let delta = size.abs_diff(prev_size);
                hist[40 + Self::ref_delta_bucket(delta)] += 1;
            }
            prev = Some((ts_us, size));
            if udp {
                hist[49] += 1;
            } else {
                hist[48] += 1;
            }
        }
        let mut out = [0u16; FEATURE_COUNT];
        for (start, end) in [(0usize, 32usize), (32, 40), (40, 48), (48, 50)] {
            let total: u64 = hist[start..end].iter().sum();
            if total == 0 {
                continue;
            }
            for i in start..end {
                out[i] = (hist[i] * 1000 / total) as u16;
            }
        }
        out
    }

    /// Nearest-exemplar L1 distance to one class.
    fn ref_class_distance(sig: &ClassSignature, obs: &[u16; FEATURE_COUNT]) -> u32 {
        let mut best = u32::MAX;
        for e in &sig.exemplars {
            let mut d = 0u32;
            for i in 0..FEATURE_COUNT {
                d += u32::from(e[i].abs_diff(obs[i]));
            }
            best = best.min(d);
        }
        best
    }

    /// The confident behavioral match: nearest class under the distance
    /// threshold, with the runner-up at least `min_margin` behind. Ties
    /// keep the lowest index, like the real matcher.
    fn ref_behavioral(&self, obs: &[u16; FEATURE_COUNT]) -> Option<u16> {
        let dists: Vec<u32> = self
            .sigs
            .iter()
            .map(|s| Self::ref_class_distance(s, obs))
            .collect();
        let mut best: Option<(usize, u32)> = None;
        for (i, &d) in dists.iter().enumerate() {
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        let (bi, bd) = best?;
        if bd > self.cfg.max_distance {
            return None;
        }
        let runner = dists
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != bi)
            .map(|(_, &d)| d)
            .min()
            .unwrap_or(u32::MAX);
        if runner != u32::MAX && runner - bd < self.cfg.min_margin {
            return None;
        }
        Some(bi as u16)
    }

    /// The class the device claims by its destinations: most overlap
    /// between its claimed domains and a class's domain vocabulary,
    /// ties toward the lowest index, zero overlap is no claim.
    fn ref_claimed(&self, claims: &[String]) -> Option<u16> {
        let mut best: Option<(u16, usize)> = None;
        for (i, sig) in self.sigs.iter().enumerate() {
            let overlap = claims.iter().filter(|c| sig.domains.contains(c)).count();
            if overlap > 0 && best.is_none_or(|(_, b)| overlap > b) {
                best = Some((i as u16, overlap));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Seal a window's raw evidence: behavioral nearest-signature
    /// decision crossed with the claimed class.
    fn seal_verdict(&self, ev: &RefEvidence) -> FingerprintVerdict {
        let obs = Self::ref_profile(&ev.packets);
        match self.ref_behavioral(&obs) {
            Some(b) => match self.ref_claimed(&ev.claims) {
                Some(c) if c != b => FingerprintVerdict::Spoof {
                    claimed: c,
                    matched: b,
                },
                _ => FingerprintVerdict::Match(b),
            },
            None => FingerprintVerdict::NoMatch,
        }
    }

    /// Record a sealed verdict in the FIFO cache.
    fn commit(&mut self, device: u16, verdict: FingerprintVerdict) {
        if self.sealed.len() >= self.cfg.max_sealed {
            self.sealed.remove(0);
        }
        self.sealed.push((device, verdict));
    }

    /// Mirror of `FingerprintEngine::observe`: cached sealed verdict
    /// (LRU-refreshed on replay), else accumulate into the device's
    /// LRU-capped window; a full window seals — with the one-restart
    /// spoof confirmation rule (armed candidate drops traffic, any
    /// confident wrong class confirms) and forced evictions sealing
    /// their partial evidence. Returns the verdict plus the just-sealed
    /// edge (which is when the audit entry is written).
    fn observe(&mut self, pkt: &PacketRecord, dns: &DnsTable) -> (FingerprintVerdict, bool) {
        if let Some(i) = self.sealed.iter().position(|(d, _)| *d == pkt.device) {
            let entry = self.sealed.remove(i);
            let v = entry.1;
            self.sealed.push(entry);
            return (v, false);
        }
        match self.tracked.iter().position(|(d, _)| *d == pkt.device) {
            Some(i) => {
                // Touch: the active window moves to the back; the
                // eviction victim is always the least recently active.
                let entry = self.tracked.remove(i);
                self.tracked.push(entry);
            }
            None => {
                if self.tracked.len() >= self.cfg.max_tracked {
                    // Forced eviction seals the victim with its partial
                    // evidence (un-confirmed Spoof demoted to NoMatch),
                    // like the real engine: a discarded open window
                    // would be an attacker-resettable fail-open.
                    let (victim, ev) = self.tracked.remove(0);
                    let verdict = match self.seal_verdict(&ev) {
                        FingerprintVerdict::Spoof { .. } if ev.candidate.is_none() => {
                            FingerprintVerdict::NoMatch
                        }
                        v => v,
                    };
                    self.commit(victim, verdict);
                }
                self.tracked.push((pkt.device, RefEvidence::default()));
            }
        };
        let idx = self.tracked.len() - 1;
        let ev = &mut self.tracked[idx].1;
        ev.packets.push((
            pkt.ts.as_micros(),
            pkt.size,
            pkt.direction == fiat_net::Direction::FromDevice,
            pkt.transport == fiat_net::Transport::Udp,
        ));
        if ev.claims.len() < self.cfg.claim_domains {
            if let fiat_net::RemoteId::Domain(id) = dns.remote_id(pkt.remote_ip) {
                let d = dns.domain_str(id);
                if !ev.claims.iter().any(|c| c == d) {
                    ev.claims.push(d.to_string());
                }
            }
        }
        if (ev.packets.len() as u32) < self.cfg.evidence_window {
            // An armed candidate quarantines the device while the
            // confirmation window fills: NoMatch (drop), never Pending.
            let v = if ev.candidate.is_some() {
                FingerprintVerdict::NoMatch
            } else {
                FingerprintVerdict::Pending
            };
            return (v, false);
        }

        let verdict = self.seal_verdict(&self.tracked[idx].1);
        if let FingerprintVerdict::Spoof { matched, .. } = verdict {
            let ev = &mut self.tracked[idx].1;
            if ev.candidate.is_none() {
                // First contradictory window: restart with the candidate
                // armed; the device reads as NoMatch (quarantined, not
                // yet accused). Any confident wrong class in the second
                // window confirms — no re-arming.
                ev.packets.clear();
                ev.claims.clear();
                ev.candidate = Some(matched);
                return (FingerprintVerdict::NoMatch, false);
            }
        }
        let (device, _) = self.tracked.remove(idx);
        self.commit(device, verdict);
        (verdict, true)
    }
}

/// Naive reference decision pipeline. See the module docs.
pub struct ReferenceProxy {
    config: ProxyConfig,
    dns: DnsTable,
    started_at: Option<SimTime>,
    bootstrap_buffer: Vec<PacketRecord>,
    /// `None` until the first post-bootstrap packet triggers learning.
    /// Kept in LRU order: least recently matched at the front, so the
    /// bounded-mode eviction victim is always `rules[0]`.
    rules: Option<Vec<(u16, FlowKey)>>,
    /// Evicted-rule ghosts, LRU order like `rules`.
    ghosts: Vec<RefGhost>,
    devices: BTreeMap<u16, RefDevice>,
    unknown_seen: Vec<u16>,
    /// Naive fingerprint mirror; `None` means the gate is uninstalled
    /// (the legacy unknown-device fail-open applies, gate knob or not),
    /// exactly like the real proxy's optional boxed gate.
    fingerprint: Option<RefFingerprint>,
    human_valid_until: SimTime,
    /// Interaction DAG as a flat `trigger → target` edge list, plus the
    /// last authorized time per device. `None` means no graph installed
    /// (the real proxy distinguishes "no graph" from "empty graph").
    interactions: Option<RefGraph>,
    stats: ProxyStats,
    audit: Vec<AuditEntry>,
    /// Entries truncated off the front of `audit` by the cap.
    audit_truncated: u64,
}

#[derive(Debug, Default)]
struct RefGraph {
    cascade_window: SimDuration,
    edges: Vec<(u16, u16)>,
    authorized_at: BTreeMap<u16, SimTime>,
}

impl RefGraph {
    /// §7 cascade: an edge `trigger → target` covers `target` while the
    /// trigger was authorized within the window, or is itself covered.
    /// Plain recursion over the edge list; callers keep the graph
    /// acyclic (the real `InteractionGraph::add_edge` enforces it).
    fn cascade_covers(&self, target: u16, now: SimTime) -> bool {
        self.edges
            .iter()
            .filter(|&&(_, t)| t == target)
            .any(|&(trigger, _)| {
                let fresh = self
                    .authorized_at
                    .get(&trigger)
                    .is_some_and(|&t| now.since(t) <= self.cascade_window && now >= t);
                fresh || self.cascade_covers(trigger, now)
            })
    }
}

impl ReferenceProxy {
    /// Reference proxy with the same configuration the real proxy runs.
    pub fn new(config: ProxyConfig) -> Self {
        ReferenceProxy {
            config,
            dns: DnsTable::new(),
            started_at: None,
            bootstrap_buffer: Vec::new(),
            rules: None,
            ghosts: Vec::new(),
            devices: BTreeMap::new(),
            unknown_seen: Vec::new(),
            fingerprint: None,
            human_valid_until: SimTime::ZERO,
            interactions: None,
            stats: ProxyStats::default(),
            audit: Vec::new(),
            audit_truncated: 0,
        }
    }

    /// Register a device, mirroring `FiatProxy::register_device`'s
    /// first-N clamp: `min(N, classify_at_cap).max(1)`.
    pub fn register_device(
        &mut self,
        device: u16,
        classifier: EventClassifier,
        min_packets_to_complete: usize,
    ) {
        let classify_at = min_packets_to_complete
            .min(self.config.classify_at_cap)
            .max(1);
        self.devices.insert(
            device,
            RefDevice {
                classifier,
                classify_at,
                open: None,
                drops: Vec::new(),
                locked: false,
                quarantine: None,
            },
        );
    }

    /// Provide the capture's DNS knowledge.
    pub fn set_dns(&mut self, dns: DnsTable) {
        self.dns = dns;
    }

    /// Install the naive fingerprint mirror over shared learned
    /// signatures and matcher numbers (effective only when
    /// `ProxyConfig::fingerprint_unknown` is set, mirroring
    /// `FiatProxy::set_fingerprinter`).
    pub fn set_fingerprint(&mut self, sigs: Vec<ClassSignature>, cfg: MatcherConfig) {
        self.fingerprint = Some(RefFingerprint::new(sigs, cfg));
    }

    /// Begin operation; bootstrap runs until `now + config.bootstrap`.
    pub fn start(&mut self, now: SimTime) {
        self.started_at = Some(now);
    }

    /// Install an interaction DAG with the given cascade window.
    pub fn set_interactions(&mut self, cascade_window: SimDuration, edges: &[(u16, u16)]) {
        self.interactions = Some(RefGraph {
            cascade_window,
            edges: edges.to_vec(),
            authorized_at: BTreeMap::new(),
        });
    }

    /// A successful humanness proof at `now` refreshes the validity
    /// window (the transport/crypto half of `on_auth_zero_rtt` is out of
    /// the oracle's scope; the fuzzer drives the real side with genuine
    /// evidence and a perfect validator so both sides land here). With
    /// quarantine enabled the proof also resolves every pending record,
    /// in ascending device order: releases within the deadline, expiries
    /// past it.
    pub fn verify_human(&mut self, now: SimTime) {
        self.human_valid_until = now + self.config.human_valid_window;
        if self.config.proof_deadline.is_none() {
            return;
        }
        let ids: Vec<u16> = self
            .devices
            .iter()
            .filter(|(_, d)| d.quarantine.is_some())
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            let deadline = self.devices[&id]
                .quarantine
                .as_ref()
                .expect("filtered above")
                .deadline;
            if now > deadline {
                self.expire_quarantine(id, now);
                continue;
            }
            let dev = self.devices.get_mut(&id).expect("filtered above");
            let q = dev.quarantine.take().expect("filtered above");
            if let Some(open) = &mut dev.open {
                if open.fate == Some(Fate::Quarantine) {
                    open.fate = Some(Fate::AllowRest(AllowReason::QuarantineReleased));
                }
            }
            if let Some(g) = &mut self.interactions {
                g.authorized_at.insert(id, now);
            }
            self.push_audit(AuditEntry {
                ts: now,
                device: id,
                class: q.class,
                verdict: AuditVerdict::QuarantineReleased,
            });
        }
    }

    /// §5.4 manual verification: unlock, forget the episode history, and
    /// discard the open (fate `DropRest`) event. A pending quarantine is
    /// deliberately untouched — the user vouched for the device, not for
    /// the held command, which still awaits its proof.
    pub fn clear_lockout(&mut self, device: u16) {
        if let Some(d) = self.devices.get_mut(&device) {
            d.locked = false;
            d.drops.clear();
            d.open = None;
        }
    }

    /// Demote an expired (or cap-demoted) quarantine: held packets
    /// discarded, episode credited to the lockout window at
    /// `min(now, deadline)` — the deadline itself for a lazy expiry,
    /// the demotion time for a record-cap demotion — audit entry
    /// stamped likewise, and the open event (if still the quarantined
    /// one) sealed as `QuarantineExpired`.
    fn expire_quarantine(&mut self, device: u16, now: SimTime) {
        let dev = self.devices.get_mut(&device).expect("caller checked");
        let q = dev.quarantine.take().expect("caller checked");
        let at = now.min(q.deadline);
        self.stats.quarantine_expired += q.held;
        let locked = record_unverified_drop(&mut dev.drops, at, &self.config);
        if locked && !dev.locked {
            dev.locked = true;
        }
        if let Some(open) = &mut dev.open {
            if open.fate == Some(Fate::Quarantine) {
                open.fate = Some(Fate::DropRest(DropReason::QuarantineExpired));
            }
        }
        self.push_audit(AuditEntry {
            ts: at,
            device,
            class: q.class,
            verdict: AuditVerdict::QuarantineExpired,
        });
    }

    /// Demote the live record with the oldest deadline (ties: lowest
    /// device id), mirroring the real proxy's record-cap enforcement.
    fn demote_oldest_quarantine(&mut self, now: SimTime) {
        let mut victim: Option<(SimTime, u16)> = None;
        for (&id, d) in &self.devices {
            if let Some(q) = &d.quarantine {
                let cand = (q.deadline, id);
                if victim.is_none_or(|v| cand < v) {
                    victim = Some(cand);
                }
            }
        }
        if let Some((_, id)) = victim {
            self.expire_quarantine(id, now);
        }
    }

    /// Append an audit entry, enforcing `max_audit_entries` exactly like
    /// the real log's checkpointed truncation: past the cap, drop the
    /// oldest half in one block and count the dropped entries.
    fn push_audit(&mut self, entry: AuditEntry) {
        self.audit.push(entry);
        if let Some(max) = self.config.max_audit_entries {
            if self.audit.len() > max {
                let keep = max / 2;
                let drop_n = self.audit.len() - keep;
                self.audit.drain(..drop_n);
                self.audit_truncated += drop_n as u64;
            }
        }
    }

    /// Decision counters so far.
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    /// The audit trail, in append order (no hash chain — the fuzzer
    /// checks the real proxy's chain separately).
    pub fn audit_entries(&self) -> &[AuditEntry] {
        &self.audit
    }

    /// Entries truncated off the front of the audit trail by the cap
    /// (compare with the real log's `truncated()`).
    pub fn audit_truncated(&self) -> u64 {
        self.audit_truncated
    }

    /// Live learned-rule count (0 while bootstrap is still running).
    pub fn rule_count(&self) -> usize {
        self.rules.as_ref().map_or(0, Vec::len)
    }

    /// Evicted-rule ghost count.
    pub fn ghost_count(&self) -> usize {
        self.ghosts.len()
    }

    /// Whether a device is locked out.
    pub fn is_locked(&self, device: u16) -> bool {
        self.devices.get(&device).is_some_and(|d| d.locked)
    }

    /// Decide one packet and count the verdict.
    pub fn on_packet(&mut self, pkt: &PacketRecord) -> ProxyDecision {
        let d = self.decide(pkt);
        match d {
            ProxyDecision::Allow(AllowReason::Bootstrap) => self.stats.bootstrap += 1,
            ProxyDecision::Allow(AllowReason::RuleHit) => self.stats.rule_hit += 1,
            ProxyDecision::Allow(AllowReason::FirstN) => self.stats.first_n += 1,
            ProxyDecision::Allow(AllowReason::NonManual) => self.stats.non_manual += 1,
            ProxyDecision::Allow(AllowReason::ManualVerified) => self.stats.manual_verified += 1,
            ProxyDecision::Allow(AllowReason::Cascade) => self.stats.cascade += 1,
            ProxyDecision::Allow(AllowReason::UnknownDevice) => self.stats.unknown_device += 1,
            ProxyDecision::Allow(AllowReason::QuarantineReleased) => {
                self.stats.quarantine_released += 1
            }
            ProxyDecision::Allow(AllowReason::FingerprintMatched) => {
                self.stats.fingerprint_matched += 1
            }
            ProxyDecision::Drop(DropReason::UnknownQuarantined) => self.stats.dropped_unknown += 1,
            ProxyDecision::Drop(DropReason::ManualUnverified) => self.stats.dropped_unverified += 1,
            ProxyDecision::Drop(DropReason::LockedOut) => self.stats.dropped_lockout += 1,
            ProxyDecision::Drop(DropReason::QuarantineExpired) => {
                self.stats.dropped_quarantine += 1
            }
            ProxyDecision::Quarantine => self.stats.quarantined += 1,
        }
        d
    }

    /// Figure 4, step by step, in the documented order: lockout check,
    /// bootstrap, lazy rule learning, rule match, unknown-device
    /// fail-open, stale-event closure (with retrospective verdict),
    /// first-N allowance, classification, humanness/cascade gating,
    /// lockout accounting.
    fn decide(&mut self, pkt: &PacketRecord) -> ProxyDecision {
        let now = pkt.ts;
        let started = self.started_at.expect("reference proxy not started");

        if self.devices.get(&pkt.device).is_some_and(|d| d.locked) {
            return ProxyDecision::Drop(DropReason::LockedOut);
        }

        if now - started < self.config.bootstrap {
            self.bootstrap_buffer.push(pkt.clone());
            return ProxyDecision::Allow(AllowReason::Bootstrap);
        }
        if self.rules.is_none() {
            let rules = self.learn_rules();
            self.rules = Some(rules);
            // The cap applies from the moment the table is born, exactly
            // like the real proxy's post-learn `set_capacity`.
            self.apply_rule_cap();
        }

        let key = (
            pkt.device,
            FlowKey::of(self.config.flow_def, pkt, &self.dns),
        );
        let rules = self.rules.as_mut().expect("rules learned");
        if let Some(pos) = rules.iter().position(|k| *k == key) {
            // LRU touch: a hit moves the rule to the most-recently-
            // matched end, so `rules[0]` stays the eviction victim.
            let k = rules.remove(pos);
            rules.push(k);
            return ProxyDecision::Allow(AllowReason::RuleHit);
        }
        if self.advance_ghost(&key, now) {
            return ProxyDecision::Allow(AllowReason::RuleHit);
        }

        // Captured before the device borrow, exactly like the real
        // proxy: the window is global state, not per-device.
        let human_fresh = now <= self.human_valid_until;
        let gap = self.config.event_gap;

        if !self.devices.contains_key(&pkt.device) {
            // Fingerprint gate first (when installed and enabled): the
            // behavioral verdict decides, and the legacy fail-open below
            // never runs for this device.
            if self.config.fingerprint_unknown && self.fingerprint.is_some() {
                let (verdict, just_sealed) = {
                    let fp = self.fingerprint.as_mut().expect("checked above");
                    fp.observe(pkt, &self.dns)
                };
                if just_sealed {
                    self.push_audit(AuditEntry {
                        ts: now,
                        device: pkt.device,
                        class: EventClass::Control,
                        verdict: match verdict {
                            FingerprintVerdict::Match(_) => AuditVerdict::FingerprintMatched,
                            FingerprintVerdict::Spoof { .. } => AuditVerdict::SpoofSuspected,
                            _ => AuditVerdict::UnknownQuarantined,
                        },
                    });
                }
                return match verdict {
                    FingerprintVerdict::Pending => ProxyDecision::Allow(AllowReason::UnknownDevice),
                    FingerprintVerdict::Match(_) => {
                        ProxyDecision::Allow(AllowReason::FingerprintMatched)
                    }
                    FingerprintVerdict::Spoof { .. } | FingerprintVerdict::NoMatch => {
                        ProxyDecision::Drop(DropReason::UnknownQuarantined)
                    }
                };
            }
            // Fail open for unenrolled devices, audited once per device.
            if !self.unknown_seen.contains(&pkt.device) {
                self.unknown_seen.push(pkt.device);
                self.push_audit(AuditEntry {
                    ts: now,
                    device: pkt.device,
                    class: EventClass::Control,
                    verdict: AuditVerdict::AllowedUnknownDevice,
                });
            }
            return ProxyDecision::Allow(AllowReason::UnknownDevice);
        }

        // Lazy quarantine expiry: the first packet observed past the
        // deadline demotes the pending record before anything else
        // touches the device, and if the demotion locked the device this
        // packet drops right here.
        if self
            .devices
            .get(&pkt.device)
            .is_some_and(|d| d.quarantine.as_ref().is_some_and(|q| now > q.deadline))
        {
            self.expire_quarantine(pkt.device, now);
            if self.devices[&pkt.device].locked {
                return ProxyDecision::Drop(DropReason::LockedOut);
            }
        }

        // Close a stale event; sub-first-N closures get a retrospective
        // verdict, and if that verdict locked the device this packet is
        // dropped without opening a fresh event.
        let retro = self.config.retro_classify;
        let human_valid_until = self.human_valid_until;
        let stale = {
            let dev = self.devices.get_mut(&pkt.device).expect("checked above");
            if dev.open.as_ref().is_some_and(|e| now - e.last >= gap) {
                dev.open.take()
            } else {
                None
            }
        };
        if let Some(ev) = stale {
            if ev.fate.is_none() && retro {
                self.retro_close(pkt.device, ev, human_valid_until);
                if self.devices[&pkt.device].locked {
                    return ProxyDecision::Drop(DropReason::LockedOut);
                }
            }
        }

        let dev = self.devices.get_mut(&pkt.device).expect("checked above");
        let quarantine_pending = dev.quarantine.is_some();
        let open = dev.open.get_or_insert_with(|| RefEvent {
            packets: Vec::new(),
            last: now,
            fate: None,
        });
        // Buffer only while the verdict is pending: a sealed event's
        // packets are never re-read, so holding them would grow memory
        // for as long as the event stays open (the unbounded-state bug
        // DESIGN §18 fixed).
        if open.fate.is_none() {
            open.packets.push(pkt.clone());
        }
        open.last = open.last.max(now);

        if let Some(fate) = open.fate {
            return match fate {
                Fate::AllowRest(reason) => ProxyDecision::Allow(reason),
                Fate::DropRest(reason) => ProxyDecision::Drop(reason),
                Fate::Quarantine => {
                    // Join the pending record while it has room; past
                    // capacity the overflow sheds as a plain unverified
                    // drop (no audit entry, no lockout credit).
                    let q = dev.quarantine.as_mut().expect("fate implies record");
                    if (q.held as usize) < self.config.quarantine_capacity {
                        q.held += 1;
                        ProxyDecision::Quarantine
                    } else {
                        ProxyDecision::Drop(DropReason::ManualUnverified)
                    }
                }
            };
        }

        if open.packets.len() < dev.classify_at {
            return ProxyDecision::Allow(AllowReason::FirstN);
        }

        // Classification point: the event so far, first packets as
        // features.
        let ev = UnpredictableEvent {
            device: pkt.device,
            packets: (0..open.packets.len()).collect(),
            start: open.packets[0].ts,
            end: open.last,
        };
        let class = dev.classifier.classify_event(&ev, &open.packets);
        if !class.is_manual() {
            open.fate = Some(Fate::AllowRest(AllowReason::NonManual));
            self.push_audit(AuditEntry {
                ts: now,
                device: pkt.device,
                class,
                verdict: AuditVerdict::AllowedNonManual,
            });
            return ProxyDecision::Allow(AllowReason::NonManual);
        }

        if human_fresh {
            open.fate = Some(Fate::AllowRest(AllowReason::ManualVerified));
            if let Some(g) = &mut self.interactions {
                g.authorized_at.insert(pkt.device, now);
            }
            self.push_audit(AuditEntry {
                ts: now,
                device: pkt.device,
                class,
                verdict: AuditVerdict::AllowedManualVerified,
            });
            return ProxyDecision::Allow(AllowReason::ManualVerified);
        }

        if self
            .interactions
            .as_ref()
            .is_some_and(|g| g.cascade_covers(pkt.device, now))
        {
            open.fate = Some(Fate::AllowRest(AllowReason::Cascade));
            if let Some(g) = &mut self.interactions {
                g.authorized_at.insert(pkt.device, now);
            }
            self.push_audit(AuditEntry {
                ts: now,
                device: pkt.device,
                class,
                verdict: AuditVerdict::AllowedCascade,
            });
            return ProxyDecision::Allow(AllowReason::Cascade);
        }

        // Unverified manual verdict. With a proof deadline configured
        // and no record already pending, hold the event instead of
        // demoting it (DESIGN §14); a second concurrent manual event on
        // the same device demotes immediately — one record per device.
        if let Some(dl) = self.config.proof_deadline {
            if !quarantine_pending {
                // Home-wide record cap: admitting this record past it
                // demotes the oldest-deadline record first, before the
                // new record joins (mirrors the real proxy's ordering).
                if let Some(cap) = self.config.max_quarantine_records {
                    let live = self
                        .devices
                        .values()
                        .filter(|d| d.quarantine.is_some())
                        .count();
                    if live >= cap.max(1) {
                        self.demote_oldest_quarantine(now);
                    }
                }
                let dev = self.devices.get_mut(&pkt.device).expect("checked above");
                dev.quarantine = Some(RefQuarantine {
                    held: 1,
                    class,
                    deadline: now + dl,
                });
                if let Some(open) = &mut dev.open {
                    open.fate = Some(Fate::Quarantine);
                }
                return ProxyDecision::Quarantine;
            }
        }

        open.fate = Some(Fate::DropRest(DropReason::ManualUnverified));
        let locked = record_unverified_drop(&mut dev.drops, now, &self.config);
        if locked {
            dev.locked = true;
        }
        self.push_audit(AuditEntry {
            ts: now,
            device: pkt.device,
            class,
            verdict: if locked {
                AuditVerdict::LockedOut
            } else {
                AuditVerdict::DroppedUnverified
            },
        });
        ProxyDecision::Drop(DropReason::ManualUnverified)
    }

    /// Close every open event whose gap expired by `now`, in ascending
    /// device order (matching the real proxy's sorted flush).
    pub fn flush(&mut self, now: SimTime) {
        let gap = self.config.event_gap;
        let retro = self.config.retro_classify;
        let human_valid_until = self.human_valid_until;
        let ids: Vec<u16> = self.devices.keys().copied().collect();
        for id in ids {
            if self.devices[&id]
                .quarantine
                .as_ref()
                .is_some_and(|q| now > q.deadline)
            {
                self.expire_quarantine(id, now);
            }
            let dev = self.devices.get_mut(&id).expect("id from keys()");
            let stale = if dev.open.as_ref().is_some_and(|e| now - e.last >= gap) {
                dev.open.take()
            } else {
                None
            };
            if let Some(ev) = stale {
                if ev.fate.is_none() && retro {
                    self.retro_close(id, ev, human_valid_until);
                }
            }
        }
    }

    /// Retrospective verdict for an event that closed before reaching
    /// its classification point: audited at the event's end time, and an
    /// unverified manual outcome counts toward the lockout (the packets
    /// already left, so nothing is dropped). Verified/cascade outcomes
    /// do not refresh the interaction graph — the event is over.
    fn retro_close(&mut self, device: u16, event: RefEvent, human_valid_until: SimTime) {
        let end = event.last;
        let ev = UnpredictableEvent {
            device,
            packets: (0..event.packets.len()).collect(),
            start: event.packets[0].ts,
            end,
        };
        let dev = self.devices.get_mut(&device).expect("caller checked");
        let class = dev.classifier.classify_event(&ev, &event.packets);
        if !class.is_manual() {
            self.push_audit(AuditEntry {
                ts: end,
                device,
                class,
                verdict: AuditVerdict::AllowedNonManual,
            });
            return;
        }
        let vouched = end <= human_valid_until
            || self
                .interactions
                .as_ref()
                .is_some_and(|g| g.cascade_covers(device, end));
        if vouched {
            self.push_audit(AuditEntry {
                ts: end,
                device,
                class,
                verdict: AuditVerdict::AllowedManualVerified,
            });
            return;
        }
        self.stats.retro_unverified += 1;
        let locked = record_unverified_drop(&mut dev.drops, end, &self.config);
        if locked && !dev.locked {
            dev.locked = true;
        }
        self.push_audit(AuditEntry {
            ts: end,
            device,
            class,
            verdict: if locked {
                AuditVerdict::LockedOut
            } else {
                AuditVerdict::DroppedUnverified
            },
        });
    }

    /// §2.1 rule learning, rewritten naively: bucket the bootstrap
    /// capture by `(device, FlowKey)` in arrival order, bin consecutive
    /// inter-arrivals by the tolerance (the first interval seen in a bin
    /// is its representative), and keep buckets where some bin repeats
    /// (≥ 2 pairs) with a representative of at least
    /// [`MIN_RULE_INTERVAL`]. Out-of-order arrivals saturate to a zero
    /// interval, which can never found a rule. Qualifying buckets are
    /// returned sorted by (last packet seen, key), so the newborn table
    /// is already in LRU order — least recently seen flow at the front.
    fn learn_rules(&self) -> Vec<(u16, FlowKey)> {
        let mut buckets: Vec<((u16, FlowKey), Vec<SimTime>)> = Vec::new();
        for p in &self.bootstrap_buffer {
            let key = (p.device, FlowKey::of(self.config.flow_def, p, &self.dns));
            match buckets.iter_mut().find(|(k, _)| *k == key) {
                Some((_, times)) => times.push(p.ts),
                None => buckets.push((key, vec![p.ts])),
            }
        }
        let tol = self.config.tolerance.as_micros().max(1);
        let mut qualifying: Vec<(SimTime, (u16, FlowKey))> = Vec::new();
        for (key, times) in buckets {
            // (bin, representative interval, pair count)
            let mut bins: Vec<(u64, SimDuration, u32)> = Vec::new();
            for w in times.windows(2) {
                let iv = w[1] - w[0];
                let b = iv.as_micros() / tol;
                match bins.iter_mut().find(|(bin, _, _)| *bin == b) {
                    Some((_, _, n)) => *n += 1,
                    None => bins.push((b, iv, 1)),
                }
            }
            if bins
                .iter()
                .any(|&(_, iv, n)| n >= 2 && iv >= MIN_RULE_INTERVAL)
            {
                qualifying.push((*times.last().expect("bucket nonempty"), key));
            }
        }
        qualifying.sort();
        qualifying.into_iter().map(|(_, key)| key).collect()
    }

    /// Advance the re-learn pattern of an evicted rule. Every touch
    /// refreshes the ghost's LRU position; two consecutive
    /// inter-arrivals in the same tolerance bin, at least
    /// [`MIN_RULE_INTERVAL`] apart, promote the ghost back into the
    /// rule table — and the promoting packet itself counts as a hit.
    fn advance_ghost(&mut self, key: &(u16, FlowKey), now: SimTime) -> bool {
        let Some(pos) = self
            .ghosts
            .iter()
            .position(|g| g.device == key.0 && g.key == key.1)
        else {
            return false;
        };
        let mut g = self.ghosts.remove(pos);
        let mut promote = false;
        if let Some(prev) = g.last_ts {
            let iv = now - prev;
            let bin = iv.as_micros() / self.config.tolerance.as_micros().max(1);
            promote = g.last_bin == Some(bin) && iv >= MIN_RULE_INTERVAL;
            g.last_bin = Some(bin);
        }
        g.last_ts = Some(now);
        if promote {
            self.insert_rule(key.0, key.1.clone());
        } else {
            self.ghosts.push(g);
        }
        promote
    }

    /// Insert (or refresh) a rule at the most-recently-matched end,
    /// dropping any ghost for the same key, then enforce the cap.
    fn insert_rule(&mut self, device: u16, key: FlowKey) {
        self.ghosts
            .retain(|g| !(g.device == device && g.key == key));
        let rules = self.rules.as_mut().expect("rules learned");
        rules.retain(|k| !(k.0 == device && k.1 == key));
        rules.push((device, key));
        self.apply_rule_cap();
    }

    /// Evict least-recently-matched rules (the front of the `Vec`) into
    /// ghosts until the table fits `max_rules`; the ghost list obeys the
    /// same cap, dropping its own least-recently-touched entries.
    fn apply_rule_cap(&mut self) {
        let Some(cap) = self.config.max_rules else {
            return;
        };
        let rules = self.rules.as_mut().expect("rules learned");
        while rules.len() > cap {
            let (device, key) = rules.remove(0);
            self.ghosts.push(RefGhost {
                device,
                key,
                last_ts: None,
                last_bin: None,
            });
            while self.ghosts.len() > cap {
                self.ghosts.remove(0);
            }
        }
    }
}

/// Sliding lockout window over a monotone-clamped episode list: clamp
/// `at` to the newest recorded episode, record it, forget episodes older
/// than the window, and report whether the count now exceeds the
/// tolerance.
fn record_unverified_drop(drops: &mut Vec<SimTime>, at: SimTime, config: &ProxyConfig) -> bool {
    let at = drops.last().map_or(at, |&newest| newest.max(at));
    drops.push(at);
    drops.retain(|&t| at - t <= config.lockout_window);
    drops.len() as u32 > config.lockout_threshold
}
