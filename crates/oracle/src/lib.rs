//! Differential decision oracle for the FIAT proxy.
//!
//! Two halves:
//!
//! - [`ReferenceProxy`] (`reference`): a deliberately naive,
//!   allocation-heavy, obviously-correct rewrite of the full decision
//!   path — bootstrap, rule learning/matching, event grouping,
//!   classify-at-N, humanness gating, cascades, lockout, retrospective
//!   closure, `flush` — written straight from the paper and DESIGN.md,
//!   sharing no machinery with `fiat_core::FiatProxy` beyond input
//!   types and the event classifier.
//! - the fuzzer (`fuzzer`): seeded timestamp-chaos scenarios over the
//!   paper's 10-device testbed matrix, driven op-by-op through both
//!   implementations, comparing every decision, the final counters,
//!   and the audit trail, with a greedy shrinker for any divergence.
//!
//! The oracle's contract: **any** disagreement is a bug until either
//! `fiat-core` is fixed or the behaviour is argued for and recorded in
//! DESIGN.md's known-divergence ledger. `experiments oracle --seed N`
//! runs it at scale; CI runs a fixed-seed quick pass.
//!
//! What the oracle deliberately does *not* cover: the QUIC/crypto
//! transport (the fuzzer feeds both sides genuine evidence through a
//! perfect validator, so humanness is purely a timing question) and
//! classifier quality (both sides consult the identical classifier).

#![deny(missing_docs)]

pub mod fuzzer;
pub mod reference;

pub use fuzzer::{
    build_scenario, render_report, run_differential, run_scenario, run_scenario_with_real_config,
    run_scenario_with_real_matcher, shrink, ChaosStats, Divergence, DivergenceKind,
    DivergenceReport, FingerprintSetup, Op, OracleReport, Scenario,
};
pub use reference::ReferenceProxy;

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_core::{AllowReason, ProxyConfig, ProxyDecision};
    use fiat_net::{
        Direction, DnsTable, PacketRecord, SimDuration, SimTime, TcpFlags, TlsVersion,
        TrafficClass, Transport,
    };
    use std::net::Ipv4Addr;

    fn flow_pkt(ts: SimTime, device: u16, size: u16, remote_port: u16) -> PacketRecord {
        PacketRecord {
            ts,
            device,
            direction: Direction::FromDevice,
            local_ip: Ipv4Addr::new(192, 168, 1, 10 + device as u8),
            remote_ip: Ipv4Addr::new(34, 0, 0, 1),
            local_port: 40_000,
            remote_port,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::ack(),
            tls: TlsVersion::None,
            size,
            label: TrafficClass::Control,
        }
    }

    #[test]
    fn reference_walks_the_documented_pipeline() {
        // A miniature hand trace against the reference alone: bootstrap
        // allows, the first post-bootstrap packets fall under first-N,
        // and a manual-size event without a humanness proof is dropped.
        let (sc, _) = build_scenario(11, true);
        let mut reference = ReferenceProxy::new(sc.config.clone());
        reference.register_device(0, fiat_core::EventClassifier::simple_rule(235), 1);
        reference.start(SimTime::ZERO);
        let mut pkt = match sc.ops.iter().find_map(|o| match o {
            Op::Packet(p) if p.device == 3 => Some(p.clone()),
            _ => None,
        }) {
            Some(p) => p,
            None => return,
        };
        pkt.device = 0;
        pkt.size = 235;
        pkt.ts = SimTime::from_secs(1);
        assert_eq!(
            reference.on_packet(&pkt),
            ProxyDecision::Allow(AllowReason::Bootstrap)
        );
        pkt.ts = SimTime::ZERO + sc.config.bootstrap + SimDuration::from_secs(60);
        let d = reference.on_packet(&pkt);
        // N = 1 and size 235 classifies manual with no proof: held in
        // quarantine (scenario configs run a 3 s proof deadline), then
        // expired by a flush past the deadline.
        assert_eq!(d, ProxyDecision::Quarantine);
        assert_eq!(reference.stats().quarantined, 1);
        assert_eq!(reference.audit_entries().len(), 0);
        reference.flush(pkt.ts + SimDuration::from_secs(4));
        assert_eq!(reference.stats().quarantine_expired, 1);
        assert_eq!(reference.audit_entries().len(), 1);
        assert_eq!(
            reference.audit_entries()[0].verdict,
            fiat_core::audit::AuditVerdict::QuarantineExpired
        );
    }

    #[test]
    fn reference_pins_exact_deadline_boundary() {
        // DESIGN §14 boundary semantics, pinned on the reference alone
        // (the real proxy has the mirror tests in fiat-core): a proof
        // landing exactly at the deadline releases, and expiry fires
        // only strictly past it — backdated to the deadline.
        let config = ProxyConfig {
            bootstrap: SimDuration::from_secs(60),
            proof_deadline: Some(SimDuration::from_secs(3)),
            ..ProxyConfig::default()
        };
        let mut reference = ReferenceProxy::new(config);
        reference.register_device(0, fiat_core::EventClassifier::simple_rule(235), 1);
        reference.start(SimTime::ZERO);
        let d = reference.on_packet(&flow_pkt(SimTime::from_secs(120), 0, 235, 9000));
        assert_eq!(d, ProxyDecision::Quarantine);
        // Flush exactly at the deadline must not expire the record...
        reference.flush(SimTime::from_secs(123));
        assert_eq!(reference.stats().quarantine_expired, 0);
        // ...so a proof at that same instant still releases it.
        reference.verify_human(SimTime::from_secs(123));
        assert_eq!(reference.stats().quarantine_expired, 0);
        let last = reference.audit_entries().last().expect("release audited");
        assert_eq!(
            last.verdict,
            fiat_core::audit::AuditVerdict::QuarantineReleased
        );
        assert_eq!(last.ts, SimTime::from_secs(123));
        // Round two, past the proof's validity window: expiry strictly
        // after the deadline, with the episode backdated to it.
        let d = reference.on_packet(&flow_pkt(SimTime::from_secs(200), 0, 235, 9000));
        assert_eq!(d, ProxyDecision::Quarantine);
        reference.flush(SimTime::from_millis(203_001));
        assert_eq!(reference.stats().quarantine_expired, 1);
        let last = reference.audit_entries().last().expect("expiry audited");
        assert_eq!(
            last.verdict,
            fiat_core::audit::AuditVerdict::QuarantineExpired
        );
        assert_eq!(last.ts, SimTime::from_secs(203));
    }

    #[test]
    fn tight_caps_stay_in_lockstep() {
        // Bounded-state policies (DESIGN §18) under deliberately tiny
        // caps: rule eviction + ghost re-learn churn, home-wide
        // record-cap demotion, and checkpointed audit truncation must
        // all stay in lockstep between the real proxy and the naive
        // reference — every decision, the final stats, the retained
        // audit suffix, and the real chain's verification across its
        // truncation checkpoint.
        let config = ProxyConfig {
            bootstrap: SimDuration::from_secs(600),
            lockout_threshold: 1,
            lockout_window: SimDuration::from_secs(1800),
            proof_deadline: Some(SimDuration::from_secs(3)),
            max_rules: Some(1),
            max_quarantine_records: Some(1),
            max_audit_entries: Some(8),
            ..ProxyConfig::default()
        };
        let s = SimTime::from_secs;
        let mut ops = Vec::new();
        // Two qualifying 10 s periodic flows on device 0; with one rule
        // slot only the most recently seen survives learning, the other
        // is evicted into a ghost at birth.
        for i in 0..4u64 {
            ops.push(Op::Packet(flow_pkt(s(i * 10), 0, 100, 8801)));
            ops.push(Op::Packet(flow_pkt(s(i * 10 + 5), 0, 150, 8802)));
        }
        ops.push(Op::Packet(flow_pkt(s(600), 0, 150, 8802))); // rule hit
        ops.push(Op::Packet(flow_pkt(s(610), 0, 100, 8801))); // ghost touch 1
        ops.push(Op::Packet(flow_pkt(s(620), 0, 100, 8801))); // ghost touch 2
        ops.push(Op::Packet(flow_pkt(s(630), 0, 100, 8801))); // promoted: hit
        ops.push(Op::Packet(flow_pkt(s(640), 0, 150, 8802))); // evicted: ghost touch 1
        ops.push(Op::Packet(flow_pkt(s(650), 0, 100, 8801))); // rule hit (LRU touch)
        ops.push(Op::Packet(flow_pkt(s(660), 0, 150, 8802))); // ghost touch 2
        ops.push(Op::Packet(flow_pkt(s(680), 0, 150, 8802))); // promoted: hit
                                                              // Record-cap churn: device 2's record demotes device 1's; a
                                                              // proof landing exactly at the deadline releases device 2.
        ops.push(Op::Packet(flow_pkt(s(700), 1, 235, 9000)));
        ops.push(Op::Packet(flow_pkt(s(701), 2, 235, 9000)));
        ops.push(Op::VerifyHuman(s(704)));
        // A second record on device 1 expires strictly past its
        // deadline, locking the device (second episode in the window);
        // the next packet drops at the door.
        ops.push(Op::Packet(flow_pkt(s(740), 1, 235, 9000)));
        ops.push(Op::Flush(s(743)));
        ops.push(Op::Flush(SimTime::from_millis(743_001)));
        ops.push(Op::Packet(flow_pkt(s(750), 1, 235, 9000)));
        ops.push(Op::ClearLockout(1));
        // Enough non-manual events to push the audit log past its cap
        // and through a checkpointed truncation on both sides.
        for i in 0..6u64 {
            ops.push(Op::Packet(flow_pkt(s(800 + i * 10), 0, 120, 8803)));
        }
        ops.push(Op::Flush(s(900)));
        let sc = Scenario {
            config,
            devices: vec![(0, 235, 1), (1, 235, 1), (2, 235, 1)],
            edges: Vec::new(),
            cascade_window: SimDuration::from_secs(30),
            dns: DnsTable::new(),
            fingerprint: None,
            ops,
        };
        if let Some(d) = run_scenario(&sc) {
            panic!("tight-cap divergence: {d}");
        }
        // Lockstep alone could pass vacuously if the caps never fired;
        // replay the reference by itself and check each policy engaged.
        let mut reference = ReferenceProxy::new(sc.config.clone());
        for &(id, size, n) in &sc.devices {
            reference.register_device(id, fiat_core::EventClassifier::simple_rule(size), n);
        }
        reference.start(SimTime::ZERO);
        for op in &sc.ops {
            match op {
                Op::Packet(p) => {
                    reference.on_packet(p);
                }
                Op::VerifyHuman(t) => reference.verify_human(*t),
                Op::Flush(t) => reference.flush(*t),
                Op::ClearLockout(d) => reference.clear_lockout(*d),
            }
        }
        assert_eq!(reference.rule_count(), 1, "rule cap not enforced");
        assert_eq!(reference.ghost_count(), 1, "eviction left no ghost");
        assert!(reference.audit_truncated() > 0, "audit cap never truncated");
        assert!(
            reference.stats().quarantine_expired >= 2,
            "record-cap demotion and deadline expiry both expected"
        );
        assert_eq!(reference.stats().rule_hit, 4, "ghost re-learn drifted");
    }

    #[test]
    fn quick_differential_runs_clean() {
        // The contract the CI smoke job enforces: on chaos-mutated
        // testbed traffic, the naive reference and the real proxy agree
        // on every decision, stat, and audit entry.
        for seed in [1u64, 2, 42] {
            let report = run_differential(seed, true, 800);
            assert!(report.packets >= 800);
            assert!(
                report.passed(),
                "divergence at seed {seed}: {:?}",
                report.divergences
            );
        }
    }

    #[test]
    fn oracle_detects_semantic_drift() {
        // Self-test: perturb the real proxy's event gap and the oracle
        // must notice. If this fails, a real regression in fiat-core
        // could slide through unreported.
        let (sc, _) = build_scenario(5, true);
        let drifted = ProxyConfig {
            event_gap: SimDuration::from_secs(2),
            ..sc.config.clone()
        };
        assert!(
            run_scenario_with_real_config(&sc, &drifted).is_some(),
            "oracle failed to flag a 2.5x event-gap change"
        );
        let drifted = ProxyConfig {
            lockout_threshold: 0,
            ..sc.config.clone()
        };
        assert!(
            run_scenario_with_real_config(&sc, &drifted).is_some(),
            "oracle failed to flag a zeroed lockout threshold"
        );
    }

    #[test]
    fn oracle_detects_quarantine_deadline_drift() {
        // Self-test for the quarantine half of the oracle: scenarios
        // run with a 3 s proof deadline and deterministic hold/release/
        // expire probes, so a real-side deviation in either direction
        // must surface. If this fails, a regression in the quarantine
        // state machine could slide through unreported.
        let (sc, chaos) = build_scenario(7, true);
        assert!(
            chaos.quarantine_probes > 0,
            "scenario builder stopped injecting quarantine probes"
        );
        assert_eq!(sc.config.proof_deadline, Some(SimDuration::from_secs(3)));
        let disabled = ProxyConfig {
            proof_deadline: None,
            ..sc.config.clone()
        };
        assert!(
            run_scenario_with_real_config(&sc, &disabled).is_some(),
            "oracle failed to flag quarantine being disabled"
        );
        let hair_trigger = ProxyConfig {
            proof_deadline: Some(SimDuration::from_millis(1)),
            ..sc.config.clone()
        };
        assert!(
            run_scenario_with_real_config(&sc, &hair_trigger).is_some(),
            "oracle failed to flag a 1 ms proof deadline"
        );
    }

    #[test]
    fn oracle_detects_fingerprint_matcher_drift() {
        // Self-test for the fingerprint half of the oracle: scenarios
        // carry genuine/spoofed/unclassifiable unknown-device probes,
        // so a real-engine deviation in the match threshold or the
        // evidence-window length must surface against the naive mirror.
        use fiat_fingerprint::MatcherConfig;
        let (sc, chaos) = build_scenario(11, true);
        assert!(
            chaos.fingerprint_probes > 0,
            "scenario builder stopped injecting fingerprint probes"
        );
        let fp = sc.fingerprint.clone().expect("fingerprinting enabled");
        let paranoid = MatcherConfig {
            max_distance: 0,
            ..fp.matcher
        };
        assert!(
            run_scenario_with_real_matcher(&sc, paranoid).is_some(),
            "oracle failed to flag a zeroed match threshold"
        );
        let short_window = MatcherConfig {
            evidence_window: fp.matcher.evidence_window / 2,
            ..fp.matcher
        };
        assert!(
            run_scenario_with_real_matcher(&sc, short_window).is_some(),
            "oracle failed to flag a halved evidence window"
        );
    }

    #[test]
    fn shrinker_minimizes_a_divergent_scenario() {
        // Induce a divergence (drifted event gap on the real side) and
        // shrink it: the result must be strictly smaller and still
        // diverge under the same mismatch.
        let (sc, _) = build_scenario(9, true);
        let drifted = ProxyConfig {
            event_gap: SimDuration::from_secs(2),
            ..sc.config.clone()
        };
        assert!(run_scenario_with_real_config(&sc, &drifted).is_some());
        let shrunk = shrink(&sc, &drifted, 80);
        assert!(
            shrunk.ops.len() < sc.ops.len(),
            "shrinker removed nothing ({} ops)",
            sc.ops.len()
        );
        assert!(
            run_scenario_with_real_config(&shrunk, &drifted).is_some(),
            "shrinking lost the divergence"
        );
    }

    #[test]
    fn empty_scenario_is_clean() {
        // Subsetting must never manufacture a divergence: with no ops,
        // both sides hold their initial state.
        let (sc, _) = build_scenario(3, true);
        let empty = Scenario {
            ops: Vec::new(),
            ..sc
        };
        assert!(run_scenario(&empty).is_none());
    }
}
