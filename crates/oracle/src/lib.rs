//! Differential decision oracle for the FIAT proxy.
//!
//! Two halves:
//!
//! - [`ReferenceProxy`] (`reference`): a deliberately naive,
//!   allocation-heavy, obviously-correct rewrite of the full decision
//!   path — bootstrap, rule learning/matching, event grouping,
//!   classify-at-N, humanness gating, cascades, lockout, retrospective
//!   closure, `flush` — written straight from the paper and DESIGN.md,
//!   sharing no machinery with `fiat_core::FiatProxy` beyond input
//!   types and the event classifier.
//! - the fuzzer (`fuzzer`): seeded timestamp-chaos scenarios over the
//!   paper's 10-device testbed matrix, driven op-by-op through both
//!   implementations, comparing every decision, the final counters,
//!   and the audit trail, with a greedy shrinker for any divergence.
//!
//! The oracle's contract: **any** disagreement is a bug until either
//! `fiat-core` is fixed or the behaviour is argued for and recorded in
//! DESIGN.md's known-divergence ledger. `experiments oracle --seed N`
//! runs it at scale; CI runs a fixed-seed quick pass.
//!
//! What the oracle deliberately does *not* cover: the QUIC/crypto
//! transport (the fuzzer feeds both sides genuine evidence through a
//! perfect validator, so humanness is purely a timing question) and
//! classifier quality (both sides consult the identical classifier).

#![deny(missing_docs)]

pub mod fuzzer;
pub mod reference;

pub use fuzzer::{
    build_scenario, render_report, run_differential, run_scenario, run_scenario_with_real_config,
    shrink, ChaosStats, Divergence, DivergenceKind, DivergenceReport, Op, OracleReport, Scenario,
};
pub use reference::ReferenceProxy;

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_core::{AllowReason, ProxyConfig, ProxyDecision};
    use fiat_net::{SimDuration, SimTime};

    #[test]
    fn reference_walks_the_documented_pipeline() {
        // A miniature hand trace against the reference alone: bootstrap
        // allows, the first post-bootstrap packets fall under first-N,
        // and a manual-size event without a humanness proof is dropped.
        let (sc, _) = build_scenario(11, true);
        let mut reference = ReferenceProxy::new(sc.config.clone());
        reference.register_device(0, fiat_core::EventClassifier::simple_rule(235), 1);
        reference.start(SimTime::ZERO);
        let mut pkt = match sc.ops.iter().find_map(|o| match o {
            Op::Packet(p) if p.device == 3 => Some(p.clone()),
            _ => None,
        }) {
            Some(p) => p,
            None => return,
        };
        pkt.device = 0;
        pkt.size = 235;
        pkt.ts = SimTime::from_secs(1);
        assert_eq!(
            reference.on_packet(&pkt),
            ProxyDecision::Allow(AllowReason::Bootstrap)
        );
        pkt.ts = SimTime::ZERO + sc.config.bootstrap + SimDuration::from_secs(60);
        let d = reference.on_packet(&pkt);
        // N = 1 and size 235 classifies manual with no proof: held in
        // quarantine (scenario configs run a 3 s proof deadline), then
        // expired by a flush past the deadline.
        assert_eq!(d, ProxyDecision::Quarantine);
        assert_eq!(reference.stats().quarantined, 1);
        assert_eq!(reference.audit_entries().len(), 0);
        reference.flush(pkt.ts + SimDuration::from_secs(4));
        assert_eq!(reference.stats().quarantine_expired, 1);
        assert_eq!(reference.audit_entries().len(), 1);
        assert_eq!(
            reference.audit_entries()[0].verdict,
            fiat_core::audit::AuditVerdict::QuarantineExpired
        );
    }

    #[test]
    fn quick_differential_runs_clean() {
        // The contract the CI smoke job enforces: on chaos-mutated
        // testbed traffic, the naive reference and the real proxy agree
        // on every decision, stat, and audit entry.
        for seed in [1u64, 2, 42] {
            let report = run_differential(seed, true, 800);
            assert!(report.packets >= 800);
            assert!(
                report.passed(),
                "divergence at seed {seed}: {:?}",
                report.divergences
            );
        }
    }

    #[test]
    fn oracle_detects_semantic_drift() {
        // Self-test: perturb the real proxy's event gap and the oracle
        // must notice. If this fails, a real regression in fiat-core
        // could slide through unreported.
        let (sc, _) = build_scenario(5, true);
        let drifted = ProxyConfig {
            event_gap: SimDuration::from_secs(2),
            ..sc.config.clone()
        };
        assert!(
            run_scenario_with_real_config(&sc, &drifted).is_some(),
            "oracle failed to flag a 2.5x event-gap change"
        );
        let drifted = ProxyConfig {
            lockout_threshold: 0,
            ..sc.config.clone()
        };
        assert!(
            run_scenario_with_real_config(&sc, &drifted).is_some(),
            "oracle failed to flag a zeroed lockout threshold"
        );
    }

    #[test]
    fn oracle_detects_quarantine_deadline_drift() {
        // Self-test for the quarantine half of the oracle: scenarios
        // run with a 3 s proof deadline and deterministic hold/release/
        // expire probes, so a real-side deviation in either direction
        // must surface. If this fails, a regression in the quarantine
        // state machine could slide through unreported.
        let (sc, chaos) = build_scenario(7, true);
        assert!(
            chaos.quarantine_probes > 0,
            "scenario builder stopped injecting quarantine probes"
        );
        assert_eq!(sc.config.proof_deadline, Some(SimDuration::from_secs(3)));
        let disabled = ProxyConfig {
            proof_deadline: None,
            ..sc.config.clone()
        };
        assert!(
            run_scenario_with_real_config(&sc, &disabled).is_some(),
            "oracle failed to flag quarantine being disabled"
        );
        let hair_trigger = ProxyConfig {
            proof_deadline: Some(SimDuration::from_millis(1)),
            ..sc.config.clone()
        };
        assert!(
            run_scenario_with_real_config(&sc, &hair_trigger).is_some(),
            "oracle failed to flag a 1 ms proof deadline"
        );
    }

    #[test]
    fn shrinker_minimizes_a_divergent_scenario() {
        // Induce a divergence (drifted event gap on the real side) and
        // shrink it: the result must be strictly smaller and still
        // diverge under the same mismatch.
        let (sc, _) = build_scenario(9, true);
        let drifted = ProxyConfig {
            event_gap: SimDuration::from_secs(2),
            ..sc.config.clone()
        };
        assert!(run_scenario_with_real_config(&sc, &drifted).is_some());
        let shrunk = shrink(&sc, &drifted, 80);
        assert!(
            shrunk.ops.len() < sc.ops.len(),
            "shrinker removed nothing ({} ops)",
            sc.ops.len()
        );
        assert!(
            run_scenario_with_real_config(&shrunk, &drifted).is_some(),
            "shrinking lost the divergence"
        );
    }

    #[test]
    fn empty_scenario_is_clean() {
        // Subsetting must never manufacture a divergence: with no ops,
        // both sides hold their initial state.
        let (sc, _) = build_scenario(3, true);
        let empty = Scenario {
            ops: Vec::new(),
            ..sc
        };
        assert!(run_scenario(&empty).is_none());
    }
}
