//! Steady-state allocation flatness under the bounded-state caps
//! (DESIGN §18).
//!
//! Byte counting is the ground truth the state accountant approximates:
//! if every per-home surface is truly capped, a late soak day must
//! allocate about the same number of bytes as an early steady-state day
//! — growth in per-day allocation means some structure is still scaling
//! with uptime (appending to an uncapped journal, scanning an uncapped
//! table) even if the accountant's element counts look flat.

use fiat_chaos::{HomeSim, LongSoakConfig};
use fiat_fingerprint::{MatcherConfig, SignatureSet};
use fiat_probe::{AllocScope, CountingAllocator};
use fiat_trace::fingerprint_corpus;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn capped_home_allocates_flat_per_day_in_steady_state() {
    let cfg = LongSoakConfig {
        homes: 1,
        days: 21,
        replay_every: 0,
        ..LongSoakConfig::quick(11)
    };
    let sigs = SignatureSet::learn(
        &fingerprint_corpus(cfg.seed ^ 0xf1a7),
        MatcherConfig::default().evidence_window,
    );
    let mut sim = HomeSim::new(&cfg, 0, &sigs);
    let mut sink = |_s| {};

    // Day 0 bootstraps and learns; days 1..=5 settle eviction, ghost,
    // and audit-truncation churn into steady state.
    for day in 0..6 {
        sim.run_day(day, &mut sink);
    }

    let early = AllocScope::enter();
    sim.run_day(6, &mut sink);
    let early = early.delta();

    for day in 7..20 {
        sim.run_day(day, &mut sink);
    }

    let late = AllocScope::enter();
    sim.run_day(20, &mut sink);
    let late = late.delta();

    assert_eq!(sim.false_drops, 0);
    assert!(early > 0, "allocator not counting");
    // Two weeks later a day must not cost meaningfully more than it did
    // in week one. The slack absorbs amortized reallocation (a Vec
    // doubling on a different day) without letting linear growth hide:
    // pre-fix, the audit chain alone grew each day's hashing and append
    // cost without bound.
    assert!(
        late <= early + early / 4,
        "per-day allocations grew: early day 6 = {early} B, late day 20 = {late} B"
    );
}
