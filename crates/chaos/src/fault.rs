//! Seeded fault plans for the phone → proxy channel.
//!
//! A [`FaultPlan`] is the single source of randomness and accounting for
//! one chaos run: per-packet fault rates (drop, duplicate, reorder,
//! delay, corrupt), an extra-delay [`LatencyProfile`], phone-offline
//! windows, and sensor-unavailable intervals. It implements
//! [`FaultInjector`], so it plugs straight into
//! [`InterceptQueue::enqueue_with`](fiat_simnet::InterceptQueue::enqueue_with);
//! the proof-channel half is consumed by
//! [`ProofChannel`](crate::ProofChannel).
//!
//! Determinism: one seeded `StdRng`, rolls happen in a fixed order, and
//! a zero-rate plan never touches the RNG at all — so
//! [`FaultPlan::none`] is byte-identical to no injector (tested).

use fiat_net::{PacketRecord, SimDuration, SimTime};
use fiat_simnet::{FaultInjector, LatencyProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The taxonomy of injected faults, used as metric labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Frame silently lost.
    Drop,
    /// Frame delivered twice.
    Duplicate,
    /// Frame delivered after its successor (modeled as extra delay).
    Reorder,
    /// Frame delayed by an extra latency sample.
    Delay,
    /// Frame delivered with flipped bits.
    Corrupt,
    /// Phone offline: every frame in the window is lost.
    Offline,
    /// IMU unavailable: no evidence can be produced at all.
    SensorUnavailable,
    /// Control plane unreachable: the proxy serves in degraded mode for
    /// the window (key lifecycle paused, last-known-good epochs only).
    ControlOutage,
}

/// All kinds, in stable reporting order.
pub const FAULT_KINDS: [FaultKind; 8] = [
    FaultKind::Drop,
    FaultKind::Duplicate,
    FaultKind::Reorder,
    FaultKind::Delay,
    FaultKind::Corrupt,
    FaultKind::Offline,
    FaultKind::SensorUnavailable,
    FaultKind::ControlOutage,
];

impl FaultKind {
    /// Stable label (`fiat_chaos_faults_total{kind=}`).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Delay => "delay",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Offline => "offline",
            FaultKind::SensorUnavailable => "sensor_unavailable",
            FaultKind::ControlOutage => "control_outage",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultKind::Drop => 0,
            FaultKind::Duplicate => 1,
            FaultKind::Reorder => 2,
            FaultKind::Delay => 3,
            FaultKind::Corrupt => 4,
            FaultKind::Offline => 5,
            FaultKind::SensorUnavailable => 6,
            FaultKind::ControlOutage => 7,
        }
    }
}

/// Fixed extra delay standing in for "delivered after the next frame".
const REORDER_DELAY: SimDuration = SimDuration::from_millis(40);
/// Spacing between a frame and its duplicate.
const DUPLICATE_SPACING: SimDuration = SimDuration::from_millis(2);

/// A seeded, counting fault model for one run. See the module docs.
#[derive(Debug)]
pub struct FaultPlan {
    /// Per-frame loss probability.
    pub drop_rate: f64,
    /// Per-frame duplication probability.
    pub dup_rate: f64,
    /// Per-frame reordering probability.
    pub reorder_rate: f64,
    /// Per-frame extra-delay probability.
    pub delay_rate: f64,
    /// Per-frame corruption probability.
    pub corrupt_rate: f64,
    /// Extra delay drawn when a delay fault fires.
    pub delay: LatencyProfile,
    /// Phone-offline windows (inclusive start, exclusive end).
    pub offline: Vec<(SimTime, SimTime)>,
    /// Sensor-unavailable windows (inclusive start, exclusive end).
    pub sensor_unavailable: Vec<(SimTime, SimTime)>,
    /// Control-plane-outage windows (inclusive start, exclusive end).
    pub control_outage: Vec<(SimTime, SimTime)>,
    rng: StdRng,
    counts: [u64; 8],
}

impl FaultPlan {
    /// The identity plan: nothing ever fires and the RNG is never
    /// consulted, so the fault path is bit-for-bit the no-injector path.
    pub fn none(seed: u64) -> Self {
        Self::with_rates(seed, 0.0, 0.0, 0.0, 0.0, 0.0)
    }

    /// A plan with the given per-frame fault rates and no extra windows.
    pub fn with_rates(
        seed: u64,
        drop_rate: f64,
        dup_rate: f64,
        reorder_rate: f64,
        delay_rate: f64,
        corrupt_rate: f64,
    ) -> Self {
        FaultPlan {
            drop_rate,
            dup_rate,
            reorder_rate,
            delay_rate,
            corrupt_rate,
            delay: LatencyProfile::from_millis(20, 80),
            offline: Vec::new(),
            sensor_unavailable: Vec::new(),
            control_outage: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            counts: [0; 8],
        }
    }

    /// Roll one fault with probability `p`. Zero-probability rolls never
    /// touch the RNG, keeping [`FaultPlan::none`] identity exact.
    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen::<f64>() < p
    }

    /// Whether the phone is offline at `t`.
    pub fn offline_at(&self, t: SimTime) -> bool {
        self.offline.iter().any(|&(a, b)| a <= t && t < b)
    }

    /// Whether the IMU is unavailable at `t`.
    pub fn sensor_unavailable_at(&self, t: SimTime) -> bool {
        self.sensor_unavailable
            .iter()
            .any(|&(a, b)| a <= t && t < b)
    }

    /// Whether the control plane is unreachable at `t`.
    pub fn control_outage_at(&self, t: SimTime) -> bool {
        self.control_outage.iter().any(|&(a, b)| a <= t && t < b)
    }

    /// Count one injected fault.
    pub fn record(&mut self, kind: FaultKind) {
        self.counts[kind.index()] += 1;
    }

    /// Faults injected so far of one kind.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counts[kind.index()]
    }

    /// `(kind, count)` pairs in stable order, including zero rows.
    pub fn counts(&self) -> Vec<(FaultKind, u64)> {
        FAULT_KINDS.iter().map(|&k| (k, self.count(k))).collect()
    }

    /// Total faults injected so far.
    pub fn total_faults(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sample the extra delay for one delay fault.
    pub(crate) fn sample_delay(&mut self) -> SimDuration {
        self.delay.sample(&mut self.rng)
    }

    /// Expose the plan's RNG for channel-level draws (base latency),
    /// keeping the whole run on one seeded stream.
    pub(crate) fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Channel-frame fate at `sent_at`: one roll each for offline, drop,
    /// delay, corrupt, duplicate, in that fixed order.
    pub(crate) fn frame_fate(&mut self, sent_at: SimTime) -> FrameFate {
        if self.offline_at(sent_at) {
            self.record(FaultKind::Offline);
            return FrameFate::Lost;
        }
        if self.roll(self.drop_rate) {
            self.record(FaultKind::Drop);
            return FrameFate::Lost;
        }
        let mut extra = SimDuration::ZERO;
        if self.roll(self.delay_rate) {
            extra = self.sample_delay();
            self.record(FaultKind::Delay);
        }
        let corrupted = self.roll(self.corrupt_rate);
        if corrupted {
            self.record(FaultKind::Corrupt);
        }
        let duplicated = self.roll(self.dup_rate);
        if duplicated {
            self.record(FaultKind::Duplicate);
        }
        FrameFate::Delivered {
            extra_delay: extra,
            corrupted,
            duplicated,
        }
    }
}

/// What the channel did to one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameFate {
    /// Never arrives.
    Lost,
    /// Arrives (possibly late, corrupted, or twice).
    Delivered {
        /// Extra delay beyond the base latency sample.
        extra_delay: SimDuration,
        /// Bits flipped in flight.
        corrupted: bool,
        /// A second copy follows.
        duplicated: bool,
    },
}

impl FaultInjector for FaultPlan {
    fn inject(&mut self, mut pkt: PacketRecord, now: SimTime) -> Vec<(SimTime, PacketRecord)> {
        if self.offline_at(now) {
            self.record(FaultKind::Offline);
            return Vec::new();
        }
        if self.roll(self.drop_rate) {
            self.record(FaultKind::Drop);
            return Vec::new();
        }
        let mut at = now;
        if self.roll(self.delay_rate) {
            at += self.sample_delay();
            self.record(FaultKind::Delay);
        }
        if self.roll(self.reorder_rate) {
            at += REORDER_DELAY;
            self.record(FaultKind::Reorder);
        }
        if self.roll(self.corrupt_rate) {
            pkt.size ^= 0x0101;
            self.record(FaultKind::Corrupt);
        }
        let mut out = vec![(at, pkt.clone())];
        if self.roll(self.dup_rate) {
            out.push((at + DUPLICATE_SPACING, pkt));
            self.record(FaultKind::Duplicate);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_net::{Direction, TcpFlags, TlsVersion, TrafficClass, Transport};
    use fiat_simnet::InterceptQueue;
    use std::net::Ipv4Addr;

    fn pkt(ts: SimTime) -> PacketRecord {
        PacketRecord {
            ts,
            device: 1,
            direction: Direction::ToDevice,
            local_ip: Ipv4Addr::new(192, 168, 1, 10),
            remote_ip: Ipv4Addr::new(34, 0, 0, 1),
            local_port: 4000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::psh_ack(),
            tls: TlsVersion::Tls12,
            size: 300,
            label: TrafficClass::Manual,
        }
    }

    #[test]
    fn zero_fault_plan_is_byte_identical_to_no_injector() {
        // The acceptance bar: the default is zero-cost AND zero-effect.
        let mut plain = InterceptQueue::new();
        let mut faulted = InterceptQueue::new();
        let mut plan = FaultPlan::none(7);
        for i in 0..200u64 {
            let p = pkt(SimTime::from_micros(i * 10_000));
            plain.enqueue(p.clone(), p.ts);
            let n = faulted.enqueue_with(&mut plan, p.clone(), p.ts);
            assert_eq!(n, 1);
        }
        let at = SimTime::from_secs(10);
        let a = plain.decide_all(at, |_| fiat_simnet::Verdict::Allow);
        let b = faulted.decide_all(at, |_| fiat_simnet::Verdict::Allow);
        assert_eq!(a, b);
        // Stats fold in every enqueue time via the verdict-latency sum,
        // so equal stats mean equal arrival times too.
        assert_eq!(plain.stats(), faulted.stats());
        assert_eq!(plan.total_faults(), 0);
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::with_rates(seed, 0.2, 0.1, 0.1, 0.2, 0.1);
            let mut out = Vec::new();
            for i in 0..500u64 {
                out.push(plan.inject(
                    pkt(SimTime::from_micros(i * 1000)),
                    SimTime::from_micros(i * 1000),
                ));
            }
            (out, plan.counts())
        };
        let (a, ca) = run(42);
        let (b, cb) = run(42);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        let (c, _) = run(43);
        assert_ne!(a, c, "different seeds must differ somewhere");
    }

    #[test]
    fn rates_are_roughly_honored_and_counted() {
        let mut plan = FaultPlan::with_rates(1, 0.3, 0.0, 0.0, 0.0, 0.0);
        let n = 2000u64;
        let mut survived = 0u64;
        for i in 0..n {
            let t = SimTime::from_micros(i * 1000);
            survived += plan.inject(pkt(t), t).len() as u64;
        }
        let dropped = plan.count(FaultKind::Drop);
        assert_eq!(survived + dropped, n);
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "drop rate {rate}");
    }

    #[test]
    fn offline_window_swallows_everything_inside_it() {
        let mut plan = FaultPlan::none(3);
        plan.offline = vec![(SimTime::from_secs(10), SimTime::from_secs(20))];
        assert!(plan
            .inject(pkt(SimTime::from_secs(15)), SimTime::from_secs(15))
            .is_empty());
        assert_eq!(
            plan.inject(pkt(SimTime::from_secs(20)), SimTime::from_secs(20))
                .len(),
            1,
            "window end is exclusive"
        );
        assert_eq!(plan.count(FaultKind::Offline), 1);
        assert!(plan.sensor_unavailable.is_empty());
        assert!(!plan.sensor_unavailable_at(SimTime::from_secs(15)));
    }

    #[test]
    fn control_outage_windows_are_half_open_and_counted() {
        let mut plan = FaultPlan::none(4);
        plan.control_outage = vec![(SimTime::from_secs(30), SimTime::from_secs(60))];
        assert!(!plan.control_outage_at(SimTime::from_secs(29)));
        assert!(plan.control_outage_at(SimTime::from_secs(30)));
        assert!(plan.control_outage_at(SimTime::from_secs(59)));
        assert!(
            !plan.control_outage_at(SimTime::from_secs(60)),
            "end exclusive"
        );
        // An outage does not touch the data path: frames still flow.
        assert_eq!(
            plan.inject(pkt(SimTime::from_secs(45)), SimTime::from_secs(45))
                .len(),
            1
        );
        plan.record(FaultKind::ControlOutage);
        assert_eq!(plan.count(FaultKind::ControlOutage), 1);
        assert_eq!(plan.counts().len(), FAULT_KINDS.len());
        assert_eq!(FaultKind::ControlOutage.as_str(), "control_outage");
    }

    #[test]
    fn corrupt_changes_the_record_and_duplicate_doubles_it() {
        let mut plan = FaultPlan::with_rates(5, 0.0, 1.0, 0.0, 0.0, 1.0);
        let p = pkt(SimTime::from_secs(1));
        let out = plan.inject(p.clone(), p.ts);
        assert_eq!(out.len(), 2, "dup rate 1.0 must double");
        assert_ne!(out[0].1.size, p.size, "corrupt rate 1.0 must mutate");
        assert_eq!(out[0].1, out[1].1, "the duplicate is the same mutant");
        assert!(out[1].0 > out[0].0, "the duplicate trails");
    }
}
