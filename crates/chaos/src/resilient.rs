//! The resilient phone client: retries, re-signing, and 1-RTT fallback
//! over a faulty [`ProofChannel`].
//!
//! [`ResilientClient::plan_proof`] runs one full
//! [`FiatApp::authorize_with_retry`] exchange against the channel and
//! records every frame that actually *arrived* (possibly corrupted,
//! possibly twice) with its arrival time. The soak harness later feeds
//! those frames to the proxy in global arrival order — the client plans
//! the exchange, the proxy adjudicates it, and the quarantine deadline
//! sees the true arrival times.
//!
//! Channel semantics seen by the retry loop:
//! - lost frame (drop fault or offline window) → `Lost` → backoff, resend
//!   a re-signed frame;
//! - corrupted 0-RTT frame → the proxy answers `DecryptFailed` → the
//!   client falls back to 1-RTT (re-signed, fresh frame);
//! - corrupted 1-RTT frame → the proxy cannot even decrypt, so no
//!   acknowledgement ever comes back → the client sees `Lost` and backs
//!   off;
//! - clean delivery → `Verified` (the genuine evidence verifies under the
//!   calibrated validator) and the exchange ends.

use crate::channel::{corrupt_attempt, ChannelVerdict, ProofChannel};
use fiat_core::{AuthAttempt, DeliveryResult, FiatApp, RetryOutcome, RetryPolicy};
use fiat_net::{SimDuration, SimTime};
use fiat_quic::QuicError;
use fiat_sensors::{ImuTrace, MotionKind};

/// Client-side processing between a rejection and the re-signed resend
/// (re-seal + radio turnaround); keeps fallback frames from being sent
/// at the exact same instant as the frame they replace.
const RESEND_PROC: SimDuration = SimDuration::from_millis(5);

/// One frame that physically arrived at the proxy.
#[derive(Debug, Clone)]
pub struct ProofFrame {
    /// Arrival time at the proxy.
    pub arrival: SimTime,
    /// The sealed attempt as it arrived (corrupted frames already have
    /// their ciphertext flipped).
    pub attempt: AuthAttempt,
    /// Whether the channel flipped its bits.
    pub corrupted: bool,
}

/// The planned delivery schedule for one proof exchange.
#[derive(Debug)]
pub struct ProofPlan {
    /// Frames that arrived, in send order (arrival order may differ —
    /// the soak harness merges globally by arrival time).
    pub frames: Vec<ProofFrame>,
    /// The client-side retry summary (`None` when the IMU was
    /// unavailable and no frame was ever sealed).
    pub outcome: Option<RetryOutcome>,
    /// The IMU was unavailable at proof time: no evidence exists.
    pub sensor_blocked: bool,
}

impl ProofPlan {
    /// Earliest clean (uncorrupted) arrival, if any — the time the proxy
    /// *could* first verify this proof.
    pub fn first_clean_arrival(&self) -> Option<SimTime> {
        self.frames
            .iter()
            .filter(|f| !f.corrupted)
            .map(|f| f.arrival)
            .min()
    }
}

/// A [`FiatApp`] under a retry policy, planning proofs over a faulty
/// channel.
pub struct ResilientClient {
    /// The phone app (keystore, pairing keys, QUIC client).
    pub app: FiatApp,
    /// Backoff policy for lost frames.
    pub policy: RetryPolicy,
}

impl ResilientClient {
    /// A client with the default backoff policy (150 ms initial, 2 s
    /// cap, 6 attempts).
    pub fn new(app: FiatApp) -> Self {
        ResilientClient {
            app,
            policy: RetryPolicy::default(),
        }
    }

    /// A client that never retries — the degradation baseline.
    pub fn without_retries(app: FiatApp) -> Self {
        ResilientClient {
            app,
            policy: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
        }
    }

    /// Plan one proof exchange starting at `start`: run the retry loop
    /// against the channel and record every frame that arrived. The
    /// deterministic (jitter-free) backoff base spaces the virtual send
    /// times; the policy's jittered delay is still what the client-side
    /// `total_backoff` reports.
    pub fn plan_proof(
        &mut self,
        channel: &mut ProofChannel,
        start: SimTime,
        app_package: &str,
        imu: &ImuTrace,
        truth: MotionKind,
    ) -> ProofPlan {
        if channel.sensor_blocked(start) {
            return ProofPlan {
                frames: Vec::new(),
                outcome: None,
                sensor_blocked: true,
            };
        }
        let mut frames: Vec<ProofFrame> = Vec::new();
        let mut send_t = start;
        let policy = self.policy;
        let mut prev_lost = false;
        let outcome = self.app.authorize_with_retry(
            app_package,
            imu,
            truth,
            start.as_micros(),
            &policy,
            |att, attempt| {
                if attempt > 0 {
                    send_t += RESEND_PROC;
                    if prev_lost {
                        send_t += base_backoff(&policy, attempt - 1);
                    }
                }
                match channel.transmit(send_t) {
                    ChannelVerdict::Lost => {
                        prev_lost = true;
                        DeliveryResult::Lost
                    }
                    ChannelVerdict::Delivered {
                        arrival,
                        corrupted,
                        duplicated,
                    } => {
                        prev_lost = false;
                        let wire = if corrupted {
                            corrupt_attempt(&att)
                        } else {
                            att
                        };
                        frames.push(ProofFrame {
                            arrival,
                            attempt: wire.clone(),
                            corrupted,
                        });
                        if duplicated {
                            frames.push(ProofFrame {
                                arrival: ProofChannel::duplicate_arrival(arrival),
                                attempt: wire.clone(),
                                corrupted,
                            });
                        }
                        if corrupted {
                            match wire {
                                // The proxy answers DecryptFailed: the
                                // client abandons 0-RTT and falls back.
                                AuthAttempt::ZeroRtt(_) => DeliveryResult::Rejected(
                                    fiat_core::pipeline::AuthError::Transport(
                                        QuicError::DecryptFailed,
                                    ),
                                ),
                                // No decryptable frame, no ack: a 1-RTT
                                // corruption looks like loss client-side.
                                AuthAttempt::OneRtt(_) => {
                                    prev_lost = true;
                                    DeliveryResult::Lost
                                }
                            }
                        } else {
                            DeliveryResult::Verified(true)
                        }
                    }
                }
            },
        );
        ProofPlan {
            frames,
            outcome: Some(outcome),
            sensor_blocked: false,
        }
    }
}

/// The policy's deterministic backoff base (no jitter): `min(initial ·
/// 2^attempt, cap)`. Used to place virtual resend times.
fn base_backoff(policy: &RetryPolicy, attempt: u32) -> SimDuration {
    SimDuration::from_micros(
        policy
            .initial
            .as_micros()
            .saturating_mul(1u64 << attempt.min(32))
            .min(policy.cap.as_micros()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};
    use fiat_core::{FiatProxy, ProxyConfig};
    use fiat_sensors::HumannessValidator;
    use fiat_simnet::LatencyProfile;

    const SECRET: [u8; 32] = [0x42; 32];

    fn paired(seed: u64) -> (FiatApp, FiatProxy) {
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy = FiatProxy::new(ProxyConfig::default(), &SECRET, validator);
        let mut app = FiatApp::new(&SECRET, seed);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        (app, proxy)
    }

    fn imu(seed: u64) -> ImuTrace {
        ImuTrace::synthesize(MotionKind::HumanTouch, 500, seed)
    }

    #[test]
    fn lossless_channel_delivers_in_one_attempt() {
        let (app, _proxy) = paired(1);
        let mut client = ResilientClient::new(app);
        let mut ch = ProofChannel::new(FaultPlan::none(2), LatencyProfile::lan_wifi());
        let plan = client.plan_proof(
            &mut ch,
            SimTime::from_secs(100),
            "iot.app",
            &imu(3),
            MotionKind::HumanTouch,
        );
        let outcome = plan.outcome.unwrap();
        assert!(outcome.verified);
        assert_eq!(outcome.attempts, 1);
        assert_eq!(plan.frames.len(), 1);
        assert!(!plan.frames[0].corrupted);
        assert!(plan.first_clean_arrival().unwrap() >= SimTime::from_secs(100));
    }

    #[test]
    fn total_loss_exhausts_retries_with_no_arrivals() {
        let (app, _proxy) = paired(2);
        let mut client = ResilientClient::new(app);
        let plan_cfg = FaultPlan::with_rates(3, 1.0, 0.0, 0.0, 0.0, 0.0);
        let mut ch = ProofChannel::new(plan_cfg, LatencyProfile::lan_wifi());
        let plan = client.plan_proof(
            &mut ch,
            SimTime::from_secs(5),
            "iot.app",
            &imu(4),
            MotionKind::HumanTouch,
        );
        let outcome = plan.outcome.unwrap();
        assert!(!outcome.verified);
        assert_eq!(outcome.attempts, RetryPolicy::default().max_attempts);
        assert!(plan.frames.is_empty());
        assert!(plan.first_clean_arrival().is_none());
    }

    #[test]
    fn corruption_falls_back_to_one_rtt_then_keeps_retrying() {
        let (app, _proxy) = paired(3);
        let mut client = ResilientClient::new(app);
        // Every frame corrupted: 0-RTT attempt falls back, 1-RTT
        // corruptions read as losses, the loop runs to exhaustion and
        // every arrived frame is a mutant.
        let plan_cfg = FaultPlan::with_rates(4, 0.0, 0.0, 0.0, 0.0, 1.0);
        let mut ch = ProofChannel::new(plan_cfg, LatencyProfile::lan_wifi());
        let plan = client.plan_proof(
            &mut ch,
            SimTime::from_secs(9),
            "iot.app",
            &imu(5),
            MotionKind::HumanTouch,
        );
        let outcome = plan.outcome.unwrap();
        assert!(!outcome.verified);
        assert!(outcome.fell_back, "corrupted 0-RTT must trigger fallback");
        assert_eq!(outcome.attempts, RetryPolicy::default().max_attempts);
        assert_eq!(plan.frames.len(), outcome.attempts as usize);
        assert!(plan.frames.iter().all(|f| f.corrupted));
        assert!(matches!(plan.frames[0].attempt, AuthAttempt::ZeroRtt(_)));
        assert!(matches!(plan.frames[1].attempt, AuthAttempt::OneRtt(_)));
        assert!(plan.first_clean_arrival().is_none());
    }

    #[test]
    fn retries_outlast_a_short_offline_window() {
        let (app, _proxy) = paired(4);
        let mut client = ResilientClient::new(app);
        let start = SimTime::from_secs(50);
        let mut plan_cfg = FaultPlan::none(5);
        // Offline for 1 s from proof start: the first attempts vanish,
        // the backoff schedule walks out of the window, the proof lands.
        plan_cfg.offline = vec![(start, start + SimDuration::from_secs(1))];
        let mut ch = ProofChannel::new(plan_cfg, LatencyProfile::lan_wifi());
        let plan = client.plan_proof(&mut ch, start, "iot.app", &imu(6), MotionKind::HumanTouch);
        let outcome = plan.outcome.unwrap();
        assert!(outcome.verified, "backoff must outlast the window");
        assert!(outcome.attempts > 1);
        assert_eq!(plan.frames.len(), 1);
        let arrival = plan.first_clean_arrival().unwrap();
        assert!(arrival > start + SimDuration::from_secs(1));
        assert!(ch.plan.count(FaultKind::Offline) as u32 == outcome.attempts - 1);
    }

    #[test]
    fn without_retries_a_single_loss_is_fatal() {
        let (app, _proxy) = paired(5);
        let mut client = ResilientClient::without_retries(app);
        let plan_cfg = FaultPlan::with_rates(6, 1.0, 0.0, 0.0, 0.0, 0.0);
        let mut ch = ProofChannel::new(plan_cfg, LatencyProfile::lan_wifi());
        let plan = client.plan_proof(
            &mut ch,
            SimTime::from_secs(7),
            "iot.app",
            &imu(7),
            MotionKind::HumanTouch,
        );
        let outcome = plan.outcome.unwrap();
        assert!(!outcome.verified);
        assert_eq!(outcome.attempts, 1);
        assert!(plan.frames.is_empty());
    }

    #[test]
    fn sensor_unavailable_seals_nothing() {
        let (app, _proxy) = paired(6);
        let mut client = ResilientClient::new(app);
        let start = SimTime::from_secs(30);
        let mut plan_cfg = FaultPlan::none(8);
        plan_cfg.sensor_unavailable = vec![(start, start + SimDuration::from_secs(10))];
        let mut ch = ProofChannel::new(plan_cfg, LatencyProfile::lan_wifi());
        let plan = client.plan_proof(&mut ch, start, "iot.app", &imu(8), MotionKind::HumanTouch);
        assert!(plan.sensor_blocked);
        assert!(plan.outcome.is_none());
        assert!(plan.frames.is_empty());
        assert_eq!(ch.plan.count(FaultKind::SensorUnavailable), 1);
    }

    #[test]
    fn planned_frames_verify_at_the_real_proxy_in_arrival_order() {
        let (app, mut proxy) = paired(7);
        let mut client = ResilientClient::new(app);
        let mut ch = ProofChannel::new(
            FaultPlan::with_rates(9, 0.3, 0.2, 0.0, 0.3, 0.1),
            LatencyProfile::lte(),
        );
        let mut verified = 0u32;
        for i in 0..20u64 {
            let start = SimTime::from_secs(100 + i * 60);
            let plan =
                client.plan_proof(&mut ch, start, "iot.app", &imu(i), MotionKind::HumanTouch);
            let mut frames: Vec<_> = plan.frames.iter().collect();
            frames.sort_by_key(|f| f.arrival);
            let mut ok = false;
            for f in frames {
                let r = match &f.attempt {
                    AuthAttempt::ZeroRtt(z) => proxy.on_auth_zero_rtt(z, f.arrival),
                    AuthAttempt::OneRtt(p) => proxy.on_auth_one_rtt(p, f.arrival),
                };
                match r {
                    Ok(v) => ok |= v,
                    Err(_) => assert!(
                        f.corrupted || plan.frames.len() > 1,
                        "clean singleton frames must verify"
                    ),
                }
            }
            if plan.outcome.unwrap().verified {
                assert!(ok, "client-verified exchange must verify at the proxy");
            }
            verified += u32::from(ok);
        }
        assert!(verified > 10, "most exchanges should land: {verified}");
    }
}
