//! # fiat-chaos — seeded fault injection and graceful degradation
//!
//! FIAT's decision path assumes the humanness proof *arrives*: the phone
//! seals evidence, the proxy verifies it, and manual traffic flows. This
//! crate breaks that assumption on purpose. A seeded [`FaultPlan`]
//! drops, duplicates, reorders, delays, and corrupts frames on the
//! phone → proxy channel, models phone-offline windows and
//! sensor-unavailable intervals, and plugs into both the NFQUEUE-style
//! intercept queue ([`fiat_simnet::InterceptQueue::enqueue_with`]) and
//! the QUIC proof channel ([`ProofChannel`]). The zero-fault plan is
//! byte-identical to no injection at all — chaos is strictly opt-in.
//!
//! Against that, the graceful-degradation story:
//!
//! - the client retries with capped exponential backoff + jitter,
//!   re-signing every attempt and falling back to 1-RTT when 0-RTT is
//!   rejected ([`ResilientClient`] over
//!   [`fiat_core::FiatApp::authorize_with_retry`]);
//! - the proxy holds unproven manual packets in a bounded
//!   pending-verdict quarantine until a proof deadline instead of
//!   dropping them outright (`ProxyConfig::proof_deadline`).
//!
//! The [`soak`] harness measures the composition on the paper's
//! 10-device testbed: **false drops** — genuine manual events that lost
//! packets despite an eventually-delivered proof — must be zero with
//! retries at the default deadline, and disabling retries must show
//! measurable degradation (otherwise the harness proves nothing).
//! `experiments chaos` sweeps fault rates × latency profiles and writes
//! the scorecard with a PASS/REGRESSION trailer.
//!
//! The [`long_soak`] harness asks the *weeks* question instead of the
//! hours one: hundreds of homes × weeks of streamed simulated traffic,
//! with a per-home state-size accountant asserting a hard memory budget
//! at every sample, a snapshot-restore lockstep replay leg, and a
//! caps-disabled negative control that must breach the same budget.
//! `experiments soak` runs both legs and gates on zero false drops and
//! zero breaches (DESIGN §18, ROADMAP 5).

pub mod channel;
pub mod fault;
pub mod long_soak;
pub mod resilient;
pub mod soak;

pub use channel::{corrupt_attempt, ChannelVerdict, ProofChannel};
pub use fault::{FaultKind, FaultPlan, FAULT_KINDS};
pub use long_soak::{run_long_soak, HomeSim, LongSoakConfig, LongSoakReport};
pub use resilient::{ProofFrame, ProofPlan, ResilientClient};
pub use soak::{run_soak, SoakConfig, SoakReport};
