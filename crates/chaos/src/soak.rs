//! Chaos soak: the 10-device testbed driven through a faulty proof
//! channel, measuring graceful degradation of the decision path.
//!
//! One soak run generates the paper's device matrix, plans a humanness
//! proof for every genuine post-bootstrap manual event (the user touches
//! the phone just before the command), pushes each proof through the
//! [`ProofChannel`] with the configured fault rates, and then drives the
//! real [`FiatProxy`] with proofs and packets merged in arrival order.
//! Held packets drain through [`FiatProxy::take_quarantine_releases`]
//! and are credited back to their events.
//!
//! The headline number is **false drops**: genuine manual events that
//! lost packets *despite an eventually-delivered proof*. With retries at
//! the default quarantine deadline this must be zero — the retry
//! schedule (≈5.3 s worst case) fits inside the 10 s deadline, so a
//! delivered proof always lands before the quarantine gives up. Events
//! whose proof never arrived at all (exhausted retries, offline window,
//! sensor outage) count separately as **unproven drops**; that number
//! growing when retries are disabled is the degradation the harness
//! exists to demonstrate.

use crate::channel::ProofChannel;
use crate::fault::{FaultPlan, FAULT_KINDS};
use crate::resilient::{ProofFrame, ResilientClient};
use fiat_core::{
    AuthAttempt, EventClassifier, FiatApp, FiatProxy, ProxyConfig, ProxyDecision, ProxyStats,
};
use fiat_net::{SimDuration, SimTime, TrafficClass};
use fiat_sensors::{HumannessValidator, ImuTrace, MotionKind};
use fiat_simnet::{InterceptQueue, LatencyProfile, Verdict};
use fiat_telemetry::ChaosMetrics;
use fiat_trace::{TestbedConfig, TestbedTrace};

/// Pairing-ceremony secret shared by the soak's proxy and app.
const SECRET: [u8; 32] = [0x6b; 32];

/// The user touches the phone this long before the first command packet.
const PROOF_LEAD: SimDuration = SimDuration::from_millis(200);

/// One soak cell's configuration.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Master seed (trace, chaos, and client jitter all derive from it).
    pub seed: u64,
    /// Scale the capture down for smoke tests.
    pub quick: bool,
    /// Proof-channel loss rate; duplicate/corrupt/delay rates derive
    /// from it (½×, ¼×, and a fixed 15%).
    pub loss: f64,
    /// Base one-way latency of the proof channel.
    pub latency: LatencyProfile,
    /// Whether the client retries (false = degradation baseline).
    pub retries: bool,
    /// Quarantine proof deadline handed to the proxy.
    pub proof_deadline: SimDuration,
    /// Inject a phone-offline window and a sensor-unavailable window.
    pub windows: bool,
}

impl SoakConfig {
    /// The default cell: 5% loss on home WiFi, retries on, 10 s
    /// deadline, chaos windows enabled.
    pub fn new(seed: u64, quick: bool) -> Self {
        SoakConfig {
            seed,
            quick,
            loss: 0.05,
            latency: LatencyProfile::lan_wifi(),
            retries: true,
            proof_deadline: SimDuration::from_secs(10),
            windows: true,
        }
    }
}

/// Aggregate result of one soak cell.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Packets driven through the proxy.
    pub packets: u64,
    /// Genuine post-bootstrap manual events (each gets a proof attempt).
    pub manual_events: u64,
    /// Events whose proof verified at the proxy.
    pub proofs_delivered: u64,
    /// Events that lost packets despite a delivered proof (must be 0
    /// with retries at the default deadline).
    pub false_drops: u64,
    /// Events that lost packets because their proof never arrived.
    pub unproven_drops: u64,
    /// Events whose proof was never even sealed (sensor outage).
    pub sensor_blocked: u64,
    /// Proof delivery attempts beyond the first.
    pub retries: u64,
    /// Exchanges that fell back from 0-RTT to 1-RTT.
    pub fell_back: u64,
    /// Injected faults by kind (proof channel + device wire combined).
    pub faults: Vec<(&'static str, u64)>,
    /// Final proxy counters (quarantine held/released/expired included).
    pub stats: ProxyStats,
}

impl SoakReport {
    /// Total injected faults.
    pub fn total_faults(&self) -> u64 {
        self.faults.iter().map(|&(_, n)| n).sum()
    }

    /// Events that lost at least one packet, proof or no proof.
    pub fn dropped_events(&self) -> u64 {
        self.false_drops + self.unproven_drops
    }
}

/// Per-event bookkeeping during the merge.
struct EvRec {
    device: u16,
    verified_at: Option<SimTime>,
    drops: u64,
    held: u64,
    released: u64,
}

/// Run one soak cell. Fully deterministic per [`SoakConfig`].
pub fn run_soak(cfg: &SoakConfig, metrics: Option<&ChaosMetrics>) -> SoakReport {
    let days = if cfg.quick { 0.022 } else { 0.06 };
    let tb = TestbedTrace::generate(TestbedConfig {
        days,
        manual_per_day: 60.0,
        routines_per_day: 30.0,
        seed: cfg.seed,
        ..Default::default()
    });
    let config = ProxyConfig {
        bootstrap: SimDuration::from_mins(10),
        proof_deadline: Some(cfg.proof_deadline),
        ..Default::default()
    };
    let boot_end = SimTime::ZERO + config.bootstrap;
    let span_end = tb.trace.packets.last().map_or(boot_end, |p| p.ts);

    // The real proxy: perfect validator (the soak studies delivery
    // timing, not validator noise), simple-rule classifiers as in the
    // oracle fuzzer.
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let mut proxy = FiatProxy::new(config.clone(), &SECRET, validator);
    for (i, d) in tb.devices.iter().enumerate() {
        let size = d
            .simple_rule_size
            .or_else(|| d.manual.as_ref().map(|m| m.sizes[0]))
            .unwrap_or(0);
        proxy.register_device(
            i as u16,
            EventClassifier::simple_rule(size),
            d.min_packets_to_complete,
        );
    }
    proxy.set_dns(tb.trace.dns.clone());
    proxy.start(SimTime::ZERO);

    // The faulty proof channel. Offline and sensor windows sit in the
    // post-bootstrap half of the capture so they actually intersect
    // proof attempts.
    let mut plan = FaultPlan::with_rates(
        cfg.seed ^ 0xc2b2_ae35,
        cfg.loss,
        cfg.loss / 2.0,
        0.0,
        0.15,
        cfg.loss / 4.0,
    );
    plan.delay = LatencyProfile::from_millis(50, 400);
    if cfg.windows {
        let span = span_end.as_micros().saturating_sub(boot_end.as_micros());
        let off0 = boot_end + SimDuration::from_micros(span / 2);
        let sense0 = boot_end + SimDuration::from_micros(span * 3 / 4);
        plan.offline = vec![(off0, off0 + SimDuration::from_secs(45))];
        plan.sensor_unavailable = vec![(sense0, sense0 + SimDuration::from_secs(30))];
    }
    let mut channel = ProofChannel::new(plan, cfg.latency);

    // The phone: one handshake, then a proof exchange per manual event.
    let mut app = FiatApp::new(&SECRET, cfg.seed ^ 0x9e3779b9);
    let ch = app.handshake_request();
    let sh = proxy.accept_handshake(&ch);
    app.complete_handshake(&sh).expect("soak handshake");
    let mut client = if cfg.retries {
        ResilientClient::new(app)
    } else {
        ResilientClient::without_retries(app)
    };
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, cfg.seed ^ 0x51);

    // Plan every proof up front (frames carry true arrival times; the
    // proxy only sees them once the merge reaches those times).
    let mut events: Vec<EvRec> = Vec::new();
    let mut ev_index: std::collections::HashMap<u16, Vec<(u64, usize)>> =
        std::collections::HashMap::new();
    let mut frames: Vec<(SimTime, usize, ProofFrame)> = Vec::new();
    let mut retries_spent = 0u64;
    let mut fell_back = 0u64;
    let mut sensor_blocked = 0u64;
    for ev in tb
        .events
        .iter()
        .filter(|e| e.class == TrafficClass::Manual && e.start >= boot_end)
    {
        let idx = events.len();
        let proof_at =
            SimTime::from_micros(ev.start.as_micros().saturating_sub(PROOF_LEAD.as_micros()));
        let plan = client.plan_proof(
            &mut channel,
            proof_at,
            "iot.app",
            &imu,
            MotionKind::HumanTouch,
        );
        if plan.sensor_blocked {
            sensor_blocked += 1;
        }
        if let Some(o) = plan.outcome {
            retries_spent += u64::from(o.attempts.saturating_sub(1));
            fell_back += u64::from(o.fell_back);
        }
        for f in plan.frames {
            frames.push((f.arrival, idx, f));
        }
        events.push(EvRec {
            device: ev.device,
            verified_at: None,
            drops: 0,
            held: 0,
            released: 0,
        });
        ev_index
            .entry(ev.device)
            .or_default()
            .push((ev.start.as_micros(), idx));
    }
    for starts in ev_index.values_mut() {
        starts.sort_unstable();
    }
    frames.sort_by_key(|&(at, idx, _)| (at, idx));

    // The device-bound wire: allowed packets pass an NFQUEUE-style
    // intercept with its own (light) fault plan, exercising the
    // enqueue_with integration; wire faults are reported but do not
    // touch decision accounting.
    let mut wire = FaultPlan::with_rates(
        cfg.seed ^ 0x27d4_eb2f,
        cfg.loss / 4.0,
        0.0,
        cfg.loss / 2.0,
        0.0,
        0.0,
    );
    let mut queue = InterceptQueue::new();

    let lookup = |ev_index: &std::collections::HashMap<u16, Vec<(u64, usize)>>,
                  device: u16,
                  ts: SimTime|
     -> Option<usize> {
        let starts = ev_index.get(&device)?;
        let pos = starts.partition_point(|&(s, _)| s <= ts.as_micros());
        pos.checked_sub(1).map(|p| starts[p].1)
    };

    // Merge: proofs and packets in global time order.
    let mut fi = 0usize;
    let mut packets = 0u64;
    let deliver =
        |proxy: &mut FiatProxy, events: &mut Vec<EvRec>, f: &(SimTime, usize, ProofFrame)| {
            let (arrival, idx, frame) = (f.0, f.1, &f.2);
            let r = match &frame.attempt {
                AuthAttempt::ZeroRtt(z) => proxy.on_auth_zero_rtt(z, arrival),
                AuthAttempt::OneRtt(p) => proxy.on_auth_one_rtt(p, arrival),
            };
            if let Ok(true) = r {
                let dev = events[idx].device;
                if events[idx].verified_at.is_none() {
                    events[idx].verified_at = Some(arrival);
                }
                // The user is at the phone: a successful verify also clears
                // any standing lockout on the device they are commanding.
                proxy.clear_lockout(dev);
            }
            // A verified (or failed) proof may have released held packets
            // across any quarantined device; credit them to their events.
            for rel in proxy.take_quarantine_releases() {
                if rel.label == TrafficClass::Manual {
                    if let Some(e) = lookup(&ev_index, rel.device, rel.ts) {
                        events[e].released += 1;
                    }
                }
            }
        };
    for pkt in &tb.trace.packets {
        while fi < frames.len() && frames[fi].0 <= pkt.ts {
            deliver(&mut proxy, &mut events, &frames[fi]);
            fi += 1;
        }
        let d = proxy.on_packet(pkt);
        packets += 1;
        if pkt.label == TrafficClass::Manual && pkt.ts >= boot_end {
            if let Some(e) = lookup(&ev_index, pkt.device, pkt.ts) {
                match d {
                    ProxyDecision::Allow(_) => {}
                    ProxyDecision::Drop(_) => events[e].drops += 1,
                    ProxyDecision::Quarantine => events[e].held += 1,
                }
            }
        }
        if d.is_allow() {
            queue.enqueue_with(&mut wire, pkt.clone(), pkt.ts);
            while queue.decide_next(pkt.ts, |_| Verdict::Allow).is_some() {}
        }
    }
    while fi < frames.len() {
        deliver(&mut proxy, &mut events, &frames[fi]);
        fi += 1;
    }
    // Trailing flush well past the deadline expires every straggler.
    proxy.flush(span_end + cfg.proof_deadline + config.event_gap * 3);

    // Event-level verdicts.
    let mut false_drops = 0u64;
    let mut unproven_drops = 0u64;
    let mut proofs_delivered = 0u64;
    for ev in &events {
        let final_dropped = ev.drops + ev.held.saturating_sub(ev.released);
        if ev.verified_at.is_some() {
            proofs_delivered += 1;
            if final_dropped > 0 {
                false_drops += 1;
            }
        } else if final_dropped > 0 {
            unproven_drops += 1;
        }
    }

    // Merge channel + wire fault counts into one table.
    let faults: Vec<(&'static str, u64)> = FAULT_KINDS
        .iter()
        .map(|&k| (k.as_str(), channel.plan.count(k) + wire.count(k)))
        .collect();

    if let Some(m) = metrics {
        for &(kind, n) in &faults {
            m.record_faults(kind, n);
        }
        m.record_retries(retries_spent);
        m.record_false_drops(false_drops);
    }

    SoakReport {
        packets,
        manual_events: events.len() as u64,
        proofs_delivered,
        false_drops,
        unproven_drops,
        sensor_blocked,
        retries: retries_spent,
        fell_back,
        faults,
        stats: proxy.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_at_default_loss_has_zero_false_drops() {
        // The acceptance bar: 5% proof-channel loss, retries on, 10 s
        // deadline — every delivered proof beats the deadline, so no
        // genuine manual event may lose packets.
        let report = run_soak(&SoakConfig::new(42, true), None);
        assert!(report.manual_events > 3, "need events: {report:?}");
        assert_eq!(report.false_drops, 0, "{report:?}");
        assert!(report.proofs_delivered > 0);
        assert!(report.total_faults() > 0, "chaos must actually fire");
    }

    #[test]
    fn disabling_retries_degrades_delivery() {
        let on = run_soak(&SoakConfig::new(42, true), None);
        let off = run_soak(
            &SoakConfig {
                retries: false,
                ..SoakConfig::new(42, true)
            },
            None,
        );
        assert!(
            off.proofs_delivered < on.proofs_delivered
                || off.dropped_events() > on.dropped_events(),
            "no-retry leg must be measurably worse: on {on:?} off {off:?}"
        );
        assert_eq!(off.retries, 0);
    }

    #[test]
    fn zero_loss_run_is_clean() {
        let cfg = SoakConfig {
            loss: 0.0,
            windows: false,
            ..SoakConfig::new(7, true)
        };
        let report = run_soak(&cfg, None);
        assert_eq!(report.false_drops, 0);
        assert_eq!(report.unproven_drops, 0);
        assert_eq!(report.retries, 0);
        assert_eq!(report.manual_events, report.proofs_delivered);
    }

    #[test]
    fn soak_is_deterministic_per_seed() {
        let a = run_soak(&SoakConfig::new(3, true), None);
        let b = run_soak(&SoakConfig::new(3, true), None);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.false_drops, b.false_drops);
        assert_eq!(a.unproven_drops, b.unproven_drops);
    }

    #[test]
    fn metrics_record_faults_retries_and_false_drops() {
        let registry = fiat_telemetry::MetricRegistry::new();
        let metrics = ChaosMetrics::new(&registry);
        let report = run_soak(&SoakConfig::new(42, true), Some(&metrics));
        assert_eq!(metrics.retry_count(), report.retries);
        assert_eq!(metrics.false_drop_count(), report.false_drops);
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_chaos_faults_total"));
    }
}
