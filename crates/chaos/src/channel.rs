//! The faulty phone → proxy proof channel.
//!
//! [`ProofChannel`] carries sealed [`AuthAttempt`] frames through a
//! [`FaultPlan`]: frames can be lost (drop or offline window), delayed
//! (base latency plus an extra-delay fault), corrupted (a ciphertext bit
//! flip the proxy sees as `DecryptFailed`), or duplicated (the second
//! copy trips the anti-replay store). The channel only *schedules*
//! deliveries — the proxy is driven later, in arrival order, by the soak
//! harness — so chaos timing composes with the quarantine deadline
//! exactly as it would on a real network.

use crate::fault::{FaultKind, FaultPlan, FrameFate};
use fiat_core::AuthAttempt;
use fiat_net::{SimDuration, SimTime};
use fiat_quic::{Packet, ZeroRttPacket};
use fiat_simnet::LatencyProfile;

/// Spacing between a frame and its injected duplicate.
const DUPLICATE_SPACING: SimDuration = SimDuration::from_millis(2);

/// What the channel did with one sealed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelVerdict {
    /// The frame never arrives (drop fault or offline window).
    Lost,
    /// The frame arrives at the given time; `corrupted` means its
    /// ciphertext was flipped in flight, `duplicated` means a second
    /// copy lands [`DUPLICATE_SPACING`] later.
    Delivered {
        /// Arrival time at the proxy.
        arrival: SimTime,
        /// Ciphertext bit-flipped in flight.
        corrupted: bool,
        /// A second identical copy follows.
        duplicated: bool,
    },
}

/// A lossy, seeded channel for proof frames. See the module docs.
#[derive(Debug)]
pub struct ProofChannel {
    /// Fault model (rates, windows, RNG, counters).
    pub plan: FaultPlan,
    /// Base one-way latency of the phone → proxy path.
    pub base: LatencyProfile,
}

impl ProofChannel {
    /// A channel over the given fault plan and base latency.
    pub fn new(plan: FaultPlan, base: LatencyProfile) -> Self {
        ProofChannel { plan, base }
    }

    /// Carry one frame sent at `sent_at`; returns its fate. Rolls happen
    /// in a fixed order on the plan's seeded RNG, so runs replay exactly.
    pub fn transmit(&mut self, sent_at: SimTime) -> ChannelVerdict {
        match self.plan.frame_fate(sent_at) {
            FrameFate::Lost => ChannelVerdict::Lost,
            FrameFate::Delivered {
                extra_delay,
                corrupted,
                duplicated,
            } => {
                let base = self.base.sample(self.plan.rng());
                ChannelVerdict::Delivered {
                    arrival: sent_at + base + extra_delay,
                    corrupted,
                    duplicated,
                }
            }
        }
    }

    /// Whether the IMU is unavailable at `t` (no evidence can be
    /// produced, so no frame is ever sealed). Counts the fault.
    pub fn sensor_blocked(&mut self, t: SimTime) -> bool {
        if self.plan.sensor_unavailable_at(t) {
            self.plan.record(FaultKind::SensorUnavailable);
            true
        } else {
            false
        }
    }

    /// The arrival time of an injected duplicate of a frame landing at
    /// `arrival`.
    pub fn duplicate_arrival(arrival: SimTime) -> SimTime {
        arrival + DUPLICATE_SPACING
    }
}

/// Flip one ciphertext bit of a sealed attempt — the proxy will fail
/// authenticated decryption (`DecryptFailed`), never accept a forgery.
pub fn corrupt_attempt(att: &AuthAttempt) -> AuthAttempt {
    match att {
        AuthAttempt::ZeroRtt(z) => AuthAttempt::ZeroRtt(ZeroRttPacket {
            ticket: z.ticket,
            nonce: z.nonce,
            ciphertext: flip_bit(&z.ciphertext),
        }),
        AuthAttempt::OneRtt(p) => AuthAttempt::OneRtt(Packet {
            number: p.number,
            ciphertext: flip_bit(&p.ciphertext),
        }),
    }
}

fn flip_bit(bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if let Some(mid) = out.len().checked_sub(1).map(|n| n / 2) {
        out[mid] ^= 0x40;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_core::{FiatApp, FiatProxy, ProxyConfig};
    use fiat_sensors::{HumannessValidator, ImuTrace, MotionKind};

    const SECRET: [u8; 32] = [0x42; 32];

    fn paired() -> (FiatApp, FiatProxy) {
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy = FiatProxy::new(ProxyConfig::default(), &SECRET, validator);
        let mut app = FiatApp::new(&SECRET, 1);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        (app, proxy)
    }

    #[test]
    fn corrupted_zero_rtt_frames_fail_decryption_not_verification() {
        let (mut app, mut proxy) = paired();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 2);
        let z = app
            .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, 1_000)
            .unwrap();
        let att = corrupt_attempt(&AuthAttempt::ZeroRtt(z));
        let AuthAttempt::ZeroRtt(bad) = att else {
            unreachable!()
        };
        let err = proxy
            .on_auth_zero_rtt(&bad, SimTime::from_secs(1))
            .unwrap_err();
        assert!(
            matches!(
                err,
                fiat_core::pipeline::AuthError::Transport(fiat_quic::QuicError::DecryptFailed)
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn corrupted_one_rtt_frames_fail_decryption_too() {
        let (mut app, mut proxy) = paired();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
        let p = app
            .authorize_one_rtt("app", &imu, MotionKind::HumanTouch, 2_000)
            .unwrap();
        let att = corrupt_attempt(&AuthAttempt::OneRtt(p));
        let AuthAttempt::OneRtt(bad) = att else {
            unreachable!()
        };
        assert!(proxy.on_auth_one_rtt(&bad, SimTime::from_secs(1)).is_err());
    }

    #[test]
    fn duplicated_clean_frames_verify_once_then_replay_reject() {
        let (mut app, mut proxy) = paired();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 4);
        let z = app
            .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, 3_000)
            .unwrap();
        assert!(proxy.on_auth_zero_rtt(&z, SimTime::from_secs(1)).unwrap());
        let err = proxy
            .on_auth_zero_rtt(&z, SimTime::from_secs(1))
            .unwrap_err();
        assert!(matches!(
            err,
            fiat_core::pipeline::AuthError::Transport(fiat_quic::QuicError::Replayed)
        ));
    }

    #[test]
    fn transmit_is_deterministic_and_lossless_at_zero_rates() {
        let mut ch = ProofChannel::new(FaultPlan::none(9), LatencyProfile::from_millis(5, 15));
        for i in 0..100u64 {
            let t = SimTime::from_secs(i);
            match ch.transmit(t) {
                ChannelVerdict::Delivered {
                    arrival,
                    corrupted,
                    duplicated,
                } => {
                    assert!(arrival >= t + SimDuration::from_millis(5));
                    assert!(arrival <= t + SimDuration::from_millis(20));
                    assert!(!corrupted && !duplicated);
                }
                ChannelVerdict::Lost => panic!("zero-rate plan lost a frame"),
            }
        }
        assert_eq!(ch.plan.total_faults(), 0);
    }

    #[test]
    fn offline_windows_lose_proof_frames() {
        let mut plan = FaultPlan::none(11);
        plan.offline = vec![(SimTime::from_secs(5), SimTime::from_secs(6))];
        let mut ch = ProofChannel::new(plan, LatencyProfile::from_millis(5, 15));
        assert_eq!(
            ch.transmit(SimTime::from_micros(5_500_000)),
            ChannelVerdict::Lost
        );
        assert_eq!(ch.plan.count(FaultKind::Offline), 1);
        assert!(matches!(
            ch.transmit(SimTime::from_secs(7)),
            ChannelVerdict::Delivered { .. }
        ));
    }
}
