//! Long-horizon streaming soak under a hard memory budget (ROADMAP 5,
//! DESIGN §18).
//!
//! The chaos soak ([`crate::soak`]) proves the proof-delivery path
//! degrades gracefully over *hours*. This harness asks the other
//! longevity question: does per-home proxy state stay **bounded** over
//! *weeks*? A home gateway runs for months; any state machine without a
//! ceiling — the rule table, quarantine records, the audit chain, the
//! 0-RTT replay window — eventually evicts something that matters or
//! OOMs the box.
//!
//! Design:
//!
//! - **Streamed, never materialized.** Each home's traffic is generated
//!   one simulated day at a time ([`HomeSim::run_day`]) and fed straight
//!   into a real [`FiatProxy`]; no multi-week trace ever exists in
//!   memory, so the harness itself obeys the budget it enforces.
//! - **Adversarial schedule.** Every home runs a plug issuing proofed
//!   manual commands (the zero-false-drop canary), a sensor with a
//!   learned periodic rule (the eviction-costs-latency-not-drops
//!   canary), a hostile device that floods qualifying flow keys during
//!   bootstrap (rule-cap pressure) and revisits evicted flows after it
//!   (ghost re-learn churn) while cycling fresh keys forever (audit
//!   growth), and five guests whose unproven manual events pile up
//!   concurrent quarantine records past the record cap (demotion).
//! - **State accountant.** [`FiatProxy::state_size`] is sampled twice a
//!   simulated day (mid-quarantine-storm and end-of-day) and asserted
//!   against [`LongSoakConfig::budget`]; samples also feed the
//!   `fiat_state_*` gauge pairs, whose high-water marks report the worst
//!   home in the fleet.
//! - **Snapshot-replay leg.** Every Nth home is snapshotted mid-soak,
//!   serialized, restored, and driven in lockstep with the original to
//!   the end; any decision mismatch or final-state byte difference is a
//!   determinism regression.
//! - **Negative control.** [`LongSoakConfig::negative`] disables every
//!   cap; the same budget must then *breach* — proving the accountant
//!   can actually see the unbounded growth the caps exist to stop.
//!
//! Epoch hygiene rides along: ticket epochs rotate weekly, the client
//! re-handshakes, and retired epochs drop their replay entries, so the
//! replay window is bounded by churn, not by uptime.

use fiat_core::pipeline::ProxyTelemetry;
use fiat_core::{
    EventClassifier, FiatApp, FiatProxy, HomeSnapshot, ProxyConfig, ProxyDecision, ProxyStats,
    StateSize,
};
use fiat_fingerprint::{FingerprintEngine, MatcherConfig, SignatureSet};
use fiat_net::{
    Direction, PacketRecord, SimDuration, SimTime, TcpFlags, TlsVersion, TrafficClass, Transport,
};
use fiat_sensors::{HumannessValidator, ImuTrace, MotionKind};
use fiat_telemetry::{ManualClock, MetricRegistry, StateMetrics};
use fiat_trace::fingerprint_corpus;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Pairing-ceremony secret shared by every soak home's proxy and phone.
const SECRET: [u8; 32] = [0x4c; 32];

/// Seconds per simulated day.
const DAY: u64 = 86_400;

/// Plug (device 0) manual size — the proofed, must-never-drop traffic.
const MANUAL_SIZE: u16 = 235;

/// One long-soak run's configuration.
#[derive(Debug, Clone, Copy)]
pub struct LongSoakConfig {
    /// Master seed (client jitter and IMU noise derive from it).
    pub seed: u64,
    /// Homes in the fleet, each an independent proxy + timeline.
    pub homes: u32,
    /// Simulated days per home.
    pub days: u32,
    /// Hard per-home budget on [`StateSize::total`] at every sample.
    pub budget: usize,
    /// `false` = negative-control leg: every cap disabled; the budget
    /// must then breach or the accountant is blind.
    pub capped: bool,
    /// Snapshot-replay lockstep every Nth home (0 = skip the leg).
    pub replay_every: u32,
}

impl LongSoakConfig {
    /// CI smoke scale: 500 homes × 15 days (> 2 simulated weeks).
    pub fn quick(seed: u64) -> Self {
        LongSoakConfig {
            seed,
            homes: 500,
            days: 15,
            budget: 320,
            capped: true,
            replay_every: 50,
        }
    }

    /// Full scale: 2 000 homes × 4 simulated weeks.
    pub fn full(seed: u64) -> Self {
        LongSoakConfig {
            homes: 2_000,
            days: 28,
            ..Self::quick(seed)
        }
    }

    /// Negative control: caps off, small fleet, same budget — growth
    /// (dominated by the ~31 audit entries a day the hostile schedule
    /// appends) must breach it within ten days.
    pub fn negative(seed: u64) -> Self {
        LongSoakConfig {
            homes: 16,
            days: 10,
            capped: false,
            replay_every: 0,
            ..Self::quick(seed)
        }
    }

    /// The proxy configuration this leg runs: generous-but-finite caps,
    /// or none at all for the negative control. The fingerprint gate is
    /// on in both legs — its evidence state is FIFO-capped by
    /// construction ([`soak_matcher`]), so it rides inside the budget
    /// rather than being one of the caps the negative control disables.
    pub fn proxy_config(&self) -> ProxyConfig {
        ProxyConfig {
            bootstrap: SimDuration::from_mins(10),
            proof_deadline: Some(SimDuration::from_secs(10)),
            max_rules: if self.capped { Some(8) } else { None },
            max_quarantine_records: if self.capped { Some(4) } else { None },
            max_audit_entries: if self.capped { Some(128) } else { None },
            fingerprint_unknown: true,
            ..Default::default()
        }
    }
}

/// Matcher caps for the soak's gate: at most 8 open evidence windows and
/// 16 cached verdicts, so `StateSize::fingerprint_evidence` contributes
/// a hard ≤ 24 entries to the budget no matter how many strangers visit.
fn soak_matcher() -> MatcherConfig {
    MatcherConfig {
        max_tracked: 8,
        max_sealed: 16,
        ..MatcherConfig::default()
    }
}

/// Aggregate result of one long-soak run. Fully deterministic per
/// [`LongSoakConfig`] — the bench gate compares two runs byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LongSoakReport {
    /// Homes driven.
    pub homes: u32,
    /// Simulated days per home.
    pub days: u32,
    /// Packets decided across the fleet.
    pub packets: u64,
    /// Manual events generated (plug + guests).
    pub manual_events: u64,
    /// Humanness proofs that verified at a proxy.
    pub proofs_delivered: u64,
    /// Dropped packets on the proofed plug or the learned-rule sensor —
    /// the bounded-state policies must never cause one.
    pub false_drops: u64,
    /// The per-home budget every sample was checked against.
    pub budget: usize,
    /// State samples taken across the fleet.
    pub samples: u64,
    /// Samples whose [`StateSize::total`] exceeded the budget.
    pub budget_breaches: u64,
    /// Field-wise high-water mark across every home and sample.
    pub hwm: StateSize,
    /// Audit entries dropped by checkpointed truncation, fleet-wide.
    pub audit_truncated: u64,
    /// Audit entries ever appended, fleet-wide.
    pub audit_appended: u64,
    /// Homes that ran the snapshot-replay lockstep leg.
    pub replay_checked: u64,
    /// Per-packet decision mismatches between original and restored.
    pub replay_decision_mismatches: u64,
    /// Replay homes whose final stats or snapshot bytes diverged.
    pub replay_state_mismatches: u64,
    /// Fleet-aggregated proxy counters.
    pub stats: ProxyStats,
}

impl LongSoakReport {
    /// The pass condition the bench trailer gates on.
    pub fn passed(&self) -> bool {
        self.false_drops == 0
            && self.budget_breaches == 0
            && self.replay_decision_mismatches == 0
            && self.replay_state_mismatches == 0
    }
}

/// One scheduled action in a home's day.
enum Act {
    Pkt(PacketRecord),
    Proof(SimTime),
    Rotate,
    Sample,
}

/// One home: a real proxy plus its phone, driven a day at a time.
pub struct HomeSim {
    cfg: LongSoakConfig,
    config: ProxyConfig,
    /// Trained fingerprint signatures, kept to rebuild the shadow's gate
    /// on restore (engine state is deliberately not snapshotted).
    sigs: SignatureSet,
    proxy: FiatProxy,
    /// Restored twin driven in lockstep after [`HomeSim::begin_shadow`].
    shadow: Option<FiatProxy>,
    app: FiatApp,
    imu: ImuTrace,
    home: u32,
    /// Hostile device's distinct bootstrap flows (rule-cap pressure).
    hostile_flows: u16,
    /// Packets decided so far.
    pub packets: u64,
    /// Manual events generated so far.
    pub manual_events: u64,
    /// Proofs that verified.
    pub proofs_delivered: u64,
    /// Drops on devices 0 (proofed plug) or 1 (learned-rule sensor).
    pub false_drops: u64,
    /// Original-vs-restored decision mismatches.
    pub replay_decision_mismatches: u64,
}

fn fresh_telemetry() -> ProxyTelemetry {
    ProxyTelemetry::new(MetricRegistry::new(), Arc::new(ManualClock::new()))
}

fn perfect_validator() -> HumannessValidator {
    HumannessValidator::with_operating_point(1.0, 1.0, 0)
}

impl HomeSim {
    /// Build one home and complete its first handshake. `sigs` is the
    /// fleet-shared trained signature set for the fingerprint gate.
    pub fn new(cfg: &LongSoakConfig, home: u32, sigs: &SignatureSet) -> Self {
        let config = cfg.proxy_config();
        let mut proxy = FiatProxy::with_telemetry(
            config.clone(),
            &SECRET,
            perfect_validator(),
            fresh_telemetry(),
        );
        // Devices: 0 plug, 1 sensor, 2 hostile, 3..8 guests. All get the
        // exact-size manual classifier; only 235 B events read manual.
        for dev in 0u16..8 {
            proxy.register_device(dev, EventClassifier::simple_rule(MANUAL_SIZE), 1);
        }
        proxy.set_fingerprinter(Box::new(FingerprintEngine::new(
            sigs.clone(),
            soak_matcher(),
        )));
        proxy.start(SimTime::ZERO);
        let mut app = FiatApp::new(&SECRET, cfg.seed ^ u64::from(home).wrapping_mul(0x9e37));
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).expect("soak handshake");
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, cfg.seed ^ 0x51);
        HomeSim {
            cfg: *cfg,
            config,
            sigs: sigs.clone(),
            proxy,
            shadow: None,
            app,
            imu,
            home,
            hostile_flows: 20 + (home % 8) as u16,
            packets: 0,
            manual_events: 0,
            proofs_delivered: 0,
            false_drops: 0,
            replay_decision_mismatches: 0,
        }
    }

    fn pkt(
        ts: SimTime,
        device: u16,
        size: u16,
        remote_port: u16,
        label: TrafficClass,
    ) -> PacketRecord {
        PacketRecord {
            ts,
            device,
            direction: Direction::FromDevice,
            local_ip: Ipv4Addr::new(192, 168, 1, 10 + device as u8),
            remote_ip: Ipv4Addr::new(34, 0, 0, 1),
            local_port: 40_000,
            remote_port,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::ack(),
            tls: TlsVersion::None,
            size,
            label,
        }
    }

    /// One day's schedule, in time order. Deterministic per (home, day).
    fn day_script(&mut self, day: u32) -> Vec<(SimTime, Act)> {
        let base = u64::from(day) * DAY;
        let at = |s: u64| SimTime::from_secs(base + s);
        let at_ms = |ms: u64| SimTime::from_millis(base * 1_000 + ms);
        let mut acts: Vec<(SimTime, Act)> = Vec::new();

        // Weekly epoch rotation + re-handshake, before any traffic.
        if day > 0 && day.is_multiple_of(7) {
            acts.push((at(5), Act::Rotate));
        }

        // Sensor (device 1): one periodic control flow. Day 0 seeds it
        // during the 10-minute bootstrap (150 s period, qualifying);
        // afterwards it reports every 30 minutes and must keep hitting
        // its rule — or re-learn through the ghost path if the hostile
        // churn evicted it.
        if day == 0 {
            for k in 0..4u64 {
                acts.push((
                    at(k * 150),
                    Act::Pkt(Self::pkt(at(k * 150), 1, 96, 8443, TrafficClass::Control)),
                ));
            }
        }
        let first = if day == 0 { 1 } else { 0 };
        for k in first..48u64 {
            let t = at(k * 1800);
            acts.push((
                t,
                Act::Pkt(Self::pkt(t, 1, 96, 8443, TrafficClass::Control)),
            ));
        }

        // Hostile (device 2), day 0: a qualifying periodic flow per
        // distinct key — without the rule cap the learned table scales
        // with the attacker, not the home.
        if day == 0 {
            for i in 0..self.hostile_flows {
                for j in 0..4u64 {
                    let t = at(u64::from(i) * 2 + j * 90);
                    acts.push((
                        t,
                        Act::Pkt(Self::pkt(t, 2, 64 + i, 9000 + i, TrafficClass::Automated)),
                    ));
                }
            }
        }
        // Hostile, every day after bootstrap: revisit four of the
        // evicted flows on a steady 2 h cadence (ghost re-learn churn —
        // each promotion evicts some other rule), and cycle a fresh key
        // every hour (event + audit-chain growth, forever).
        for i in 12u16..16 {
            let b = 3_600 + u64::from(i - 12) * 600;
            for j in 0..3u64 {
                let t = at(b + j * 7_200);
                acts.push((
                    t,
                    Act::Pkt(Self::pkt(t, 2, 64 + i, 9000 + i, TrafficClass::Automated)),
                ));
            }
        }
        for k in 0..24u64 {
            let t = at(k * 3_600 + 937);
            let n = u64::from(day) * 24 + k;
            // Distinct size per key: PortLess flow identity includes the
            // packet size, so a reused size would read as a rule hit
            // instead of a fresh unpredictable event.
            let size = 300 + (n % 512) as u16;
            let port = 20_000 + (n % 45_000) as u16;
            acts.push((
                t,
                Act::Pkt(Self::pkt(t, 2, size, port, TrafficClass::Automated)),
            ));
        }

        // Plug (device 0): two proofed manual events a day. The proof
        // lands 200 ms ahead of the first packet, so every packet must
        // flow — a drop here is a false drop, full stop.
        for &start in &[32_400u64, 64_800] {
            acts.push((
                at_ms(start * 1_000 - 200),
                Act::Proof(at_ms(start * 1_000 - 200)),
            ));
            for p in 0..3u64 {
                let t = at_ms(start * 1_000 + p * 250);
                acts.push((
                    t,
                    Act::Pkt(Self::pkt(t, 0, MANUAL_SIZE, 8080, TrafficClass::Manual)),
                ));
            }
            self.manual_events += 1;
        }

        // Guests (devices 3..8): five unproven manual events land within
        // five seconds of noon, so five quarantine records go live
        // concurrently — one past the record cap, forcing a demotion.
        for g in 0..5u64 {
            let start_ms = 43_200_000 + g * 1_000;
            for p in 0..2u64 {
                let t = at_ms(start_ms + p * 300);
                acts.push((
                    t,
                    Act::Pkt(Self::pkt(
                        t,
                        3 + g as u16,
                        MANUAL_SIZE,
                        8080,
                        TrafficClass::Manual,
                    )),
                ));
            }
            self.manual_events += 1;
        }

        // Strangers (ids from 100, unique per day so the snapshot-replay
        // leg never re-queries a pre-snapshot sealed verdict): three
        // unknown devices a day, each bursting exactly one evidence
        // window so its verdict seals before midnight. They keep the
        // fingerprint gate's tracked/sealed FIFOs under daily churn for
        // the whole soak; their quarantine drops are not false drops.
        for v in 0..3u16 {
            let vid = 100 + day as u16 * 3 + v;
            for p in 0..24u64 {
                let t = at((15 + u64::from(v)) * 3_600 + p * 40);
                acts.push((
                    t,
                    Act::Pkt(Self::pkt(
                        t,
                        vid,
                        1_400 + v * 7,
                        8443,
                        TrafficClass::Control,
                    )),
                ));
            }
        }

        // Mid-storm sample (records at their concurrent peak), a
        // mid-stranger-burst sample (open evidence windows live), plus
        // the end-of-day sample taken by `run_day` after the flush.
        acts.push((at(43_206), Act::Sample));
        acts.push((at(15 * 3_600 + 490), Act::Sample));

        acts.sort_by_key(|&(t, _)| t);
        acts
    }

    /// Snapshot the home, round-trip it through serde bytes, and restore
    /// the twin that [`HomeSim::run_day`] will drive in lockstep.
    /// Returns `false` (and counts a mismatch) if serialization is
    /// unstable or the restore is refused.
    pub fn begin_shadow(&mut self) -> bool {
        let bytes = serde_json::to_vec(&self.proxy.snapshot()).expect("snapshot serializes");
        let again = serde_json::to_vec(&self.proxy.snapshot()).expect("snapshot serializes");
        if bytes != again {
            return false;
        }
        let parsed: HomeSnapshot = match serde_json::from_slice(&bytes) {
            Ok(s) => s,
            Err(_) => return false,
        };
        match FiatProxy::restore(
            self.config.clone(),
            &SECRET,
            perfect_validator(),
            fresh_telemetry(),
            &parsed,
            |_| EventClassifier::simple_rule(MANUAL_SIZE),
        ) {
            Ok(mut p) => {
                // The gate is not part of the snapshot; the restored twin
                // gets a fresh engine. Lockstep still holds because every
                // stranger's ids are day-unique and its window seals
                // within the day: verdicts cached before the snapshot are
                // never queried again after it.
                p.set_fingerprinter(Box::new(FingerprintEngine::new(
                    self.sigs.clone(),
                    soak_matcher(),
                )));
                self.shadow = Some(p);
                true
            }
            Err(_) => false,
        }
    }

    /// `Some(true)` when a shadow ran and its final stats and snapshot
    /// bytes are identical to the original's; `None` without a shadow.
    pub fn shadow_matches(&self) -> Option<bool> {
        self.shadow.as_ref().map(|sh| {
            sh.stats() == self.proxy.stats()
                && serde_json::to_vec(&sh.snapshot()).expect("snapshot serializes")
                    == serde_json::to_vec(&self.proxy.snapshot()).expect("snapshot serializes")
        })
    }

    /// Current state-size accounting of the home's proxy.
    pub fn state(&self) -> StateSize {
        self.proxy.state_size()
    }

    /// Final proxy counters.
    pub fn stats(&self) -> ProxyStats {
        self.proxy.stats()
    }

    /// `(truncated, appended)` audit-chain totals for this home.
    pub fn audit_totals(&self) -> (u64, u64) {
        let a = self.proxy.audit();
        (a.truncated(), a.total_appended())
    }

    /// Drive one simulated day, invoking `sample` at each accountant
    /// checkpoint (mid-storm and after the end-of-day flush).
    pub fn run_day(&mut self, day: u32, sample: &mut dyn FnMut(StateSize)) {
        let acts = self.day_script(day);
        for (t, act) in acts {
            match act {
                Act::Pkt(p) => {
                    let d = self.proxy.on_packet(&p);
                    if let Some(sh) = &mut self.shadow {
                        if sh.on_packet(&p) != d {
                            self.replay_decision_mismatches += 1;
                        }
                    }
                    self.packets += 1;
                    if p.device <= 1 && matches!(d, ProxyDecision::Drop(_)) {
                        self.false_drops += 1;
                    }
                }
                Act::Proof(t) => {
                    let z = self
                        .app
                        .authorize_zero_rtt(
                            "iot.app",
                            &self.imu,
                            MotionKind::HumanTouch,
                            t.as_micros(),
                        )
                        .expect("0-RTT seal");
                    if self.proxy.on_auth_zero_rtt(&z, t) == Ok(true) {
                        self.proofs_delivered += 1;
                    }
                    let _ = self.proxy.take_quarantine_releases();
                    if let Some(sh) = &mut self.shadow {
                        let _ = sh.on_auth_zero_rtt(&z, t);
                        let _ = sh.take_quarantine_releases();
                    }
                }
                Act::Rotate => {
                    self.proxy.rotate_ticket_epoch();
                    let cur = self.proxy.ticket_epoch();
                    self.proxy.retire_ticket_epochs_below(cur);
                    if let Some(sh) = &mut self.shadow {
                        sh.rotate_ticket_epoch();
                        sh.retire_ticket_epochs_below(cur);
                    }
                    // The phone re-handshakes under the new epoch (its
                    // old ticket just retired). Deterministic: the app
                    // is rebuilt from the home seed + day.
                    self.app = FiatApp::new(
                        &SECRET,
                        self.cfg.seed
                            ^ u64::from(self.home).wrapping_mul(0x9e37)
                            ^ u64::from(day).wrapping_mul(0x85eb),
                    );
                    let ch = self.app.handshake_request();
                    let sh_hello = self.proxy.accept_handshake(&ch);
                    if let Some(sh) = &mut self.shadow {
                        let _ = sh.accept_handshake(&ch);
                    }
                    self.app
                        .complete_handshake(&sh_hello)
                        .expect("re-handshake");
                }
                Act::Sample => sample(self.proxy.state_size()),
            }
            let _ = t;
        }
        let end = SimTime::from_secs((u64::from(day) + 1) * DAY - 3);
        self.proxy.flush(end);
        if let Some(sh) = &mut self.shadow {
            sh.flush(end);
        }
        sample(self.proxy.state_size());
    }
}

/// Run the fleet. Fully deterministic per [`LongSoakConfig`]; samples
/// feed `metrics` (worst-home-wins via the gauge high-water marks).
pub fn run_long_soak(cfg: &LongSoakConfig, metrics: Option<&StateMetrics>) -> LongSoakReport {
    let mut report = LongSoakReport {
        homes: cfg.homes,
        days: cfg.days,
        packets: 0,
        manual_events: 0,
        proofs_delivered: 0,
        false_drops: 0,
        budget: cfg.budget,
        samples: 0,
        budget_breaches: 0,
        hwm: StateSize::default(),
        audit_truncated: 0,
        audit_appended: 0,
        replay_checked: 0,
        replay_decision_mismatches: 0,
        replay_state_mismatches: 0,
        stats: ProxyStats::default(),
    };
    // One trained signature set for the whole fleet: training is per
    // deployment, not per home, and sharing keeps the 500-home smoke off
    // the corpus generator's hot path.
    let sigs = SignatureSet::learn(
        &fingerprint_corpus(cfg.seed ^ 0xf1a7),
        soak_matcher().evidence_window,
    );
    for home in 0..cfg.homes {
        let mut sim = HomeSim::new(cfg, home, &sigs);
        let replay = cfg.replay_every > 0 && home % cfg.replay_every == 0 && cfg.days > 1;
        for day in 0..cfg.days {
            if replay && day == cfg.days / 2 {
                if sim.begin_shadow() {
                    report.replay_checked += 1;
                } else {
                    report.replay_state_mismatches += 1;
                }
            }
            sim.run_day(day, &mut |s| {
                report.samples += 1;
                report.hwm = report.hwm.max_fields(s);
                if s.total() > cfg.budget {
                    report.budget_breaches += 1;
                }
                if let Some(m) = metrics {
                    m.rules.sample(s.rules as i64);
                    m.quarantine_records.sample(s.quarantine_records as i64);
                    m.quarantine_held.sample(s.quarantine_held as i64);
                    m.audit_entries.sample(s.audit_entries as i64);
                }
            });
        }
        if let Some(ok) = sim.shadow_matches() {
            if !ok {
                report.replay_state_mismatches += 1;
            }
        }
        report.replay_decision_mismatches += sim.replay_decision_mismatches;
        report.packets += sim.packets;
        report.manual_events += sim.manual_events;
        report.proofs_delivered += sim.proofs_delivered;
        report.false_drops += sim.false_drops;
        let (trunc, appended) = sim.audit_totals();
        report.audit_truncated += trunc;
        report.audit_appended += appended;
        report.stats += sim.stats();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down capped leg that still runs every mechanism: two
    /// weeks crossed (rotation fires twice), replay lockstep on, caps
    /// under pressure daily.
    fn tiny(seed: u64) -> LongSoakConfig {
        LongSoakConfig {
            homes: 4,
            days: 15,
            replay_every: 2,
            ..LongSoakConfig::quick(seed)
        }
    }

    #[test]
    fn capped_soak_stays_inside_budget_with_zero_false_drops() {
        let report = run_long_soak(&tiny(42), None);
        assert!(report.passed(), "{report:?}");
        assert_eq!(report.false_drops, 0, "{report:?}");
        assert_eq!(report.budget_breaches, 0, "{report:?}");
        // Every cap must have been exercised, not merely configured.
        assert_eq!(report.hwm.rules, 8, "rule cap never reached: {report:?}");
        assert!(report.hwm.rule_ghosts > 0, "no eviction ghosts: {report:?}");
        assert_eq!(
            report.hwm.quarantine_records, 4,
            "record cap never reached: {report:?}"
        );
        assert!(
            report.audit_truncated > 0,
            "audit never truncated: {report:?}"
        );
        assert!(report.hwm.audit_entries <= 128, "{report:?}");
        assert!(
            report.stats.quarantine_expired > 0,
            "no demotions: {report:?}"
        );
        assert!(report.replay_checked > 0, "replay leg skipped: {report:?}");
        assert!(report.proofs_delivered > 0);
        // The fingerprint gate ran under the budget: stranger evidence
        // was live at some sample, and never past its FIFO caps (8
        // tracked + 16 sealed).
        assert!(
            report.hwm.fingerprint_evidence > 0,
            "gate never held evidence: {report:?}"
        );
        assert!(report.hwm.fingerprint_evidence <= 24, "{report:?}");
    }

    #[test]
    fn uncapped_soak_breaches_the_same_budget() {
        let negative = LongSoakConfig {
            homes: 2,
            ..LongSoakConfig::negative(42)
        };
        let report = run_long_soak(&negative, None);
        assert!(
            report.budget_breaches > 0,
            "negative control failed to breach: {report:?}"
        );
        assert!(report.hwm.rules > 8, "{report:?}");
        assert!(report.hwm.quarantine_records > 4, "{report:?}");
        assert!(report.hwm.audit_entries > 128, "{report:?}");
        assert_eq!(report.audit_truncated, 0, "{report:?}");
        // Unbounded growth still must not drop proofed traffic.
        assert_eq!(report.false_drops, 0, "{report:?}");
    }

    #[test]
    fn long_soak_is_deterministic() {
        let a = run_long_soak(&tiny(7), None);
        let b = run_long_soak(&tiny(7), None);
        assert_eq!(a, b);
    }

    #[test]
    fn state_metrics_track_worst_home() {
        let registry = MetricRegistry::new();
        let metrics = StateMetrics::new(&registry);
        let cfg = LongSoakConfig {
            homes: 2,
            days: 3,
            replay_every: 0,
            ..LongSoakConfig::quick(1)
        };
        let report = run_long_soak(&cfg, Some(&metrics));
        assert_eq!(metrics.rules.high_water(), report.hwm.rules as i64);
        assert_eq!(
            metrics.quarantine_records.high_water(),
            report.hwm.quarantine_records as i64
        );
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_state_rules_hwm"));
    }
}
