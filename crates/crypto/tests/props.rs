//! Property tests for the crypto primitives.

use fiat_crypto::{aead, chacha20, hkdf::Hkdf, HmacSha256, KeyPurpose, Sha256, TeeKeystore};
use proptest::prelude::*;

proptest! {
    /// SHA-256 streaming at arbitrary chunk boundaries equals one-shot.
    #[test]
    fn sha256_chunking_invariant(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        cuts in prop::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut cut_points: Vec<usize> = cuts
            .iter()
            .map(|&c| if data.is_empty() { 0 } else { c % data.len().max(1) })
            .collect();
        cut_points.sort_unstable();
        cut_points.dedup();
        let mut h = Sha256::new();
        let mut prev = 0;
        for &c in &cut_points {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// HMAC verification accepts the real tag and rejects any 1-bit flip
    /// of data, key, or tag.
    #[test]
    fn hmac_bitflip_rejection(
        key in prop::collection::vec(any::<u8>(), 1..80),
        data in prop::collection::vec(any::<u8>(), 0..256),
        flip in any::<usize>(),
    ) {
        let tag = HmacSha256::mac(&key, &data);
        prop_assert!(HmacSha256::verify(&key, &data, &tag));

        let mut bad_tag = tag;
        bad_tag[flip % 32] ^= 1 << (flip % 8);
        prop_assert!(!HmacSha256::verify(&key, &data, &bad_tag));

        let mut bad_key = key.clone();
        let i = flip % bad_key.len();
        bad_key[i] ^= 1 << (flip % 8);
        prop_assert!(!HmacSha256::verify(&bad_key, &data, &tag));

        if !data.is_empty() {
            let mut bad_data = data.clone();
            let i = flip % bad_data.len();
            bad_data[i] ^= 1 << (flip % 8);
            prop_assert!(!HmacSha256::verify(&key, &bad_data, &tag));
        }
    }

    /// HKDF outputs are deterministic, length-exact, and prefix-consistent.
    #[test]
    fn hkdf_prefix_consistency(
        salt in prop::collection::vec(any::<u8>(), 0..32),
        ikm in prop::collection::vec(any::<u8>(), 1..64),
        info in prop::collection::vec(any::<u8>(), 0..32),
        len in 1usize..200,
    ) {
        let hk = Hkdf::extract(&salt, &ikm);
        let mut long = vec![0u8; len];
        hk.expand(&info, &mut long);
        let mut short = vec![0u8; len / 2];
        hk.expand(&info, &mut short);
        prop_assert_eq!(&long[..len / 2], &short[..]);
    }

    /// ChaCha20 is an involution under the same key/nonce/counter.
    #[test]
    fn chacha20_involution(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        counter in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut buf = data.clone();
        chacha20::xor_in_place(&key, counter, &nonce, &mut buf);
        chacha20::xor_in_place(&key, counter, &nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// AEAD under different nonces never produces identical ciphertexts
    /// for the same plaintext (keystream reuse detector).
    #[test]
    fn aead_nonce_separation(
        key in prop::array::uniform32(any::<u8>()),
        n1 in prop::array::uniform12(any::<u8>()),
        n2 in prop::array::uniform12(any::<u8>()),
        data in prop::collection::vec(any::<u8>(), 1..128),
    ) {
        prop_assume!(n1 != n2);
        let c1 = aead::seal(&key, &n1, b"", &data);
        let c2 = aead::seal(&key, &n2, b"", &data);
        prop_assert_ne!(c1, c2);
    }

    /// Keystore sign/verify across arbitrary derivation paths.
    #[test]
    fn keystore_derivation_consistency(
        root in prop::array::uniform32(any::<u8>()),
        info in prop::collection::vec(any::<u8>(), 0..32),
        msg in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let a = TeeKeystore::new();
        let b = TeeKeystore::new();
        let ra = a.import(root, KeyPurpose::Sign);
        let rb = b.import(root, KeyPurpose::Sign);
        let da = a.derive(ra, &info, KeyPurpose::Sign).unwrap();
        let db = b.derive(rb, &info, KeyPurpose::Sign).unwrap();
        let tag = a.sign(da, &msg).unwrap();
        prop_assert!(b.verify(db, &msg, &tag).unwrap());
    }
}
