//! From-scratch cryptographic primitives for FIAT.
//!
//! FIAT's client app signs and encrypts sensor evidence with a key held in
//! the phone's trusted execution environment, and ships it to the IoT proxy
//! over an encrypted QUIC-like channel. This crate provides everything that
//! channel and keystore need, implemented from the specifications:
//!
//! - [`sha256`]: FIPS 180-4 SHA-256.
//! - [`hmac`]: RFC 2104 HMAC-SHA256.
//! - [`hkdf`]: RFC 5869 HKDF (extract-and-expand).
//! - [`chacha20`]: RFC 8439 ChaCha20 stream cipher.
//! - [`poly1305`]: RFC 8439 Poly1305 one-time authenticator.
//! - [`aead`]: RFC 8439 ChaCha20-Poly1305 AEAD.
//! - [`keystore`]: a model of a hardware-backed keystore (Android TEE /
//!   SGX enclave) with sealed keys that never leave the store.
//!
//! All implementations are pure, deterministic, and allocation-light; they
//! are *not* hardened against side channels beyond constant-time tag
//! comparison, which is sufficient for a research reproduction.

pub mod aead;
pub mod chacha20;
pub mod ct;
pub mod hkdf;
pub mod hmac;
pub mod keystore;
pub mod poly1305;
pub mod sha256;

pub use aead::{open, seal, AeadError, KEY_LEN, NONCE_LEN, TAG_LEN};
pub use hkdf::Hkdf;
pub use hmac::HmacSha256;
pub use keystore::{KeyHandle, KeyPurpose, KeystoreError, TeeKeystore};
pub use sha256::Sha256;
