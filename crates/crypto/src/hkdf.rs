//! HKDF per RFC 5869, instantiated with HMAC-SHA256.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// An HKDF pseudo-random key ready for expansion.
pub struct Hkdf {
    prk: [u8; DIGEST_LEN],
}

impl Hkdf {
    /// HKDF-Extract: derive a PRK from input keying material and a salt.
    pub fn extract(salt: &[u8], ikm: &[u8]) -> Self {
        Hkdf {
            prk: HmacSha256::mac(salt, ikm),
        }
    }

    /// Construct directly from a PRK (e.g. a pre-shared pairing key).
    pub fn from_prk(prk: [u8; DIGEST_LEN]) -> Self {
        Hkdf { prk }
    }

    /// HKDF-Expand: fill `okm` with output keying material bound to `info`.
    ///
    /// # Panics
    /// Panics if `okm.len() > 255 * 32` (RFC 5869 limit).
    pub fn expand(&self, info: &[u8], okm: &mut [u8]) {
        assert!(okm.len() <= 255 * DIGEST_LEN, "HKDF output too long");
        let mut t: Vec<u8> = Vec::new();
        let mut offset = 0;
        let mut counter = 1u8;
        while offset < okm.len() {
            let mut h = HmacSha256::new(&self.prk);
            h.update(&t);
            h.update(info);
            h.update(&[counter]);
            let block = h.finalize();
            let take = (okm.len() - offset).min(DIGEST_LEN);
            okm[offset..offset + take].copy_from_slice(&block[..take]);
            t = block.to_vec();
            offset += take;
            counter += 1;
        }
    }

    /// Convenience: extract then expand into a fixed-size array.
    pub fn derive<const N: usize>(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; N] {
        let mut out = [0u8; N];
        Hkdf::extract(salt, ikm).expand(info, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let hk = Hkdf::extract(&salt, &ikm);
        assert_eq!(
            hex(&hk.prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        hk.expand(&info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0b; 22];
        let hk = Hkdf::extract(&[], &ikm);
        let mut okm = [0u8; 42];
        hk.expand(&[], &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn distinct_infos_give_distinct_keys() {
        let hk = Hkdf::extract(b"salt", b"ikm");
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        hk.expand(b"client", &mut a);
        hk.expand(b"server", &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn multi_block_expansion_is_consistent_prefix() {
        let hk = Hkdf::extract(b"s", b"k");
        let mut long = [0u8; 100];
        hk.expand(b"i", &mut long);
        let mut short = [0u8; 32];
        hk.expand(b"i", &mut short);
        assert_eq!(&long[..32], &short[..]);
    }
}
