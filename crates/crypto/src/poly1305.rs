//! Poly1305 one-time authenticator per RFC 8439 §2.5.
//!
//! Arithmetic is done over 2^130 - 5 using five 26-bit limbs in `u32`,
//! with `u64` intermediate products — the classic "donna" layout.

/// Poly1305 key length (r ‖ s) in bytes.
pub const KEY_LEN: usize = 32;
/// Poly1305 tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Incremental Poly1305 MAC state.
pub struct Poly1305 {
    r: [u32; 5],
    s: [u32; 4],
    acc: [u32; 5],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Initialize from a 32-byte one-time key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // Clamp r per RFC 8439 §2.5.1, then split into 26-bit limbs.
        let t0 = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
        let t1 = u32::from_le_bytes([key[4], key[5], key[6], key[7]]);
        let t2 = u32::from_le_bytes([key[8], key[9], key[10], key[11]]);
        let t3 = u32::from_le_bytes([key[12], key[13], key[14], key[15]]);
        let r = [
            t0 & 0x3ffffff,
            ((t0 >> 26) | (t1 << 6)) & 0x3ffff03,
            ((t1 >> 20) | (t2 << 12)) & 0x3ffc0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x3f03fff,
            (t3 >> 8) & 0x00fffff,
        ];
        let s = [
            u32::from_le_bytes([key[16], key[17], key[18], key[19]]),
            u32::from_le_bytes([key[20], key[21], key[22], key[23]]),
            u32::from_le_bytes([key[24], key[25], key[26], key[27]]),
            u32::from_le_bytes([key[28], key[29], key[30], key[31]]),
        ];
        Poly1305 {
            r,
            s,
            acc: [0; 5],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, false);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.process_block(&block, false);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn process_block(&mut self, block: &[u8; 16], partial: bool) {
        let t0 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        let t1 = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let t2 = u32::from_le_bytes([block[8], block[9], block[10], block[11]]);
        let t3 = u32::from_le_bytes([block[12], block[13], block[14], block[15]]);
        let hibit: u32 = if partial { 0 } else { 1 << 24 };

        let mut h = self.acc;
        h[0] = h[0].wrapping_add(t0 & 0x3ffffff);
        h[1] = h[1].wrapping_add(((t0 >> 26) | (t1 << 6)) & 0x3ffffff);
        h[2] = h[2].wrapping_add(((t1 >> 20) | (t2 << 12)) & 0x3ffffff);
        h[3] = h[3].wrapping_add(((t2 >> 14) | (t3 << 18)) & 0x3ffffff);
        h[4] = h[4].wrapping_add((t3 >> 8) | hibit);

        // h *= r (mod 2^130 - 5): schoolbook with 5*r folding.
        let r = self.r;
        let s1 = r[1] * 5;
        let s2 = r[2] * 5;
        let s3 = r[3] * 5;
        let s4 = r[4] * 5;
        let h64: [u64; 5] = [
            h[0] as u64,
            h[1] as u64,
            h[2] as u64,
            h[3] as u64,
            h[4] as u64,
        ];
        let d0 = h64[0] * r[0] as u64
            + h64[1] * s4 as u64
            + h64[2] * s3 as u64
            + h64[3] * s2 as u64
            + h64[4] * s1 as u64;
        let d1 = h64[0] * r[1] as u64
            + h64[1] * r[0] as u64
            + h64[2] * s4 as u64
            + h64[3] * s3 as u64
            + h64[4] * s2 as u64;
        let d2 = h64[0] * r[2] as u64
            + h64[1] * r[1] as u64
            + h64[2] * r[0] as u64
            + h64[3] * s4 as u64
            + h64[4] * s3 as u64;
        let d3 = h64[0] * r[3] as u64
            + h64[1] * r[2] as u64
            + h64[2] * r[1] as u64
            + h64[3] * r[0] as u64
            + h64[4] * s4 as u64;
        let d4 = h64[0] * r[4] as u64
            + h64[1] * r[3] as u64
            + h64[2] * r[2] as u64
            + h64[3] * r[1] as u64
            + h64[4] * r[0] as u64;

        // Carry propagation.
        let mut c: u64;
        let mut d = [d0, d1, d2, d3, d4];
        c = d[0] >> 26;
        d[0] &= 0x3ffffff;
        d[1] += c;
        c = d[1] >> 26;
        d[1] &= 0x3ffffff;
        d[2] += c;
        c = d[2] >> 26;
        d[2] &= 0x3ffffff;
        d[3] += c;
        c = d[3] >> 26;
        d[3] &= 0x3ffffff;
        d[4] += c;
        c = d[4] >> 26;
        d[4] &= 0x3ffffff;
        d[0] += c * 5;
        c = d[0] >> 26;
        d[0] &= 0x3ffffff;
        d[1] += c;

        self.acc = [
            d[0] as u32,
            d[1] as u32,
            d[2] as u32,
            d[3] as u32,
            d[4] as u32,
        ];
    }

    /// Produce the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Final partial block: append 0x01 then zero-pad; no high bit.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, true);
        }

        let mut h = self.acc;
        // Full carry.
        let mut c: u32;
        c = h[1] >> 26;
        h[1] &= 0x3ffffff;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= 0x3ffffff;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= 0x3ffffff;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= 0x3ffffff;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x3ffffff;
        h[1] += c;

        // Compute h + -p (i.e. h - (2^130 - 5)) and select.
        let mut g = [0u32; 5];
        c = 5;
        for i in 0..5 {
            g[i] = h[i].wrapping_add(c);
            c = g[i] >> 26;
            g[i] &= 0x3ffffff;
        }
        g[4] = g[4].wrapping_sub(1 << 26);

        let mask = (g[4] >> 31).wrapping_sub(1); // all-ones if h >= p
        for i in 0..5 {
            h[i] = (h[i] & !mask) | (g[i] & mask);
        }

        // Serialize h into 128 bits little-endian.
        let h0 = h[0] | (h[1] << 26);
        let h1 = (h[1] >> 6) | (h[2] << 20);
        let h2 = (h[2] >> 12) | (h[3] << 14);
        let h3 = (h[3] >> 18) | (h[4] << 8);

        // Add s mod 2^128.
        let mut f: u64;
        let mut out = [0u8; TAG_LEN];
        f = h0 as u64 + self.s[0] as u64;
        out[0..4].copy_from_slice(&(f as u32).to_le_bytes());
        f = h1 as u64 + self.s[1] as u64 + (f >> 32);
        out[4..8].copy_from_slice(&(f as u32).to_le_bytes());
        f = h2 as u64 + self.s[2] as u64 + (f >> 32);
        out[8..12].copy_from_slice(&(f as u32).to_le_bytes());
        f = h3 as u64 + self.s[3] as u64 + (f >> 32);
        out[12..16].copy_from_slice(&(f as u32).to_le_bytes());
        out
    }

    /// One-shot MAC.
    pub fn mac(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Poly1305::new(key);
        p.update(data);
        p.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_vector() {
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let msg = b"Cryptographic Forum Research Group";
        assert_eq!(
            hex(&Poly1305::mac(&key, msg)),
            "a8061dc1305136c6c22b8baf0c0127a9"
        );
    }

    #[test]
    fn empty_message() {
        // MAC of empty message is just s.
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&[9u8; 16]);
        assert_eq!(Poly1305::mac(&key, b""), [9u8; 16]);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = [0x42u8; 32];
        let data: Vec<u8> = (0..100).collect();
        for split in [0usize, 1, 15, 16, 17, 31, 32, 50, 99, 100] {
            let mut p = Poly1305::new(&key);
            p.update(&data[..split]);
            p.update(&data[split..]);
            assert_eq!(p.finalize(), Poly1305::mac(&key, &data), "split {split}");
        }
    }

    #[test]
    fn different_keys_different_tags() {
        let k1 = [1u8; 32];
        let k2 = [2u8; 32];
        assert_ne!(Poly1305::mac(&k1, b"msg"), Poly1305::mac(&k2, b"msg"));
    }
}
