//! HMAC-SHA256 per RFC 2104 / FIPS 198-1.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Create an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = Sha256::digest(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the 32-byte tag.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// One-shot MAC.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verify a tag in constant time.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        let expect = Self::mac(key, data);
        crate::ct::ct_eq(&expect, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&HmacSha256::mac(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&HmacSha256::mac(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(&HmacSha256::mac(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = HmacSha256::mac(b"k", b"msg");
        assert!(HmacSha256::verify(b"k", b"msg", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"msg", &bad));
        assert!(!HmacSha256::verify(b"k2", b"msg", &tag));
        assert!(!HmacSha256::verify(b"k", b"msg2", &tag));
        assert!(!HmacSha256::verify(b"k", b"msg", &tag[..16]));
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = HmacSha256::new(b"key");
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finalize(), HmacSha256::mac(b"key", b"part one part two"));
    }
}
