//! Constant-time helpers.

/// Compare two byte slices without early exit on mismatch.
///
/// Returns `false` immediately if lengths differ (length is public for tags),
/// otherwise the comparison time is independent of where bytes differ.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(!ct_eq(b"\x00", b"\x01"));
    }
}
