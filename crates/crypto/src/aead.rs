//! ChaCha20-Poly1305 AEAD per RFC 8439 §2.8.

use crate::chacha20;
use crate::ct::ct_eq;
use crate::poly1305::Poly1305;

/// AEAD key length in bytes.
pub const KEY_LEN: usize = 32;
/// AEAD nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Authentication tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Errors returned by [`open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// Ciphertext shorter than a tag.
    Truncated,
    /// Tag verification failed: forged or corrupted message, or wrong key.
    BadTag,
}

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AeadError::Truncated => write!(f, "ciphertext shorter than authentication tag"),
            AeadError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for AeadError {}

fn poly_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let block0 = chacha20::block(key, 0, nonce);
    let mut pk = [0u8; 32];
    pk.copy_from_slice(&block0[..32]);
    pk
}

fn compute_tag(pkey: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(pkey);
    mac.update(aad);
    mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
    mac.update(ciphertext);
    mac.update(&[0u8; 16][..(16 - ciphertext.len() % 16) % 16]);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

/// Encrypt `plaintext` with associated data `aad`; returns ciphertext ‖ tag.
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    chacha20::xor_in_place(key, 1, nonce, &mut out);
    let tag = compute_tag(&poly_key(key, nonce), aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// Verify and decrypt ciphertext ‖ tag produced by [`seal`].
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, AeadError> {
    if sealed.len() < TAG_LEN {
        return Err(AeadError::Truncated);
    }
    let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let expect = compute_tag(&poly_key(key, nonce), aad, ct);
    if !ct_eq(&expect, tag) {
        return Err(AeadError::BadTag);
    }
    let mut out = ct.to_vec();
    chacha20::xor_in_place(key, 1, nonce, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let key: [u8; 32] = {
            let mut k = [0u8; 32];
            for (i, b) in k.iter_mut().enumerate() {
                *b = 0x80 + i as u8;
            }
            k
        };
        let nonce: [u8; 12] = [
            0x07, 0, 0, 0, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
        ];
        let aad: [u8; 12] = [
            0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let sealed = seal(&key, &nonce, &aad, plaintext);
        assert_eq!(sealed.len(), plaintext.len() + TAG_LEN);
        assert_eq!(hex(&sealed[..16]), "d31a8d34648e60db7b86afbc53ef7ec2");
        assert_eq!(
            hex(&sealed[sealed.len() - TAG_LEN..]),
            "1ae10b594f09e26a7e902ecbd0600691"
        );
        let opened = open(&key, &nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn tamper_detection() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let sealed = seal(&key, &nonce, b"aad", b"secret");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert_eq!(open(&key, &nonce, b"aad", &bad), Err(AeadError::BadTag));
        }
        // AAD tamper.
        assert_eq!(open(&key, &nonce, b"axd", &sealed), Err(AeadError::BadTag));
        // Wrong key / nonce.
        assert_eq!(
            open(&[3u8; 32], &nonce, b"aad", &sealed),
            Err(AeadError::BadTag)
        );
        assert_eq!(
            open(&key, &[9u8; 12], b"aad", &sealed),
            Err(AeadError::BadTag)
        );
    }

    #[test]
    fn truncated_input() {
        assert_eq!(
            open(&[0; 32], &[0; 12], b"", &[0u8; 15]),
            Err(AeadError::Truncated)
        );
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let key = [5u8; 32];
        let nonce = [6u8; 12];
        let sealed = seal(&key, &nonce, b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(&key, &nonce, b"", &sealed).unwrap(), b"");
    }
}
