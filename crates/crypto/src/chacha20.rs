//! ChaCha20 stream cipher per RFC 8439 §2.

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce length in bytes (IETF 96-bit variant).
pub const NONCE_LEN: usize = 12;

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn init_state(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut s = [0u32; 16];
    s[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        s[4 + i] = u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    s[12] = counter;
    for i in 0..3 {
        s[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    s
}

/// Produce one 64-byte ChaCha20 keystream block.
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let initial = init_state(key, counter, nonce);
    let mut s = initial;
    for _ in 0..10 {
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = s[i].wrapping_add(initial[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XOR `data` in place with the ChaCha20 keystream starting at block `counter`.
///
/// Encryption and decryption are the same operation.
pub fn xor_in_place(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let ks = block(key, counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let ks = block(&key, 1, &nonce);
        assert_eq!(
            hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        xor_in_place(&key, 1, &nonce, &mut data);
        assert_eq!(
            hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(hex(&data[96..114]), "5af90bbf74a35be6b40b8eedf2785e42874d");
    }

    #[test]
    fn roundtrip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let plain: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        let mut data = plain.clone();
        xor_in_place(&key, 0, &nonce, &mut data);
        assert_ne!(data, plain);
        xor_in_place(&key, 0, &nonce, &mut data);
        assert_eq!(data, plain);
    }

    #[test]
    fn counter_advances_across_blocks() {
        // Encrypting 128 bytes at counter 0 equals two 64-byte encryptions at
        // counters 0 and 1.
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut whole = vec![0u8; 128];
        xor_in_place(&key, 0, &nonce, &mut whole);
        let mut first = vec![0u8; 64];
        let mut second = vec![0u8; 64];
        xor_in_place(&key, 0, &nonce, &mut first);
        xor_in_place(&key, 1, &nonce, &mut second);
        assert_eq!(&whole[..64], &first[..]);
        assert_eq!(&whole[64..], &second[..]);
    }
}
