//! A model of a hardware-backed keystore (Android TEE / SGX enclave).
//!
//! FIAT stores the pre-shared pairing key in the phone's trusted execution
//! environment and in the proxy's SGX enclave. The defining property this
//! model preserves is that *key material never leaves the store*: callers
//! hold an opaque [`KeyHandle`] and ask the store to MAC, seal, or open on
//! their behalf. Purpose binding (a signing key cannot encrypt) mirrors
//! Android keystore semantics.

use parking_lot::Mutex;
use std::collections::HashMap;

use crate::aead;
use crate::hkdf::Hkdf;
use crate::hmac::HmacSha256;

/// Opaque reference to a key sealed inside the keystore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyHandle(u64);

/// What a sealed key is allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyPurpose {
    /// HMAC signing/verification only.
    Sign,
    /// AEAD seal/open only.
    Encrypt,
}

/// Errors returned by keystore operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeystoreError {
    /// The handle does not refer to a key in this store.
    UnknownHandle,
    /// The key exists but its purpose forbids the requested operation.
    WrongPurpose,
    /// AEAD open failed (forged or corrupted ciphertext).
    BadCiphertext,
}

impl std::fmt::Display for KeystoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeystoreError::UnknownHandle => write!(f, "unknown key handle"),
            KeystoreError::WrongPurpose => write!(f, "key purpose does not permit operation"),
            KeystoreError::BadCiphertext => write!(f, "ciphertext failed authentication"),
        }
    }
}

impl std::error::Error for KeystoreError {}

struct SealedKey {
    material: [u8; 32],
    purpose: KeyPurpose,
}

/// Hardware-backed keystore model. Thread-safe; keys are write-once.
#[derive(Default)]
pub struct TeeKeystore {
    inner: Mutex<StoreInner>,
}

#[derive(Default)]
struct StoreInner {
    keys: HashMap<u64, SealedKey>,
    next_id: u64,
}

impl TeeKeystore {
    /// Create an empty keystore.
    pub fn new() -> Self {
        Self::default()
    }

    /// Import raw key material. The material is consumed by the store; only
    /// a handle escapes.
    pub fn import(&self, material: [u8; 32], purpose: KeyPurpose) -> KeyHandle {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.keys.insert(id, SealedKey { material, purpose });
        KeyHandle(id)
    }

    /// Derive a sub-key from an existing key via HKDF and seal it under the
    /// given purpose. This is how the pairing key spawns per-session keys.
    pub fn derive(
        &self,
        parent: KeyHandle,
        info: &[u8],
        purpose: KeyPurpose,
    ) -> Result<KeyHandle, KeystoreError> {
        let derived: [u8; 32] = {
            let inner = self.inner.lock();
            let key = inner
                .keys
                .get(&parent.0)
                .ok_or(KeystoreError::UnknownHandle)?;
            Hkdf::derive(b"fiat-keystore", &key.material, info)
        };
        Ok(self.import(derived, purpose))
    }

    /// HMAC-SHA256 over `data` with a Sign-purpose key.
    pub fn sign(&self, handle: KeyHandle, data: &[u8]) -> Result<[u8; 32], KeystoreError> {
        let inner = self.inner.lock();
        let key = inner
            .keys
            .get(&handle.0)
            .ok_or(KeystoreError::UnknownHandle)?;
        if key.purpose != KeyPurpose::Sign {
            return Err(KeystoreError::WrongPurpose);
        }
        Ok(HmacSha256::mac(&key.material, data))
    }

    /// Verify an HMAC tag with a Sign-purpose key.
    pub fn verify(
        &self,
        handle: KeyHandle,
        data: &[u8],
        tag: &[u8],
    ) -> Result<bool, KeystoreError> {
        let inner = self.inner.lock();
        let key = inner
            .keys
            .get(&handle.0)
            .ok_or(KeystoreError::UnknownHandle)?;
        if key.purpose != KeyPurpose::Sign {
            return Err(KeystoreError::WrongPurpose);
        }
        Ok(HmacSha256::verify(&key.material, data, tag))
    }

    /// AEAD-seal `plaintext` with an Encrypt-purpose key.
    pub fn seal(
        &self,
        handle: KeyHandle,
        nonce: &[u8; aead::NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
    ) -> Result<Vec<u8>, KeystoreError> {
        let inner = self.inner.lock();
        let key = inner
            .keys
            .get(&handle.0)
            .ok_or(KeystoreError::UnknownHandle)?;
        if key.purpose != KeyPurpose::Encrypt {
            return Err(KeystoreError::WrongPurpose);
        }
        Ok(aead::seal(&key.material, nonce, aad, plaintext))
    }

    /// AEAD-open ciphertext sealed by [`TeeKeystore::seal`].
    pub fn open(
        &self,
        handle: KeyHandle,
        nonce: &[u8; aead::NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, KeystoreError> {
        let inner = self.inner.lock();
        let key = inner
            .keys
            .get(&handle.0)
            .ok_or(KeystoreError::UnknownHandle)?;
        if key.purpose != KeyPurpose::Encrypt {
            return Err(KeystoreError::WrongPurpose);
        }
        aead::open(&key.material, nonce, aad, sealed).map_err(|_| KeystoreError::BadCiphertext)
    }

    /// Number of keys sealed in the store.
    pub fn len(&self) -> usize {
        self.inner.lock().keys.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_and_verify_roundtrip() {
        let store = TeeKeystore::new();
        let h = store.import([7u8; 32], KeyPurpose::Sign);
        let tag = store.sign(h, b"evidence").unwrap();
        assert!(store.verify(h, b"evidence", &tag).unwrap());
        assert!(!store.verify(h, b"tampered", &tag).unwrap());
    }

    #[test]
    fn seal_and_open_roundtrip() {
        let store = TeeKeystore::new();
        let h = store.import([9u8; 32], KeyPurpose::Encrypt);
        let nonce = [1u8; 12];
        let ct = store.seal(h, &nonce, b"hdr", b"sensor data").unwrap();
        assert_eq!(store.open(h, &nonce, b"hdr", &ct).unwrap(), b"sensor data");
        let mut bad = ct.clone();
        bad[0] ^= 1;
        assert_eq!(
            store.open(h, &nonce, b"hdr", &bad),
            Err(KeystoreError::BadCiphertext)
        );
    }

    #[test]
    fn purpose_binding_enforced() {
        let store = TeeKeystore::new();
        let sign = store.import([1u8; 32], KeyPurpose::Sign);
        let enc = store.import([1u8; 32], KeyPurpose::Encrypt);
        assert_eq!(
            store.seal(sign, &[0; 12], b"", b"x"),
            Err(KeystoreError::WrongPurpose)
        );
        assert_eq!(store.sign(enc, b"x"), Err(KeystoreError::WrongPurpose));
    }

    #[test]
    fn unknown_handle_rejected() {
        let store = TeeKeystore::new();
        let h = store.import([0u8; 32], KeyPurpose::Sign);
        let other = TeeKeystore::new();
        assert_eq!(other.sign(h, b"x"), Err(KeystoreError::UnknownHandle));
    }

    #[test]
    fn derived_keys_differ_by_info() {
        let store = TeeKeystore::new();
        let root = store.import([3u8; 32], KeyPurpose::Sign);
        let a = store.derive(root, b"client", KeyPurpose::Sign).unwrap();
        let b = store.derive(root, b"server", KeyPurpose::Sign).unwrap();
        assert_ne!(store.sign(a, b"m").unwrap(), store.sign(b, b"m").unwrap());
        // Same info re-derives the same key material.
        let a2 = store.derive(root, b"client", KeyPurpose::Sign).unwrap();
        assert_eq!(store.sign(a, b"m").unwrap(), store.sign(a2, b"m").unwrap());
    }

    #[test]
    fn two_stores_agree_on_shared_secret() {
        // Pairing: both sides import the same pre-shared key and derive the
        // same session keys -> a tag made by one verifies at the other.
        let phone = TeeKeystore::new();
        let proxy = TeeKeystore::new();
        let psk = [0x44u8; 32];
        let hp = phone.import(psk, KeyPurpose::Sign);
        let hx = proxy.import(psk, KeyPurpose::Sign);
        let tag = phone.sign(hp, b"auth message").unwrap();
        assert!(proxy.verify(hx, b"auth message", &tag).unwrap());
    }
}
