//! Minimal QUIC-like secure channel for FIAT's auth messages.
//!
//! §5.3 picks QUIC for the phone → proxy channel because (a) 0-RTT/1-RTT
//! beats TCP+TLS setup latency, and (b) everything including transport
//! metadata is encrypted. This crate reproduces the properties FIAT's
//! evaluation relies on, not all of RFC 9000:
//!
//! - [`connection`]: PSK-based 1-RTT handshake with session-ticket
//!   issuance, 0-RTT resumption, and AEAD packet protection with
//!   monotonically increasing packet numbers.
//! - [`replay`]: the server-side anti-replay store. §5.3 notes 0-RTT is
//!   replayable in general, but a home proxy serves few devices and can
//!   afford to remember every 0-RTT packet it has accepted.
//!
//! Flight-count constants let the latency harness compose handshake cost
//! with link latency: 1-RTT spends one round trip before data; 0-RTT
//! carries data in the first flight.

pub mod connection;
pub mod replay;

pub use connection::{
    Client, ClientHello, Packet, QuicError, Server, ServerHello, ServerImage, ServerTelemetry,
    SessionTicket, ZeroRttPacket,
};
pub use replay::{InsertOutcome, ReplayEpochImage, ReplayImage, ReplayStore};

/// Network flights before application data flows, 1-RTT mode (one full
/// round trip: ClientHello out, ServerHello back, then data).
pub const ONE_RTT_FLIGHTS_BEFORE_DATA: u32 = 2;

/// Network flights before application data flows, 0-RTT mode (data rides
/// the first flight).
pub const ZERO_RTT_FLIGHTS_BEFORE_DATA: u32 = 0;
