//! Server-side 0-RTT anti-replay store, keyed by ticket epoch.
//!
//! §5.3: "given only few devices are authorized within a household, it is
//! feasible for the IoT proxy to keep a state of all previously held
//! connections, which would prevent a replay attack." We remember every
//! accepted (ticket, nonce) pair, with an optional capacity bound that
//! evicts the *oldest ticket wholesale* (never individual nonces — partial
//! eviction would re-open the replay window for that ticket).
//!
//! The store is partitioned by **ticket epoch** (the key-lifecycle
//! generation the ticket was issued under). The control plane retires old
//! epochs wholesale via [`retire_below`]: a retired epoch's entire nonce
//! history is dropped in one step, which is what bounds the store's
//! memory across key rotations — live state is at most
//! `live_epochs × max_tickets` ticket sets. Early data under a retired
//! epoch must be refused outright ([`is_retired`]); without its nonce
//! history a verbatim replay would look fresh, exactly the hazard the
//! per-ticket eviction watermark already guards inside one epoch.
//!
//! Callers that predate epochs use the epoch-0 convenience API
//! ([`check_and_insert`], [`contains`], [`is_stale`]); they behave
//! exactly as before rotation is ever exercised.
//!
//! [`retire_below`]: ReplayStore::retire_below
//! [`is_retired`]: ReplayStore::is_retired
//! [`check_and_insert`]: ReplayStore::check_and_insert
//! [`contains`]: ReplayStore::contains
//! [`is_stale`]: ReplayStore::is_stale

use std::collections::{BTreeMap, HashSet};

/// Per-epoch replay state: per-ticket sets of accepted early-data nonces
/// plus the eviction watermark for this epoch's capacity bound.
#[derive(Debug, Default, Clone)]
struct EpochState {
    seen: BTreeMap<u64, HashSet<u64>>,
    /// Highest ticket id ever evicted in this epoch. Tickets at or below
    /// this watermark have lost their nonce sets, so their early data can
    /// no longer be replay-checked and must be rejected wholesale via
    /// [`ReplayStore::is_stale_in`].
    evicted_watermark: Option<u64>,
}

impl EpochState {
    fn entries(&self) -> usize {
        self.seen.values().map(HashSet::len).sum()
    }
}

/// Outcome of recording a (ticket, nonce) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// `true` if the pair was fresh, `false` on a detected replay.
    pub fresh: bool,
    /// Nonce entries discarded by capacity eviction as a side effect
    /// (whole tickets evicted from the same epoch).
    pub evicted_entries: usize,
}

/// Replay store: per-epoch, per-ticket sets of accepted early-data
/// nonces.
#[derive(Debug, Default)]
pub struct ReplayStore {
    epochs: BTreeMap<u32, EpochState>,
    max_tickets: Option<usize>,
    /// Epochs strictly below this are retired: their nonce history is
    /// gone and early data under them is refused wholesale.
    retired_below: u32,
    /// Epochs retired over the store's lifetime (monotone).
    retired_count: u64,
}

impl ReplayStore {
    /// Unbounded store (fine for a household's handful of devices).
    pub fn new() -> Self {
        Self::default()
    }

    /// Store that retains at most `max_tickets` tickets *per epoch*,
    /// evicting oldest ticket ids first. Eviction discards a ticket's
    /// whole nonce set, so the caller MUST consult
    /// [`is_stale_in`](ReplayStore::is_stale_in) before
    /// `check_and_insert_in` and reject early data for evicted tickets
    /// outright — otherwise a replayed packet for an evicted ticket would
    /// look fresh.
    pub fn with_capacity(max_tickets: usize) -> Self {
        ReplayStore {
            max_tickets: Some(max_tickets.max(1)),
            ..ReplayStore::default()
        }
    }

    /// Record (ticket, nonce) under epoch 0; returns `true` if fresh.
    /// Pre-epoch convenience wrapper over
    /// [`check_and_insert_in`](ReplayStore::check_and_insert_in).
    pub fn check_and_insert(&mut self, ticket: u64, nonce: u64) -> bool {
        self.check_and_insert_in(0, ticket, nonce).fresh
    }

    /// Record (ticket, nonce) under `epoch`. A detected replay leaves the
    /// store untouched, and capacity eviction never removes the ticket
    /// just touched — evicting it would discard the nonce set recorded a
    /// moment ago and accept the next identical replay as fresh. The
    /// caller is responsible for refusing retired epochs first
    /// ([`is_retired`](ReplayStore::is_retired)); inserting into one
    /// would silently resurrect it.
    pub fn check_and_insert_in(&mut self, epoch: u32, ticket: u64, nonce: u64) -> InsertOutcome {
        if self.contains_in(epoch, ticket, nonce) {
            return InsertOutcome {
                fresh: false,
                evicted_entries: 0,
            };
        }
        let state = self.epochs.entry(epoch).or_default();
        state.seen.entry(ticket).or_default().insert(nonce);
        let mut evicted_entries = 0;
        if let Some(cap) = self.max_tickets {
            while state.seen.len() > cap {
                let oldest = *state
                    .seen
                    .keys()
                    .find(|&&t| t != ticket)
                    .expect("len > cap >= 1 implies another ticket exists");
                evicted_entries += state.seen.remove(&oldest).map_or(0, |s| s.len());
                state.evicted_watermark =
                    Some(state.evicted_watermark.map_or(oldest, |w| w.max(oldest)));
            }
        }
        InsertOutcome {
            fresh: true,
            evicted_entries,
        }
    }

    /// Whether a pair has been recorded under epoch 0.
    pub fn contains(&self, ticket: u64, nonce: u64) -> bool {
        self.contains_in(0, ticket, nonce)
    }

    /// Whether a pair has been recorded under `epoch`.
    pub fn contains_in(&self, epoch: u32, ticket: u64, nonce: u64) -> bool {
        self.epochs
            .get(&epoch)
            .and_then(|e| e.seen.get(&ticket))
            .is_some_and(|s| s.contains(&nonce))
    }

    /// Number of tickets tracked across all live epochs.
    pub fn tickets(&self) -> usize {
        self.epochs.values().map(|e| e.seen.len()).sum()
    }

    /// Accepted (ticket, nonce) entries tracked under `epoch`.
    pub fn entries_in(&self, epoch: u32) -> usize {
        self.epochs.get(&epoch).map_or(0, EpochState::entries)
    }

    /// Accepted (ticket, nonce) entries tracked across all live epochs.
    pub fn total_entries(&self) -> usize {
        self.epochs.values().map(EpochState::entries).sum()
    }

    /// Epochs holding live state, in increasing order.
    pub fn live_epochs(&self) -> Vec<u32> {
        self.epochs.keys().copied().collect()
    }

    /// Whether a ticket id under epoch 0 falls at or below the eviction
    /// watermark (pre-epoch convenience wrapper).
    pub fn is_stale(&self, ticket: u64) -> bool {
        self.is_stale_in(0, ticket)
    }

    /// Whether a ticket id falls at or below `epoch`'s eviction
    /// watermark: its nonce history is gone (or would sort below ids
    /// already discarded), so early data under it cannot be
    /// replay-checked. Tickets still tracked are never stale, whatever
    /// their id.
    pub fn is_stale_in(&self, epoch: u32, ticket: u64) -> bool {
        let Some(state) = self.epochs.get(&epoch) else {
            return false;
        };
        !state.seen.contains_key(&ticket) && state.evicted_watermark.is_some_and(|w| ticket <= w)
    }

    /// Whether `epoch` has been retired: its whole nonce history was
    /// dropped, so early data under it is refused wholesale.
    pub fn is_retired(&self, epoch: u32) -> bool {
        epoch < self.retired_below
    }

    /// The oldest epoch still served (everything below is retired).
    pub fn retired_below(&self) -> u32 {
        self.retired_below
    }

    /// Epochs retired over the store's lifetime.
    pub fn retired_count(&self) -> u64 {
        self.retired_count
    }

    /// Retire every epoch strictly below `min_live`, dropping its whole
    /// nonce history — this is the bounded-memory lever of the key
    /// lifecycle. Returns `(newly_retired, dropped)` where `dropped`
    /// lists `(epoch, entries)` for each epoch whose state was discarded
    /// (so callers can settle per-epoch gauges). Idempotent: retiring
    /// below an already-retired boundary is a no-op.
    pub fn retire_below(&mut self, min_live: u32) -> (u32, Vec<(u32, usize)>) {
        if min_live <= self.retired_below {
            return (0, Vec::new());
        }
        let newly = min_live - self.retired_below;
        self.retired_below = min_live;
        self.retired_count += u64::from(newly);
        let keep = self.epochs.split_off(&min_live);
        let dropped = std::mem::replace(&mut self.epochs, keep)
            .into_iter()
            .map(|(epoch, state)| (epoch, state.entries()))
            .collect();
        (newly, dropped)
    }

    /// Plain-data image of the store for snapshot/restore (sorted, so two
    /// equal stores produce identical images).
    pub fn to_image(&self) -> ReplayImage {
        ReplayImage {
            max_tickets: self.max_tickets,
            retired_below: self.retired_below,
            retired_count: self.retired_count,
            epochs: self
                .epochs
                .iter()
                .map(|(&epoch, state)| ReplayEpochImage {
                    epoch,
                    evicted_watermark: state.evicted_watermark,
                    entries: state
                        .seen
                        .iter()
                        .map(|(&t, nonces)| {
                            let mut ns: Vec<u64> = nonces.iter().copied().collect();
                            ns.sort_unstable();
                            (t, ns)
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Rebuild a store from an image produced by
    /// [`to_image`](ReplayStore::to_image).
    pub fn from_image(img: &ReplayImage) -> Self {
        ReplayStore {
            epochs: img
                .epochs
                .iter()
                .map(|e| {
                    (
                        e.epoch,
                        EpochState {
                            seen: e
                                .entries
                                .iter()
                                .map(|(t, ns)| (*t, ns.iter().copied().collect()))
                                .collect(),
                            evicted_watermark: e.evicted_watermark,
                        },
                    )
                })
                .collect(),
            max_tickets: img.max_tickets,
            retired_below: img.retired_below,
            retired_count: img.retired_count,
        }
    }
}

/// Plain-data image of one epoch's replay state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayEpochImage {
    /// The epoch.
    pub epoch: u32,
    /// The epoch's capacity-eviction watermark.
    pub evicted_watermark: Option<u64>,
    /// `(ticket, sorted nonces)` pairs in increasing ticket order.
    pub entries: Vec<(u64, Vec<u64>)>,
}

/// Plain-data image of a whole [`ReplayStore`] (carried inside a home
/// snapshot; this crate stays serde-free, the snapshot layer maps it).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayImage {
    /// Per-epoch ticket capacity, if bounded.
    pub max_tickets: Option<usize>,
    /// Epochs strictly below this are retired.
    pub retired_below: u32,
    /// Epochs retired over the store's lifetime.
    pub retired_count: u64,
    /// Live epochs in increasing order.
    pub epochs: Vec<ReplayEpochImage>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_then_replay() {
        let mut r = ReplayStore::new();
        assert!(r.check_and_insert(1, 10));
        assert!(!r.check_and_insert(1, 10));
        assert!(r.check_and_insert(1, 11));
        assert!(r.check_and_insert(2, 10)); // different ticket, same nonce
        assert!(r.contains(1, 10));
        assert!(!r.contains(3, 10));
    }

    #[test]
    fn capacity_evicts_oldest_ticket_wholesale() {
        let mut r = ReplayStore::with_capacity(2);
        r.check_and_insert(1, 1);
        r.check_and_insert(2, 1);
        r.check_and_insert(3, 1);
        assert_eq!(r.tickets(), 2);
        assert!(!r.contains(1, 1), "oldest ticket evicted");
        assert!(r.contains(2, 1));
        assert!(r.contains(3, 1));
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut r = ReplayStore::with_capacity(0);
        assert!(r.check_and_insert(1, 1));
        assert!(!r.check_and_insert(1, 1));
    }

    #[test]
    fn replayed_low_id_ticket_at_capacity_stays_rejected() {
        // Regression: at capacity, inserting a ticket id lower than every
        // tracked id used to evict the just-touched ticket itself, so the
        // identical 0-RTT packet replayed again was accepted as fresh.
        let mut r = ReplayStore::with_capacity(2);
        r.check_and_insert(5, 1);
        r.check_and_insert(6, 1);
        assert!(r.check_and_insert(1, 42), "first presentation is fresh");
        assert!(!r.check_and_insert(1, 42), "first replay rejected");
        assert!(!r.check_and_insert(1, 42), "second replay rejected");
        assert!(r.contains(1, 42));
        assert_eq!(r.tickets(), 2);
    }

    #[test]
    fn detected_replay_does_not_mutate_store() {
        let mut r = ReplayStore::with_capacity(2);
        r.check_and_insert(5, 1);
        r.check_and_insert(6, 1);
        assert!(!r.check_and_insert(5, 1));
        assert_eq!(r.tickets(), 2);
        assert!(r.contains(5, 1));
        assert!(r.contains(6, 1));
    }

    #[test]
    fn eviction_marks_ticket_stale() {
        let mut r = ReplayStore::with_capacity(2);
        r.check_and_insert(1, 1);
        r.check_and_insert(2, 1);
        assert!(!r.is_stale(1), "tracked tickets are not stale");
        r.check_and_insert(3, 1); // evicts ticket 1
        assert!(r.is_stale(1));
        assert!(!r.is_stale(2));
        assert!(!r.is_stale(3));
        // An id below the watermark that was never tracked is stale too:
        // it sorts below ids already discarded.
        assert!(r.is_stale(0));
        // Untracked ids above the watermark are merely unknown, not stale.
        assert!(!r.is_stale(9));
    }

    #[test]
    fn unbounded_store_never_goes_stale() {
        let mut r = ReplayStore::new();
        for t in 0..100 {
            r.check_and_insert(t, 0);
        }
        assert!(!r.is_stale(0));
        assert!(!r.is_stale(999));
    }

    #[test]
    fn many_nonces_per_ticket() {
        let mut r = ReplayStore::new();
        for n in 0..1000 {
            assert!(r.check_and_insert(7, n));
        }
        for n in 0..1000 {
            assert!(!r.check_and_insert(7, n));
        }
        assert_eq!(r.tickets(), 1);
    }

    // ---- epoch partitioning and retirement -----------------------------

    #[test]
    fn epochs_partition_replay_state() {
        let mut r = ReplayStore::new();
        assert!(r.check_and_insert_in(0, 1, 10).fresh);
        // Same (ticket, nonce) under a different epoch is a different
        // key: the early key differs, so this is fresh traffic.
        assert!(r.check_and_insert_in(1, 1, 10).fresh);
        assert!(!r.check_and_insert_in(0, 1, 10).fresh);
        assert!(!r.check_and_insert_in(1, 1, 10).fresh);
        assert!(r.contains_in(0, 1, 10));
        assert!(r.contains_in(1, 1, 10));
        assert!(!r.contains_in(2, 1, 10));
        assert_eq!(r.live_epochs(), vec![0, 1]);
        assert_eq!(r.entries_in(0), 1);
        assert_eq!(r.total_entries(), 2);
    }

    #[test]
    fn retirement_drops_whole_epochs_and_is_idempotent() {
        let mut r = ReplayStore::new();
        r.check_and_insert_in(0, 1, 1);
        r.check_and_insert_in(0, 2, 1);
        r.check_and_insert_in(1, 3, 1);
        r.check_and_insert_in(2, 4, 1);
        let (newly, dropped) = r.retire_below(2);
        assert_eq!(newly, 2);
        assert_eq!(dropped, vec![(0, 2), (1, 1)]);
        assert!(r.is_retired(0) && r.is_retired(1));
        assert!(!r.is_retired(2));
        assert_eq!(r.retired_count(), 2);
        assert_eq!(r.live_epochs(), vec![2]);
        // Idempotent: same or lower boundary retires nothing further.
        assert_eq!(r.retire_below(2), (0, Vec::new()));
        assert_eq!(r.retire_below(1), (0, Vec::new()));
        assert_eq!(r.retired_count(), 2);
    }

    #[test]
    fn capacity_is_per_epoch_and_retirement_bounds_memory() {
        // The bounded-memory contract of DESIGN §14's replay-layer risk:
        // per-epoch ticket capacity × a sliding window of live epochs.
        // Rotate through many epochs retiring all but the last two; live
        // state must never exceed 2 epochs × 2 tickets.
        let mut r = ReplayStore::with_capacity(2);
        for epoch in 0u32..50 {
            for ticket in 0u64..10 {
                r.check_and_insert_in(epoch, u64::from(epoch) * 100 + ticket, 1);
            }
            r.retire_below(epoch.saturating_sub(1));
            assert!(r.live_epochs().len() <= 2, "window leaked: {r:?}");
            assert!(r.tickets() <= 4, "cap leaked: {} tickets", r.tickets());
            assert!(r.total_entries() <= 4);
        }
        assert_eq!(r.retired_count(), 48);
        // Early data under any retired epoch is refused wholesale.
        assert!(r.is_retired(0));
        assert!(r.is_retired(47));
        assert!(!r.is_retired(48) && !r.is_retired(49));
    }

    #[test]
    fn insert_outcome_reports_evicted_entries() {
        let mut r = ReplayStore::with_capacity(1);
        r.check_and_insert_in(0, 1, 1);
        r.check_and_insert_in(0, 1, 2);
        r.check_and_insert_in(0, 1, 3);
        // Inserting ticket 2 evicts ticket 1's three nonces wholesale.
        let out = r.check_and_insert_in(0, 2, 1);
        assert!(out.fresh);
        assert_eq!(out.evicted_entries, 3);
        assert_eq!(r.entries_in(0), 1);
    }

    #[test]
    fn image_round_trip_is_lossless() {
        let mut r = ReplayStore::with_capacity(3);
        for epoch in 0..3u32 {
            for t in 0..3u64 {
                for n in 0..4u64 {
                    r.check_and_insert_in(epoch, t + u64::from(epoch), n);
                }
            }
        }
        r.check_and_insert_in(1, 99, 7); // force an eviction watermark
        r.retire_below(1);
        let img = r.to_image();
        let mut back = ReplayStore::from_image(&img);
        assert_eq!(back.to_image(), img);
        assert_eq!(back.tickets(), r.tickets());
        assert_eq!(back.retired_below(), 1);
        assert_eq!(back.retired_count(), 1);
        // Behavior survives the round trip: replays stay replays, stale
        // stays stale, retired stays retired.
        assert!(!back.check_and_insert_in(1, 99, 7).fresh);
        assert!(back.is_retired(0));
    }

    #[test]
    fn images_are_deterministic() {
        let build = || {
            let mut r = ReplayStore::new();
            for n in [5u64, 3, 9, 1, 7] {
                r.check_and_insert_in(2, 4, n);
            }
            r.to_image()
        };
        assert_eq!(build(), build());
        assert_eq!(build().epochs[0].entries[0].1, vec![1, 3, 5, 7, 9]);
    }
}
