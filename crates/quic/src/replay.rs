//! Server-side 0-RTT anti-replay store.
//!
//! §5.3: "given only few devices are authorized within a household, it is
//! feasible for the IoT proxy to keep a state of all previously held
//! connections, which would prevent a replay attack." We remember every
//! accepted (ticket, nonce) pair, with an optional capacity bound that
//! evicts the *oldest ticket wholesale* (never individual nonces — partial
//! eviction would re-open the replay window for that ticket).

use std::collections::{BTreeMap, HashSet};

/// Replay store: per-ticket sets of accepted early-data nonces.
#[derive(Debug, Default)]
pub struct ReplayStore {
    seen: BTreeMap<u64, HashSet<u64>>,
    max_tickets: Option<usize>,
    /// Highest ticket id ever evicted. Tickets at or below this watermark
    /// have lost their nonce sets, so their early data can no longer be
    /// replay-checked and must be rejected wholesale via [`is_stale`].
    ///
    /// [`is_stale`]: ReplayStore::is_stale
    evicted_watermark: Option<u64>,
}

impl ReplayStore {
    /// Unbounded store (fine for a household's handful of devices).
    pub fn new() -> Self {
        Self::default()
    }

    /// Store that retains at most `max_tickets` tickets, evicting oldest
    /// ticket ids first. Eviction discards a ticket's whole nonce set, so
    /// the caller MUST consult [`is_stale`](ReplayStore::is_stale) before
    /// `check_and_insert` and reject early data for evicted tickets
    /// outright — otherwise a replayed packet for an evicted ticket would
    /// look fresh.
    pub fn with_capacity(max_tickets: usize) -> Self {
        ReplayStore {
            seen: BTreeMap::new(),
            max_tickets: Some(max_tickets.max(1)),
            evicted_watermark: None,
        }
    }

    /// Record (ticket, nonce); returns `true` if it was fresh, `false` if
    /// already seen (a replay). A detected replay leaves the store
    /// untouched, and capacity eviction never removes the ticket just
    /// touched — evicting it would discard the nonce set recorded a moment
    /// ago and accept the next identical replay as fresh.
    pub fn check_and_insert(&mut self, ticket: u64, nonce: u64) -> bool {
        if self.contains(ticket, nonce) {
            return false;
        }
        self.seen.entry(ticket).or_default().insert(nonce);
        if let Some(cap) = self.max_tickets {
            while self.seen.len() > cap {
                let oldest = *self
                    .seen
                    .keys()
                    .find(|&&t| t != ticket)
                    .expect("len > cap >= 1 implies another ticket exists");
                self.seen.remove(&oldest);
                self.evicted_watermark =
                    Some(self.evicted_watermark.map_or(oldest, |w| w.max(oldest)));
            }
        }
        true
    }

    /// Whether a pair has been recorded.
    pub fn contains(&self, ticket: u64, nonce: u64) -> bool {
        self.seen.get(&ticket).is_some_and(|s| s.contains(&nonce))
    }

    /// Number of tickets tracked.
    pub fn tickets(&self) -> usize {
        self.seen.len()
    }

    /// Whether a ticket id falls at or below the eviction watermark:
    /// its nonce history is gone (or would sort below ids already
    /// discarded), so early data under it cannot be replay-checked.
    /// Tickets still tracked are never stale, whatever their id.
    pub fn is_stale(&self, ticket: u64) -> bool {
        !self.seen.contains_key(&ticket) && self.evicted_watermark.is_some_and(|w| ticket <= w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_then_replay() {
        let mut r = ReplayStore::new();
        assert!(r.check_and_insert(1, 10));
        assert!(!r.check_and_insert(1, 10));
        assert!(r.check_and_insert(1, 11));
        assert!(r.check_and_insert(2, 10)); // different ticket, same nonce
        assert!(r.contains(1, 10));
        assert!(!r.contains(3, 10));
    }

    #[test]
    fn capacity_evicts_oldest_ticket_wholesale() {
        let mut r = ReplayStore::with_capacity(2);
        r.check_and_insert(1, 1);
        r.check_and_insert(2, 1);
        r.check_and_insert(3, 1);
        assert_eq!(r.tickets(), 2);
        assert!(!r.contains(1, 1), "oldest ticket evicted");
        assert!(r.contains(2, 1));
        assert!(r.contains(3, 1));
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut r = ReplayStore::with_capacity(0);
        assert!(r.check_and_insert(1, 1));
        assert!(!r.check_and_insert(1, 1));
    }

    #[test]
    fn replayed_low_id_ticket_at_capacity_stays_rejected() {
        // Regression: at capacity, inserting a ticket id lower than every
        // tracked id used to evict the just-touched ticket itself, so the
        // identical 0-RTT packet replayed again was accepted as fresh.
        let mut r = ReplayStore::with_capacity(2);
        r.check_and_insert(5, 1);
        r.check_and_insert(6, 1);
        assert!(r.check_and_insert(1, 42), "first presentation is fresh");
        assert!(!r.check_and_insert(1, 42), "first replay rejected");
        assert!(!r.check_and_insert(1, 42), "second replay rejected");
        assert!(r.contains(1, 42));
        assert_eq!(r.tickets(), 2);
    }

    #[test]
    fn detected_replay_does_not_mutate_store() {
        let mut r = ReplayStore::with_capacity(2);
        r.check_and_insert(5, 1);
        r.check_and_insert(6, 1);
        assert!(!r.check_and_insert(5, 1));
        assert_eq!(r.tickets(), 2);
        assert!(r.contains(5, 1));
        assert!(r.contains(6, 1));
    }

    #[test]
    fn eviction_marks_ticket_stale() {
        let mut r = ReplayStore::with_capacity(2);
        r.check_and_insert(1, 1);
        r.check_and_insert(2, 1);
        assert!(!r.is_stale(1), "tracked tickets are not stale");
        r.check_and_insert(3, 1); // evicts ticket 1
        assert!(r.is_stale(1));
        assert!(!r.is_stale(2));
        assert!(!r.is_stale(3));
        // An id below the watermark that was never tracked is stale too:
        // it sorts below ids already discarded.
        assert!(r.is_stale(0));
        // Untracked ids above the watermark are merely unknown, not stale.
        assert!(!r.is_stale(9));
    }

    #[test]
    fn unbounded_store_never_goes_stale() {
        let mut r = ReplayStore::new();
        for t in 0..100 {
            r.check_and_insert(t, 0);
        }
        assert!(!r.is_stale(0));
        assert!(!r.is_stale(999));
    }

    #[test]
    fn many_nonces_per_ticket() {
        let mut r = ReplayStore::new();
        for n in 0..1000 {
            assert!(r.check_and_insert(7, n));
        }
        for n in 0..1000 {
            assert!(!r.check_and_insert(7, n));
        }
        assert_eq!(r.tickets(), 1);
    }
}
