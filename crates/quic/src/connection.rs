//! PSK-authenticated handshake, session tickets, and packet protection.
//!
//! Key schedule (all HKDF-SHA256 from the pairing PSK established at
//! §5.4 "Pairing"):
//!
//! ```text
//! handshake_secret = HKDF-Extract(salt="fiat-quic", ikm=PSK)
//! session_key      = HKDF-Expand(handshake_secret,
//!                                "1rtt" || client_random || server_random)
//! ticket_secret    = HKDF-Expand(Extract("fiat-ticket", PSK),
//!                                "ticket" || ticket_id || epoch)
//! early_key        = HKDF-Expand(Extract("fiat-0rtt", ticket_secret), "early")
//! ```
//!
//! Packets are ChaCha20-Poly1305 sealed with the packet number as nonce
//! and direction tag as AAD, so reflected or re-ordered ciphertext fails
//! authentication.
//!
//! Tickets carry the **epoch** they were issued under. The control plane
//! rotates the server's current epoch ([`Server::rotate_epoch`]) and
//! retires old ones ([`Server::retire_epochs_below`]); a retired epoch's
//! early keys and replay history are dead, so a 0-RTT proof under it is
//! answered [`QuicError::RetiredEpoch`] and the client falls back to a
//! 1-RTT re-handshake — the same recovery path as a replay-store
//! eviction, just driven by key lifecycle instead of capacity.

use crate::replay::{ReplayImage, ReplayStore};
use fiat_crypto::{aead, Hkdf};
use fiat_telemetry::{Counter, Gauge, MetricRegistry};

/// Errors surfaced by the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuicError {
    /// AEAD open failed: wrong key, tampering, or wrong direction.
    DecryptFailed,
    /// The session ticket is unknown to this server.
    UnknownTicket,
    /// This exact 0-RTT packet was already accepted once.
    Replayed,
    /// Handshake message arrived in the wrong state.
    BadState,
    /// Packet number not strictly greater than the last accepted one.
    StalePacketNumber,
    /// The session ticket was evicted from the anti-replay store; its
    /// nonce history is gone, so early data under it is refused and the
    /// client must redo a 1-RTT handshake.
    StaleTicket,
    /// The ticket's key epoch was retired by the control plane; its early
    /// keys and replay history are gone, so early data under it is
    /// refused and the client must redo a 1-RTT handshake.
    RetiredEpoch,
}

impl std::fmt::Display for QuicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuicError::DecryptFailed => write!(f, "packet failed authentication"),
            QuicError::UnknownTicket => write!(f, "unknown session ticket"),
            QuicError::Replayed => write!(f, "0-RTT replay detected"),
            QuicError::BadState => write!(f, "handshake message in wrong state"),
            QuicError::StalePacketNumber => write!(f, "stale packet number"),
            QuicError::StaleTicket => write!(f, "session ticket evicted (stale)"),
            QuicError::RetiredEpoch => write!(f, "session ticket epoch retired"),
        }
    }
}

impl std::error::Error for QuicError {}

/// First flight of the 1-RTT handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientHello {
    /// Client random contribution.
    pub client_random: [u8; 32],
}

/// Server reply: random, plus a ticket for future 0-RTT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerHello {
    /// Server random contribution.
    pub server_random: [u8; 32],
    /// Ticket enabling 0-RTT resumption.
    pub ticket: SessionTicket,
}

/// A session ticket (opaque id; secret stays server-side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionTicket {
    /// Server-chosen identifier.
    pub id: u64,
    /// Key-lifecycle epoch the ticket was issued under; bound into the
    /// ticket secret, so tickets die with their epoch.
    pub epoch: u32,
}

/// A protected 1-RTT packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Strictly increasing per-direction packet number (also the nonce).
    pub number: u64,
    /// Sealed payload.
    pub ciphertext: Vec<u8>,
}

/// A protected 0-RTT packet: early data bound to a ticket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZeroRttPacket {
    /// Which ticket's early key sealed this.
    pub ticket: SessionTicket,
    /// Client-chosen nonce for this early-data packet.
    pub nonce: u64,
    /// Sealed payload.
    pub ciphertext: Vec<u8>,
}

fn nonce_bytes(direction: u8, n: u64) -> [u8; aead::NONCE_LEN] {
    let mut out = [0u8; aead::NONCE_LEN];
    out[0] = direction;
    out[4..].copy_from_slice(&n.to_be_bytes());
    out
}

fn session_key(psk: &[u8; 32], client_random: &[u8; 32], server_random: &[u8; 32]) -> [u8; 32] {
    let hk = Hkdf::extract(b"fiat-quic", psk);
    let mut info = Vec::with_capacity(4 + 64);
    info.extend_from_slice(b"1rtt");
    info.extend_from_slice(client_random);
    info.extend_from_slice(server_random);
    let mut key = [0u8; 32];
    hk.expand(&info, &mut key);
    key
}

fn early_key(ticket_secret: &[u8; 32]) -> [u8; 32] {
    let mut key = [0u8; 32];
    Hkdf::extract(b"fiat-0rtt", ticket_secret).expand(b"early", &mut key);
    key
}

const DIR_CLIENT_TO_SERVER: u8 = 0;
const DIR_SERVER_TO_CLIENT: u8 = 1;

enum ClientState {
    Idle,
    AwaitingServerHello { client_random: [u8; 32] },
    Established,
}

/// Client (phone) side of the channel.
pub struct Client {
    psk: [u8; 32],
    state: ClientState,
    key: Option<[u8; 32]>,
    ticket: Option<(SessionTicket, [u8; 32])>, // ticket + early key
    send_pn: u64,
    recv_pn: u64,
    zero_rtt_nonce: u64,
}

impl Client {
    /// New client holding the pairing PSK.
    pub fn new(psk: [u8; 32]) -> Self {
        Client {
            psk,
            state: ClientState::Idle,
            key: None,
            ticket: None,
            send_pn: 0,
            recv_pn: 0,
            zero_rtt_nonce: 0,
        }
    }

    /// Begin a 1-RTT handshake. `client_random` must be fresh per
    /// connection (caller provides randomness; the library stays
    /// deterministic).
    pub fn start_handshake(&mut self, client_random: [u8; 32]) -> ClientHello {
        self.state = ClientState::AwaitingServerHello { client_random };
        ClientHello { client_random }
    }

    /// Complete the handshake with the server's reply; stores the ticket
    /// for later 0-RTT. Note: the ticket's early key is derived from the
    /// PSK and ticket id, matching the server's bookkeeping.
    pub fn finish_handshake(&mut self, hello: &ServerHello) -> Result<(), QuicError> {
        let ClientState::AwaitingServerHello { client_random } = self.state else {
            return Err(QuicError::BadState);
        };
        self.key = Some(session_key(&self.psk, &client_random, &hello.server_random));
        // The client derives the same ticket secret the server stored:
        // HKDF(PSK, "ticket" || id || epoch) — tickets are PSK- and
        // epoch-bound.
        let secret = ticket_secret(&self.psk, hello.ticket.id, hello.ticket.epoch);
        self.ticket = Some((hello.ticket, early_key(&secret)));
        self.state = ClientState::Established;
        self.send_pn = 0;
        self.recv_pn = 0;
        Ok(())
    }

    /// Whether a ticket is cached for 0-RTT.
    pub fn can_zero_rtt(&self) -> bool {
        self.ticket.is_some()
    }

    /// Drop the cached ticket (and its early key). The resilience path
    /// calls this after the server answers [`QuicError::StaleTicket`] —
    /// the ticket was evicted from the anti-replay store, so the only way
    /// back to 0-RTT is a fresh handshake and a re-signed proof under the
    /// new ticket.
    pub fn forget_ticket(&mut self) {
        self.ticket = None;
    }

    /// Seal application data on the established 1-RTT connection.
    pub fn seal(&mut self, data: &[u8]) -> Result<Packet, QuicError> {
        let key = self.key.ok_or(QuicError::BadState)?;
        self.send_pn += 1;
        let n = self.send_pn;
        Ok(Packet {
            number: n,
            ciphertext: aead::seal(&key, &nonce_bytes(DIR_CLIENT_TO_SERVER, n), b"1rtt", data),
        })
    }

    /// Open a server-to-client packet.
    pub fn open(&mut self, pkt: &Packet) -> Result<Vec<u8>, QuicError> {
        let key = self.key.ok_or(QuicError::BadState)?;
        if pkt.number <= self.recv_pn {
            return Err(QuicError::StalePacketNumber);
        }
        let out = aead::open(
            &key,
            &nonce_bytes(DIR_SERVER_TO_CLIENT, pkt.number),
            b"1rtt",
            &pkt.ciphertext,
        )
        .map_err(|_| QuicError::DecryptFailed)?;
        self.recv_pn = pkt.number;
        Ok(out)
    }

    /// Seal early data for 0-RTT using the cached ticket.
    pub fn seal_zero_rtt(&mut self, data: &[u8]) -> Result<ZeroRttPacket, QuicError> {
        let (ticket, ekey) = self.ticket.ok_or(QuicError::BadState)?;
        self.zero_rtt_nonce += 1;
        let n = self.zero_rtt_nonce;
        Ok(ZeroRttPacket {
            ticket,
            nonce: n,
            ciphertext: aead::seal(&ekey, &nonce_bytes(DIR_CLIENT_TO_SERVER, n), b"0rtt", data),
        })
    }
}

fn ticket_secret(psk: &[u8; 32], id: u64, epoch: u32) -> [u8; 32] {
    let mut info = Vec::with_capacity(18);
    info.extend_from_slice(b"ticket");
    info.extend_from_slice(&id.to_be_bytes());
    info.extend_from_slice(&epoch.to_be_bytes());
    let mut out = [0u8; 32];
    Hkdf::extract(b"fiat-ticket", psk).expand(&info, &mut out);
    out
}

/// Counters for the server (proxy) side of the channel. Defaults to
/// detached counters so an uninstrumented [`Server`] costs one relaxed
/// atomic op per packet; [`ServerTelemetry::registered`] exposes the same
/// handles through a registry.
#[derive(Debug, Clone, Default)]
pub struct ServerTelemetry {
    /// 1-RTT handshakes accepted (each issues a ticket).
    pub handshakes: Counter,
    /// 1-RTT packets opened successfully.
    pub one_rtt_accepted: Counter,
    /// 1-RTT packets rejected (bad state, stale number, decrypt failure).
    pub one_rtt_rejected: Counter,
    /// 0-RTT packets accepted.
    pub zero_rtt_accepted: Counter,
    /// 0-RTT packets rejected by the anti-replay store (§5.3 attack).
    pub zero_rtt_replayed: Counter,
    /// 0-RTT packets refused because their ticket's epoch was retired
    /// (the client falls back to 1-RTT).
    pub zero_rtt_retired: Counter,
    /// Other 0-RTT rejections (unknown ticket, decrypt failure).
    pub zero_rtt_rejected: Counter,
    /// Replay-store epochs retired over the server's lifetime.
    pub epochs_retired: Counter,
    /// Registry for per-epoch replay-entry gauges (labels resolve on
    /// demand as epochs rotate); `None` when detached.
    pub registry: Option<MetricRegistry>,
}

impl ServerTelemetry {
    /// Handles registered in `registry` under the `fiat_quic_*` names.
    pub fn registered(registry: &MetricRegistry) -> Self {
        registry.describe(
            "fiat_quic_handshakes_total",
            "1-RTT handshakes accepted by the proxy.",
        );
        registry.describe(
            "fiat_quic_one_rtt_total",
            "1-RTT packets processed by the proxy, by result.",
        );
        registry.describe(
            "fiat_quic_zero_rtt_total",
            "0-RTT packets processed by the proxy, by result.",
        );
        registry.describe(
            "fiat_quic_replay_entries",
            "Accepted 0-RTT (ticket, nonce) entries tracked, per ticket epoch.",
        );
        registry.describe(
            "fiat_quic_epochs_retired_total",
            "Replay-store ticket epochs retired by the key lifecycle.",
        );
        ServerTelemetry {
            handshakes: registry.counter("fiat_quic_handshakes_total", &[]),
            one_rtt_accepted: registry
                .counter("fiat_quic_one_rtt_total", &[("result", "accepted")]),
            one_rtt_rejected: registry
                .counter("fiat_quic_one_rtt_total", &[("result", "rejected")]),
            zero_rtt_accepted: registry
                .counter("fiat_quic_zero_rtt_total", &[("result", "accepted")]),
            zero_rtt_replayed: registry
                .counter("fiat_quic_zero_rtt_total", &[("result", "replayed")]),
            zero_rtt_retired: registry
                .counter("fiat_quic_zero_rtt_total", &[("result", "retired_epoch")]),
            zero_rtt_rejected: registry
                .counter("fiat_quic_zero_rtt_total", &[("result", "rejected")]),
            epochs_retired: registry.counter("fiat_quic_epochs_retired_total", &[]),
            registry: Some(registry.clone()),
        }
    }

    /// Gauge of replay entries tracked under one epoch (resolved on
    /// demand; `None` when detached). Updated with deltas, never `set`,
    /// so per-home registries still fold additively in the fleet merge.
    pub fn replay_entries(&self, epoch: u32) -> Option<Gauge> {
        self.registry
            .as_ref()
            .map(|r| r.gauge("fiat_quic_replay_entries", &[("epoch", &epoch.to_string())]))
    }
}

/// Plain-data image of a [`Server`]'s resumable state for home
/// snapshot/restore. The 1-RTT session key is deliberately absent:
/// sessions do not survive a restore; clients re-handshake. Ticket
/// issuance state and the anti-replay store DO survive, so a restored
/// proxy keeps refusing every 0-RTT packet the original already burned.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerImage {
    /// Next ticket id to issue.
    pub next_ticket_id: u64,
    /// Current key-lifecycle epoch.
    pub current_epoch: u32,
    /// The anti-replay store's contents.
    pub replay: ReplayImage,
}

/// Server (IoT proxy) side of the channel.
pub struct Server {
    psk: [u8; 32],
    key: Option<[u8; 32]>,
    next_ticket_id: u64,
    current_epoch: u32,
    replay: ReplayStore,
    send_pn: u64,
    recv_pn: u64,
    telemetry: ServerTelemetry,
}

impl Server {
    /// New server holding the pairing PSK.
    pub fn new(psk: [u8; 32]) -> Self {
        Server {
            psk,
            key: None,
            next_ticket_id: 1,
            current_epoch: 0,
            replay: ReplayStore::new(),
            send_pn: 0,
            recv_pn: 0,
            telemetry: ServerTelemetry::default(),
        }
    }

    /// Report through externally supplied counters (typically
    /// [`ServerTelemetry::registered`] in a shared registry).
    pub fn set_telemetry(&mut self, telemetry: ServerTelemetry) {
        self.telemetry = telemetry;
    }

    /// Bound the anti-replay store to `max_tickets` tickets. Replaces the
    /// store, so call before any 0-RTT traffic — nonces already recorded
    /// are forgotten.
    pub fn set_replay_capacity(&mut self, max_tickets: usize) {
        self.replay = ReplayStore::with_capacity(max_tickets);
    }

    /// The server's counters.
    pub fn telemetry(&self) -> &ServerTelemetry {
        &self.telemetry
    }

    /// The anti-replay store, for inspection (e.g. the red-team harness
    /// checking that a replayed (ticket, nonce) pair really was burned).
    pub fn replay_store(&self) -> &ReplayStore {
        &self.replay
    }

    /// The key-lifecycle epoch new tickets are issued under.
    pub fn current_epoch(&self) -> u32 {
        self.current_epoch
    }

    /// The oldest epoch still served; 0-RTT under anything older is
    /// refused with [`QuicError::RetiredEpoch`].
    pub fn oldest_live_epoch(&self) -> u32 {
        self.replay.retired_below()
    }

    /// Advance the key-lifecycle epoch: tickets issued from now on bind
    /// the new epoch's secrets. Previously issued tickets keep working
    /// until their epoch is retired, so rotation alone never breaks
    /// 0-RTT. Returns the new epoch.
    pub fn rotate_epoch(&mut self) -> u32 {
        self.current_epoch += 1;
        self.current_epoch
    }

    /// Retire every epoch strictly below `min_live` (clamped so the
    /// current epoch always stays live), dropping its replay history —
    /// the bounded-memory half of the key lifecycle. Returns the number
    /// of epochs newly retired.
    pub fn retire_epochs_below(&mut self, min_live: u32) -> u32 {
        let (newly, dropped) = self.replay.retire_below(min_live.min(self.current_epoch));
        if newly > 0 {
            self.telemetry.epochs_retired.add(u64::from(newly));
            for (epoch, entries) in dropped {
                if entries > 0 {
                    if let Some(g) = self.telemetry.replay_entries(epoch) {
                        g.add(-(entries as i64));
                    }
                }
            }
        }
        newly
    }

    /// Plain-data image of the resumable channel state (ticket issuance,
    /// epoch, anti-replay store) for a home snapshot.
    pub fn to_image(&self) -> ServerImage {
        ServerImage {
            next_ticket_id: self.next_ticket_id,
            current_epoch: self.current_epoch,
            replay: self.replay.to_image(),
        }
    }

    /// Restore channel state from an image. Telemetry is deliberately
    /// untouched: restored replay entries were already counted by the
    /// registry that witnessed them, so re-counting here would double
    /// them in an additive fleet merge. The 1-RTT session (if any) is
    /// dropped; clients re-handshake.
    pub fn restore_image(&mut self, img: &ServerImage) {
        self.next_ticket_id = img.next_ticket_id;
        self.current_epoch = img.current_epoch;
        self.replay = ReplayStore::from_image(&img.replay);
        self.key = None;
        self.send_pn = 0;
        self.recv_pn = 0;
    }

    /// Accept a ClientHello; returns the ServerHello carrying a fresh
    /// ticket. `server_random` is caller-provided for determinism.
    pub fn accept(&mut self, hello: &ClientHello, server_random: [u8; 32]) -> ServerHello {
        self.key = Some(session_key(&self.psk, &hello.client_random, &server_random));
        let id = self.next_ticket_id;
        self.next_ticket_id += 1;
        self.send_pn = 0;
        self.recv_pn = 0;
        self.telemetry.handshakes.inc();
        ServerHello {
            server_random,
            ticket: SessionTicket {
                id,
                epoch: self.current_epoch,
            },
        }
    }

    /// Open a client-to-server 1-RTT packet.
    pub fn open(&mut self, pkt: &Packet) -> Result<Vec<u8>, QuicError> {
        let out = self.open_inner(pkt);
        match out {
            Ok(_) => self.telemetry.one_rtt_accepted.inc(),
            Err(_) => self.telemetry.one_rtt_rejected.inc(),
        }
        out
    }

    fn open_inner(&mut self, pkt: &Packet) -> Result<Vec<u8>, QuicError> {
        let key = self.key.ok_or(QuicError::BadState)?;
        if pkt.number <= self.recv_pn {
            return Err(QuicError::StalePacketNumber);
        }
        let out = aead::open(
            &key,
            &nonce_bytes(DIR_CLIENT_TO_SERVER, pkt.number),
            b"1rtt",
            &pkt.ciphertext,
        )
        .map_err(|_| QuicError::DecryptFailed)?;
        self.recv_pn = pkt.number;
        Ok(out)
    }

    /// Seal a server-to-client packet.
    pub fn seal(&mut self, data: &[u8]) -> Result<Packet, QuicError> {
        let key = self.key.ok_or(QuicError::BadState)?;
        self.send_pn += 1;
        let n = self.send_pn;
        Ok(Packet {
            number: n,
            ciphertext: aead::seal(&key, &nonce_bytes(DIR_SERVER_TO_CLIENT, n), b"1rtt", data),
        })
    }

    /// Accept a 0-RTT packet: ticket must have been issued by this server
    /// and the (ticket, nonce) pair never seen before.
    pub fn accept_zero_rtt(&mut self, pkt: &ZeroRttPacket) -> Result<Vec<u8>, QuicError> {
        let out = self.accept_zero_rtt_inner(pkt);
        match out {
            Ok(_) => self.telemetry.zero_rtt_accepted.inc(),
            Err(QuicError::Replayed) => self.telemetry.zero_rtt_replayed.inc(),
            Err(QuicError::RetiredEpoch) => self.telemetry.zero_rtt_retired.inc(),
            Err(_) => self.telemetry.zero_rtt_rejected.inc(),
        }
        out
    }

    fn accept_zero_rtt_inner(&mut self, pkt: &ZeroRttPacket) -> Result<Vec<u8>, QuicError> {
        let SessionTicket { id, epoch } = pkt.ticket;
        if id == 0 || id >= self.next_ticket_id || epoch > self.current_epoch {
            return Err(QuicError::UnknownTicket);
        }
        // A retired epoch's whole nonce history is gone: inserting into
        // it would accept a verbatim replay as fresh AND resurrect state
        // the lifecycle just reclaimed. Refuse the epoch wholesale; the
        // client re-handshakes under the current one.
        if self.replay.is_retired(epoch) {
            return Err(QuicError::RetiredEpoch);
        }
        // Same hazard one level down: an evicted ticket's nonce history
        // is gone. Refuse the ticket wholesale and force a new handshake.
        if self.replay.is_stale_in(epoch, id) {
            return Err(QuicError::StaleTicket);
        }
        let outcome = self.replay.check_and_insert_in(epoch, id, pkt.nonce);
        if !outcome.fresh {
            return Err(QuicError::Replayed);
        }
        if let Some(g) = self.telemetry.replay_entries(epoch) {
            g.add(1 - outcome.evicted_entries as i64);
        }
        let secret = ticket_secret(&self.psk, id, epoch);
        aead::open(
            &early_key(&secret),
            &nonce_bytes(DIR_CLIENT_TO_SERVER, pkt.nonce),
            b"0rtt",
            &pkt.ciphertext,
        )
        .map_err(|_| QuicError::DecryptFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PSK: [u8; 32] = [0x11; 32];

    fn handshake(client: &mut Client, server: &mut Server) {
        let ch = client.start_handshake([1u8; 32]);
        let sh = server.accept(&ch, [2u8; 32]);
        client.finish_handshake(&sh).unwrap();
    }

    #[test]
    fn one_rtt_roundtrip_both_directions() {
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s);
        let p = c.seal(b"auth evidence").unwrap();
        assert_eq!(s.open(&p).unwrap(), b"auth evidence");
        let r = s.seal(b"ack").unwrap();
        assert_eq!(c.open(&r).unwrap(), b"ack");
    }

    #[test]
    fn mismatched_psk_fails() {
        let mut c = Client::new(PSK);
        let mut s = Server::new([0x22; 32]);
        handshake(&mut c, &mut s);
        let p = c.seal(b"data").unwrap();
        assert_eq!(s.open(&p), Err(QuicError::DecryptFailed));
    }

    #[test]
    fn zero_rtt_after_ticket() {
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        assert!(!c.can_zero_rtt());
        handshake(&mut c, &mut s);
        assert!(c.can_zero_rtt());
        let z = c.seal_zero_rtt(b"fast evidence").unwrap();
        assert_eq!(s.accept_zero_rtt(&z).unwrap(), b"fast evidence");
    }

    #[test]
    fn zero_rtt_replay_rejected() {
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s);
        let z = c.seal_zero_rtt(b"once only").unwrap();
        assert!(s.accept_zero_rtt(&z).is_ok());
        // Verbatim replay (the §5.3 attack) is caught by the store.
        assert_eq!(s.accept_zero_rtt(&z), Err(QuicError::Replayed));
        // The burned pair is observable through the store accessor.
        assert!(s.replay_store().contains(z.ticket.id, z.nonce));
        // A fresh 0-RTT packet still works.
        let z2 = c.seal_zero_rtt(b"again").unwrap();
        assert_eq!(s.accept_zero_rtt(&z2).unwrap(), b"again");
    }

    #[test]
    fn unknown_ticket_rejected() {
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s);
        let mut z = c.seal_zero_rtt(b"x").unwrap();
        z.ticket.id = 999;
        assert_eq!(s.accept_zero_rtt(&z), Err(QuicError::UnknownTicket));
    }

    #[test]
    fn tampered_packet_rejected() {
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s);
        let mut p = c.seal(b"data").unwrap();
        let n = p.ciphertext.len();
        p.ciphertext[n - 1] ^= 1;
        assert_eq!(s.open(&p), Err(QuicError::DecryptFailed));
    }

    #[test]
    fn stale_packet_number_rejected() {
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s);
        let p1 = c.seal(b"one").unwrap();
        let p2 = c.seal(b"two").unwrap();
        assert!(s.open(&p2).is_ok());
        // Old packet replayed at 1-RTT level.
        assert_eq!(s.open(&p1), Err(QuicError::StalePacketNumber));
    }

    #[test]
    fn send_before_handshake_fails() {
        let mut c = Client::new(PSK);
        assert_eq!(c.seal(b"x").unwrap_err(), QuicError::BadState);
        assert_eq!(c.seal_zero_rtt(b"x").unwrap_err(), QuicError::BadState);
    }

    #[test]
    fn direction_binding_prevents_reflection() {
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s);
        // A client packet reflected back to the client must not decrypt.
        let p = c.seal(b"secret").unwrap();
        assert_eq!(c.open(&p), Err(QuicError::DecryptFailed));
    }

    #[test]
    fn server_telemetry_counts_every_path() {
        let registry = MetricRegistry::new();
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        s.set_telemetry(ServerTelemetry::registered(&registry));
        handshake(&mut c, &mut s);
        assert_eq!(s.telemetry().handshakes.get(), 1);

        let p = c.seal(b"data").unwrap();
        assert!(s.open(&p).is_ok());
        assert_eq!(s.open(&p), Err(QuicError::StalePacketNumber));
        assert_eq!(s.telemetry().one_rtt_accepted.get(), 1);
        assert_eq!(s.telemetry().one_rtt_rejected.get(), 1);

        let z = c.seal_zero_rtt(b"early").unwrap();
        assert!(s.accept_zero_rtt(&z).is_ok());
        assert_eq!(s.accept_zero_rtt(&z), Err(QuicError::Replayed));
        let mut bad = c.seal_zero_rtt(b"x").unwrap();
        bad.ticket.id = 999;
        assert_eq!(s.accept_zero_rtt(&bad), Err(QuicError::UnknownTicket));
        assert_eq!(s.telemetry().zero_rtt_accepted.get(), 1);
        assert_eq!(s.telemetry().zero_rtt_replayed.get(), 1);
        assert_eq!(s.telemetry().zero_rtt_rejected.get(), 1);

        // The registry exposes the same counts.
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_quic_handshakes_total 1"));
        assert!(text.contains("fiat_quic_zero_rtt_total{result=\"replayed\"} 1"));
    }

    #[test]
    fn replay_after_eviction_is_rejected() {
        // End-to-end eviction contract: at capacity 1, accepting early
        // data under ticket 2 evicts ticket 1's nonce set. A replayed
        // ticket-1 packet must NOT look fresh — pre-fix it passed
        // `check_and_insert` and decrypted fine, silently reopening the
        // §5.3 replay window.
        let mut s = Server::new(PSK);
        s.set_replay_capacity(1);
        let mut c1 = Client::new(PSK);
        handshake(&mut c1, &mut s); // ticket 1
        let mut c2 = Client::new(PSK);
        handshake(&mut c2, &mut s); // ticket 2

        let z1 = c1.seal_zero_rtt(b"first").unwrap();
        assert!(s.accept_zero_rtt(&z1).is_ok());
        let z2 = c2.seal_zero_rtt(b"second").unwrap();
        assert!(s.accept_zero_rtt(&z2).is_ok()); // evicts ticket 1

        // The replayed packet is refused — and so is *fresh* early data
        // under the evicted ticket: without its nonce history the server
        // cannot tell the two apart, so the whole ticket is dead.
        assert_eq!(s.accept_zero_rtt(&z1), Err(QuicError::StaleTicket));
        let z1b = c1.seal_zero_rtt(b"fresh but stale ticket").unwrap();
        assert_eq!(s.accept_zero_rtt(&z1b), Err(QuicError::StaleTicket));

        // The still-tracked ticket keeps working, with replay protection.
        let z2b = c2.seal_zero_rtt(b"more").unwrap();
        assert!(s.accept_zero_rtt(&z2b).is_ok());
        assert_eq!(s.accept_zero_rtt(&z2b), Err(QuicError::Replayed));

        // Recovery path: a fresh handshake issues a post-watermark ticket.
        handshake(&mut c1, &mut s); // ticket 3
        let z3 = c1.seal_zero_rtt(b"back").unwrap();
        assert_eq!(s.accept_zero_rtt(&z3).unwrap(), b"back");
    }

    #[test]
    fn forget_ticket_disables_zero_rtt_until_rehandshake() {
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s);
        assert!(c.can_zero_rtt());
        c.forget_ticket();
        assert!(!c.can_zero_rtt());
        assert_eq!(c.seal_zero_rtt(b"x").unwrap_err(), QuicError::BadState);
        // The 1-RTT session key survives: evidence can still flow.
        let p = c.seal(b"fallback").unwrap();
        assert_eq!(s.open(&p).unwrap(), b"fallback");
        // A new handshake restores 0-RTT under a fresh ticket.
        handshake(&mut c, &mut s);
        let z = c.seal_zero_rtt(b"again").unwrap();
        assert_eq!(s.accept_zero_rtt(&z).unwrap(), b"again");
    }

    #[test]
    fn wrong_psk_handshake_yields_mismatched_keys_everywhere() {
        // Negative path: a handshake "succeeds" structurally with a wrong
        // PSK, but every sealed artifact fails authentication — 1-RTT in
        // both directions and 0-RTT early data alike.
        let mut c = Client::new([0x33; 32]);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s);
        let p = c.seal(b"data").unwrap();
        assert_eq!(s.open(&p), Err(QuicError::DecryptFailed));
        let r = s.seal(b"reply").unwrap();
        assert_eq!(c.open(&r), Err(QuicError::DecryptFailed));
        let z = c.seal_zero_rtt(b"early").unwrap();
        assert_eq!(s.accept_zero_rtt(&z), Err(QuicError::DecryptFailed));
    }

    #[test]
    fn open_on_corrupted_or_truncated_packet_fails_cleanly() {
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s);
        // Corrupted: flip one ciphertext bit.
        let mut corrupt = c.seal(b"payload bytes").unwrap();
        corrupt.ciphertext[0] ^= 0x80;
        assert_eq!(s.open(&corrupt), Err(QuicError::DecryptFailed));
        // Truncated below the AEAD tag length.
        let mut truncated = c.seal(b"payload bytes").unwrap();
        truncated.ciphertext.truncate(4);
        assert_eq!(s.open(&truncated), Err(QuicError::DecryptFailed));
        // Empty ciphertext is the degenerate truncation.
        let mut empty = c.seal(b"payload bytes").unwrap();
        empty.ciphertext.clear();
        assert_eq!(s.open(&empty), Err(QuicError::DecryptFailed));
        // A failed open must not advance recv_pn: the next intact packet
        // still decrypts.
        let p = c.seal(b"intact").unwrap();
        assert_eq!(s.open(&p).unwrap(), b"intact");
    }

    #[test]
    fn zero_rtt_after_capacity_zero_store_swap() {
        // `set_replay_capacity(0)` clamps to one tracked ticket AND
        // replaces the store wholesale. Early data accepted before the
        // swap is forgotten, so the exact variant matters: a verbatim
        // replay after the swap is accepted as fresh (the documented
        // reason the capacity must be set before any 0-RTT traffic), and
        // capacity pressure then surfaces as StaleTicket, not Replayed.
        let mut s = Server::new(PSK);
        let mut c1 = Client::new(PSK);
        handshake(&mut c1, &mut s); // ticket 1
        let z1 = c1.seal_zero_rtt(b"pre-swap").unwrap();
        assert!(s.accept_zero_rtt(&z1).is_ok());

        s.set_replay_capacity(0); // clamped to 1 ticket
        assert!(
            s.accept_zero_rtt(&z1).is_ok(),
            "nonce history was discarded by the swap"
        );
        assert_eq!(s.accept_zero_rtt(&z1), Err(QuicError::Replayed));

        // A second ticket evicts the first at capacity 1.
        let mut c2 = Client::new(PSK);
        handshake(&mut c2, &mut s); // ticket 2
        let z2 = c2.seal_zero_rtt(b"evictor").unwrap();
        assert!(s.accept_zero_rtt(&z2).is_ok());
        assert_eq!(s.accept_zero_rtt(&z1), Err(QuicError::StaleTicket));
    }

    #[test]
    fn zero_rtt_nonce_reuse_is_replay_not_decrypt_failure() {
        // Sequence-number reuse on the 0-RTT path: a forged packet that
        // reuses an accepted (ticket, nonce) pair is rejected by the
        // replay store *before* any AEAD work, whatever its ciphertext.
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s);
        let z = c.seal_zero_rtt(b"original").unwrap();
        assert!(s.accept_zero_rtt(&z).is_ok());
        let forged = ZeroRttPacket {
            ticket: z.ticket,
            nonce: z.nonce,
            ciphertext: vec![0xAA; 48],
        };
        assert_eq!(s.accept_zero_rtt(&forged), Err(QuicError::Replayed));
        // 1-RTT sequence reuse is the analogous exact variant.
        let p1 = c.seal(b"one").unwrap();
        assert!(s.open(&p1).is_ok());
        let reused = Packet {
            number: p1.number,
            ciphertext: c.seal(b"two").unwrap().ciphertext,
        };
        assert_eq!(s.open(&reused), Err(QuicError::StalePacketNumber));
    }

    #[test]
    fn resign_after_eviction_keeps_just_touched_ticket() {
        // PR 2 invariant extended to the re-sign path: the client learns
        // its ticket went stale, forgets it, re-handshakes, and re-sends
        // under the new ticket. That new ticket is the just-touched one at
        // exactly max_tickets capacity — eviction must never remove it,
        // or the re-signed packet's replay would be accepted as fresh.
        let mut s = Server::new(PSK);
        s.set_replay_capacity(1);
        let mut victim = Client::new(PSK);
        handshake(&mut victim, &mut s); // ticket 1
        assert!(s
            .accept_zero_rtt(&victim.seal_zero_rtt(b"v1").unwrap())
            .is_ok());

        // Another client's traffic evicts ticket 1.
        let mut other = Client::new(PSK);
        handshake(&mut other, &mut s); // ticket 2
        assert!(s
            .accept_zero_rtt(&other.seal_zero_rtt(b"o1").unwrap())
            .is_ok());

        // The victim's next proof is refused; the resilience path reacts.
        let stale = victim.seal_zero_rtt(b"v2").unwrap();
        assert_eq!(s.accept_zero_rtt(&stale), Err(QuicError::StaleTicket));
        victim.forget_ticket();
        assert!(!victim.can_zero_rtt());
        handshake(&mut victim, &mut s); // ticket 3

        // The re-signed proof lands; its ticket was just touched at
        // capacity, so the store kept it (capacity-boundary audit) and
        // the verbatim replay stays rejected.
        let resigned = victim.seal_zero_rtt(b"v2 re-signed").unwrap();
        assert_eq!(s.accept_zero_rtt(&resigned).unwrap(), b"v2 re-signed");
        assert_eq!(s.replay_store().tickets(), 1);
        assert!(s
            .replay_store()
            .contains(resigned.ticket.id, resigned.nonce));
        assert_eq!(s.accept_zero_rtt(&resigned), Err(QuicError::Replayed));
        // And a fresh nonce under the kept ticket still works.
        let next = victim.seal_zero_rtt(b"v3").unwrap();
        assert_eq!(s.accept_zero_rtt(&next).unwrap(), b"v3");
    }

    #[test]
    fn tickets_are_per_connection_and_increasing() {
        let mut s = Server::new(PSK);
        let t1 = s
            .accept(
                &ClientHello {
                    client_random: [0; 32],
                },
                [1; 32],
            )
            .ticket;
        let t2 = s
            .accept(
                &ClientHello {
                    client_random: [0; 32],
                },
                [1; 32],
            )
            .ticket;
        assert!(t2.id > t1.id);
        assert_eq!(t1.epoch, 0);
        assert_eq!(t2.epoch, 0);
    }

    // ---- ticket-epoch key lifecycle ------------------------------------

    #[test]
    fn rotation_alone_keeps_old_epoch_tickets_working() {
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s); // epoch-0 ticket
        assert_eq!(s.rotate_epoch(), 1);
        assert_eq!(s.current_epoch(), 1);
        // The old ticket's epoch is still live: 0-RTT keeps working
        // across the rotation (no flag day), replay protection included.
        let z = c.seal_zero_rtt(b"pre-rotation ticket").unwrap();
        assert_eq!(s.accept_zero_rtt(&z).unwrap(), b"pre-rotation ticket");
        assert_eq!(s.accept_zero_rtt(&z), Err(QuicError::Replayed));
        // New handshakes issue epoch-1 tickets.
        let mut c2 = Client::new(PSK);
        handshake(&mut c2, &mut s);
        let z2 = c2.seal_zero_rtt(b"new epoch").unwrap();
        assert_eq!(z2.ticket.epoch, 1);
        assert_eq!(s.accept_zero_rtt(&z2).unwrap(), b"new epoch");
    }

    #[test]
    fn replay_across_epoch_retirement_is_rejected() {
        // The stale-epoch-replay attack: sniff an accepted 0-RTT proof,
        // wait for the lifecycle to rotate and retire its epoch (which
        // drops the epoch's nonce history wholesale), replay it. Without
        // the retired-epoch check the replay would pass the replay store
        // as fresh — the epoch-level twin of the PR 4 eviction bug.
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s); // epoch-0 ticket
        let sniffed = c.seal_zero_rtt(b"proof").unwrap();
        assert!(s.accept_zero_rtt(&sniffed).is_ok());

        s.rotate_epoch();
        assert_eq!(s.retire_epochs_below(1), 1);
        assert_eq!(s.oldest_live_epoch(), 1);

        // The replayed proof — and any fresh early data under the dead
        // epoch — is refused; the client's recovery is a re-handshake.
        assert_eq!(s.accept_zero_rtt(&sniffed), Err(QuicError::RetiredEpoch));
        let fresh = c.seal_zero_rtt(b"fresh but dead epoch").unwrap();
        assert_eq!(s.accept_zero_rtt(&fresh), Err(QuicError::RetiredEpoch));

        c.forget_ticket();
        handshake(&mut c, &mut s); // epoch-1 ticket
        let z = c.seal_zero_rtt(b"recovered").unwrap();
        assert_eq!(s.accept_zero_rtt(&z).unwrap(), b"recovered");
        assert_eq!(s.accept_zero_rtt(&z), Err(QuicError::Replayed));
    }

    #[test]
    fn retirement_never_outruns_the_current_epoch() {
        let mut s = Server::new(PSK);
        s.rotate_epoch(); // epoch 1
        assert_eq!(s.retire_epochs_below(99), 1, "clamped to current epoch");
        assert_eq!(s.oldest_live_epoch(), 1);
        let mut c = Client::new(PSK);
        handshake(&mut c, &mut s);
        let z = c.seal_zero_rtt(b"current epoch survives").unwrap();
        assert!(s.accept_zero_rtt(&z).is_ok());
        // Idempotent.
        assert_eq!(s.retire_epochs_below(1), 0);
    }

    #[test]
    fn future_epoch_tickets_are_unknown() {
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s);
        let mut z = c.seal_zero_rtt(b"x").unwrap();
        z.ticket.epoch = 7; // forged: the server never issued epoch 7
        assert_eq!(s.accept_zero_rtt(&z), Err(QuicError::UnknownTicket));
    }

    #[test]
    fn epoch_telemetry_tracks_entries_and_retirements() {
        let registry = MetricRegistry::new();
        let mut s = Server::new(PSK);
        s.set_telemetry(ServerTelemetry::registered(&registry));
        let mut c = Client::new(PSK);
        handshake(&mut c, &mut s);
        for msg in [b"a".as_ref(), b"b".as_ref()] {
            assert!(s.accept_zero_rtt(&c.seal_zero_rtt(msg).unwrap()).is_ok());
        }
        s.rotate_epoch();
        let mut c2 = Client::new(PSK);
        handshake(&mut c2, &mut s);
        assert!(s.accept_zero_rtt(&c2.seal_zero_rtt(b"c").unwrap()).is_ok());

        let text = registry.render_prometheus();
        assert!(
            text.contains("fiat_quic_replay_entries{epoch=\"0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("fiat_quic_replay_entries{epoch=\"1\"} 1"),
            "{text}"
        );

        // Retiring epoch 0 settles its gauge back to zero and counts the
        // retirement; the refused replay shows up under its own result.
        let stale = c.seal_zero_rtt(b"late").unwrap();
        assert_eq!(s.retire_epochs_below(1), 1);
        assert_eq!(s.accept_zero_rtt(&stale), Err(QuicError::RetiredEpoch));
        let text = registry.render_prometheus();
        assert!(
            text.contains("fiat_quic_replay_entries{epoch=\"0\"} 0"),
            "{text}"
        );
        assert!(text.contains("fiat_quic_epochs_retired_total 1"), "{text}");
        assert!(
            text.contains("fiat_quic_zero_rtt_total{result=\"retired_epoch\"} 1"),
            "{text}"
        );
        assert_eq!(s.telemetry().zero_rtt_retired.get(), 1);
    }

    #[test]
    fn server_image_round_trip_preserves_replay_and_issuance() {
        let mut c = Client::new(PSK);
        let mut s = Server::new(PSK);
        handshake(&mut c, &mut s);
        let z = c.seal_zero_rtt(b"burned").unwrap();
        assert!(s.accept_zero_rtt(&z).is_ok());
        s.rotate_epoch();
        let img = s.to_image();

        let mut restored = Server::new(PSK);
        restored.restore_image(&img);
        assert_eq!(restored.current_epoch(), 1);
        assert_eq!(restored.to_image(), img);
        // The burned (ticket, nonce) pair stays burned after restore.
        assert_eq!(restored.accept_zero_rtt(&z), Err(QuicError::Replayed));
        // Ticket issuance continues where it left off (no id reuse).
        let t = restored
            .accept(
                &ClientHello {
                    client_random: [0; 32],
                },
                [1; 32],
            )
            .ticket;
        assert_eq!(t.id, 2);
        assert_eq!(t.epoch, 1);
    }
}
