//! Property tests for the QUIC-like channel.

use fiat_quic::{Client, QuicError, Server};
use proptest::prelude::*;

fn paired(psk: [u8; 32]) -> (Client, Server) {
    let mut c = Client::new(psk);
    let mut s = Server::new(psk);
    let ch = c.start_handshake([7u8; 32]);
    let sh = s.accept(&ch, [9u8; 32]);
    c.finish_handshake(&sh).unwrap();
    (c, s)
}

proptest! {
    /// Arbitrary payloads round-trip on both the 1-RTT and 0-RTT paths.
    #[test]
    fn payload_roundtrip(
        psk in prop::array::uniform32(any::<u8>()),
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 1..10),
    ) {
        let (mut c, mut s) = paired(psk);
        for p in &payloads {
            let pkt = c.seal(p).unwrap();
            prop_assert_eq!(&s.open(&pkt).unwrap(), p);
            let z = c.seal_zero_rtt(p).unwrap();
            prop_assert_eq!(&s.accept_zero_rtt(&z).unwrap(), p);
        }
    }

    /// Every 0-RTT packet replays to Replayed, in any order.
    #[test]
    fn all_replays_detected(
        psk in prop::array::uniform32(any::<u8>()),
        n in 1usize..20,
        order in prop::collection::vec(any::<usize>(), 1..20),
    ) {
        let (mut c, mut s) = paired(psk);
        let packets: Vec<_> = (0..n)
            .map(|i| c.seal_zero_rtt(&[i as u8]).unwrap())
            .collect();
        for z in &packets {
            prop_assert!(s.accept_zero_rtt(z).is_ok());
        }
        for &i in &order {
            prop_assert_eq!(
                s.accept_zero_rtt(&packets[i % n]).unwrap_err(),
                QuicError::Replayed
            );
        }
    }

    /// Any single-byte ciphertext corruption fails authentication.
    #[test]
    fn ciphertext_tamper_detected(
        psk in prop::array::uniform32(any::<u8>()),
        data in prop::collection::vec(any::<u8>(), 0..128),
        flip in any::<usize>(),
    ) {
        let (mut c, mut s) = paired(psk);
        let mut pkt = c.seal(&data).unwrap();
        let i = flip % pkt.ciphertext.len();
        pkt.ciphertext[i] ^= 1;
        prop_assert_eq!(s.open(&pkt).unwrap_err(), QuicError::DecryptFailed);
    }

    /// Mismatched PSKs never interoperate, whatever the keys.
    #[test]
    fn psk_separation(
        psk_a in prop::array::uniform32(any::<u8>()),
        psk_b in prop::array::uniform32(any::<u8>()),
        data in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        prop_assume!(psk_a != psk_b);
        let mut c = Client::new(psk_a);
        let mut s = Server::new(psk_b);
        let ch = c.start_handshake([1u8; 32]);
        let sh = s.accept(&ch, [2u8; 32]);
        c.finish_handshake(&sh).unwrap();
        let pkt = c.seal(&data).unwrap();
        prop_assert_eq!(s.open(&pkt).unwrap_err(), QuicError::DecryptFailed);
        let z = c.seal_zero_rtt(&data).unwrap();
        prop_assert_eq!(s.accept_zero_rtt(&z).unwrap_err(), QuicError::DecryptFailed);
    }

    /// Packet numbers are strictly monotone: delivering packets out of
    /// order surfaces StalePacketNumber for the lagging ones and never
    /// delivers a payload twice.
    #[test]
    fn packet_number_monotonicity(
        psk in prop::array::uniform32(any::<u8>()),
        n in 2usize..10,
    ) {
        let (mut c, mut s) = paired(psk);
        let packets: Vec<_> = (0..n).map(|i| c.seal(&[i as u8]).unwrap()).collect();
        // Deliver the last first; all earlier ones become stale.
        prop_assert!(s.open(&packets[n - 1]).is_ok());
        for pkt in &packets[..n - 1] {
            prop_assert_eq!(s.open(pkt).unwrap_err(), QuicError::StalePacketNumber);
        }
    }
}
